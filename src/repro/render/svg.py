"""SVG backend: serialize a scene graph to an SVG document.

SVG is the reproduction's substitute for the original tool's Swing canvas: it
is deterministic, diffable in tests, viewable in any browser and needs no
external plotting library (none is available offline).
"""

from __future__ import annotations

import math
from xml.sax.saxutils import escape, quoteattr

from repro.render.color import Color
from repro.render.scene import Circle, Group, Line, Node, Polygon, Polyline, Rect, Scene, Text, Wedge


def _style_attributes(fill: Color | None, stroke: Color | None, stroke_width: float, dashed: bool, opacity: float) -> str:
    parts = []
    if fill is None:
        parts.append('fill="none"')
    else:
        parts.append(f'fill="{fill.to_hex()}"')
        if fill.alpha < 1.0:
            parts.append(f'fill-opacity="{fill.alpha:.3f}"')
    if stroke is not None:
        parts.append(f'stroke="{stroke.to_hex()}"')
        parts.append(f'stroke-width="{stroke_width:g}"')
        if stroke.alpha < 1.0:
            parts.append(f'stroke-opacity="{stroke.alpha:.3f}"')
        if dashed:
            parts.append('stroke-dasharray="4 3"')
    if opacity < 1.0:
        parts.append(f'opacity="{opacity:.3f}"')
    return " ".join(parts)


def _common_attributes(node: Node) -> str:
    parts = []
    if node.element_id:
        parts.append(f"data-element={quoteattr(node.element_id)}")
    if node.css_class:
        parts.append(f"class={quoteattr(node.css_class)}")
    return " ".join(parts)


def _points_attribute(points: tuple[tuple[float, float], ...]) -> str:
    return " ".join(f"{x:.2f},{y:.2f}" for x, y in points)


def _render_node(node: Node, lines: list[str], indent: str) -> None:
    common = _common_attributes(node)
    common = f" {common}" if common else ""
    if isinstance(node, Group):
        label = f" data-name={quoteattr(node.name)}" if node.name else ""
        lines.append(f"{indent}<g{label}{common}>")
        for child in node.children:
            _render_node(child, lines, indent + "  ")
        lines.append(f"{indent}</g>")
        return
    if isinstance(node, Rect):
        style = _style_attributes(
            node.style.fill, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity
        )
        tooltip = f"<title>{escape(node.tooltip)}</title>" if node.tooltip else ""
        lines.append(
            f'{indent}<rect x="{node.x:.2f}" y="{node.y:.2f}" width="{max(node.width, 0):.2f}" '
            f'height="{max(node.height, 0):.2f}" {style}{common}>{tooltip}</rect>'
            if tooltip
            else f'{indent}<rect x="{node.x:.2f}" y="{node.y:.2f}" width="{max(node.width, 0):.2f}" '
            f'height="{max(node.height, 0):.2f}" {style}{common}/>'
        )
        return
    if isinstance(node, Line):
        style = _style_attributes(None, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity)
        lines.append(
            f'{indent}<line x1="{node.x1:.2f}" y1="{node.y1:.2f}" x2="{node.x2:.2f}" y2="{node.y2:.2f}" '
            f"{style}{common}/>"
        )
        return
    if isinstance(node, Polyline):
        style = _style_attributes(None, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity)
        lines.append(f'{indent}<polyline points="{_points_attribute(node.points)}" {style}{common}/>')
        return
    if isinstance(node, Polygon):
        style = _style_attributes(
            node.style.fill, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity
        )
        lines.append(f'{indent}<polygon points="{_points_attribute(node.points)}" {style}{common}/>')
        return
    if isinstance(node, Circle):
        style = _style_attributes(
            node.style.fill, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity
        )
        tooltip = f"<title>{escape(node.tooltip)}</title>" if node.tooltip else ""
        if tooltip:
            lines.append(
                f'{indent}<circle cx="{node.cx:.2f}" cy="{node.cy:.2f}" r="{node.radius:.2f}" '
                f"{style}{common}>{tooltip}</circle>"
            )
        else:
            lines.append(
                f'{indent}<circle cx="{node.cx:.2f}" cy="{node.cy:.2f}" r="{node.radius:.2f}" {style}{common}/>'
            )
        return
    if isinstance(node, Wedge):
        style = _style_attributes(
            node.style.fill, node.style.stroke, node.style.stroke_width, node.style.dashed, node.style.opacity
        )
        path = _wedge_path(node)
        tooltip = f"<title>{escape(node.tooltip)}</title>" if node.tooltip else ""
        if tooltip:
            lines.append(f'{indent}<path d="{path}" {style}{common}>{tooltip}</path>')
        else:
            lines.append(f'{indent}<path d="{path}" {style}{common}/>')
        return
    if isinstance(node, Text):
        fill = node.style.fill
        color = fill.to_hex() if fill is not None else "#000000"
        transform = (
            f' transform="rotate({node.rotation:.1f} {node.x:.2f} {node.y:.2f})"' if node.rotation else ""
        )
        lines.append(
            f'{indent}<text x="{node.x:.2f}" y="{node.y:.2f}" fill="{color}" '
            f'font-size="{node.style.font_size:g}" text-anchor="{node.anchor}" '
            f'font-family="Helvetica, Arial, sans-serif"{transform}{(" " + common.strip()) if common.strip() else ""}>'
            f"{escape(node.text)}</text>"
        )
        return
    raise TypeError(f"SVG backend cannot render node type {type(node).__name__}")


def _wedge_path(node: Wedge) -> str:
    start = math.radians(node.start_angle - 90.0)
    end = math.radians(node.end_angle - 90.0)
    x1 = node.cx + node.radius * math.cos(start)
    y1 = node.cy + node.radius * math.sin(start)
    x2 = node.cx + node.radius * math.cos(end)
    y2 = node.cy + node.radius * math.sin(end)
    large_arc = 1 if (node.end_angle - node.start_angle) % 360.0 > 180.0 else 0
    return (
        f"M {node.cx:.2f} {node.cy:.2f} L {x1:.2f} {y1:.2f} "
        f"A {node.radius:.2f} {node.radius:.2f} 0 {large_arc} 1 {x2:.2f} {y2:.2f} Z"
    )


def render_svg(scene: Scene) -> str:
    """Serialize ``scene`` to a standalone SVG document string."""
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{scene.width:.0f}" height="{scene.height:.0f}" '
        f'viewBox="0 0 {scene.width:.0f} {scene.height:.0f}">',
    ]
    if scene.title:
        lines.append(f"  <title>{escape(scene.title)}</title>")
    if scene.background is not None:
        lines.append(
            f'  <rect x="0" y="0" width="{scene.width:.0f}" height="{scene.height:.0f}" '
            f'fill="{scene.background.to_hex()}"/>'
        )
    for child in scene.root.children:
        _render_node(child, lines, "  ")
    lines.append("</svg>")
    return "\n".join(lines)


def save_svg(scene: Scene, path: str) -> str:
    """Render ``scene`` and write it to ``path``; returns the path for convenience."""
    document = render_svg(scene)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(document)
    return path

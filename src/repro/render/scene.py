"""The scene graph: backend-independent drawing primitives.

Views build a tree of primitives (rectangles, lines, text, circles, polygons,
pie wedges) grouped into named :class:`Group` nodes; backends (SVG, ASCII)
walk the tree and emit output.  Primitives carry their domain object's
identifier in ``element_id`` so that hit-testing and selection can map a pixel
back to a flex-offer — the headless equivalent of the tool's mouse
interaction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import RenderError
from repro.render.color import Color


@dataclass(frozen=True)
class Style:
    """Visual attributes shared by all primitives."""

    fill: Color | None = None
    stroke: Color | None = None
    stroke_width: float = 1.0
    dashed: bool = False
    opacity: float = 1.0
    font_size: float = 11.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.opacity <= 1.0:
            raise RenderError("opacity must lie in [0, 1]")


@dataclass
class Node:
    """Base class of every scene-graph node."""

    #: Identifier of the domain object the node represents ("" for decoration).
    element_id: str = ""
    #: Free-form class label used for styling/grouping in the SVG output.
    css_class: str = ""


@dataclass
class Rect(Node):
    """An axis-aligned rectangle."""

    x: float = 0.0
    y: float = 0.0
    width: float = 0.0
    height: float = 0.0
    style: Style = field(default_factory=Style)
    tooltip: str = ""

    def contains(self, px: float, py: float) -> bool:
        """Whether the pixel (px, py) lies inside the rectangle."""
        return self.x <= px <= self.x + self.width and self.y <= py <= self.y + self.height


@dataclass
class Line(Node):
    """A straight line segment."""

    x1: float = 0.0
    y1: float = 0.0
    x2: float = 0.0
    y2: float = 0.0
    style: Style = field(default_factory=Style)


@dataclass
class Polyline(Node):
    """A connected sequence of line segments (e.g. a time-series curve)."""

    points: tuple[tuple[float, float], ...] = ()
    style: Style = field(default_factory=Style)


@dataclass
class Polygon(Node):
    """A closed filled polygon (e.g. a stacked-area band or map region)."""

    points: tuple[tuple[float, float], ...] = ()
    style: Style = field(default_factory=Style)


@dataclass
class Circle(Node):
    """A circle (map-view glyph anchors, schematic nodes)."""

    cx: float = 0.0
    cy: float = 0.0
    radius: float = 0.0
    style: Style = field(default_factory=Style)
    tooltip: str = ""


@dataclass
class Wedge(Node):
    """A pie-chart wedge from ``start_angle`` to ``end_angle`` (degrees, clockwise from 12 o'clock)."""

    cx: float = 0.0
    cy: float = 0.0
    radius: float = 0.0
    start_angle: float = 0.0
    end_angle: float = 0.0
    style: Style = field(default_factory=Style)
    tooltip: str = ""

    def arc_points(self, steps: int = 24) -> list[tuple[float, float]]:
        """Approximate the wedge outline as a polygon (used by the ASCII backend)."""
        points = [(self.cx, self.cy)]
        span = self.end_angle - self.start_angle
        for step in range(steps + 1):
            angle = math.radians(self.start_angle + span * step / steps - 90.0)
            points.append(
                (self.cx + self.radius * math.cos(angle), self.cy + self.radius * math.sin(angle))
            )
        return points


@dataclass
class Text(Node):
    """A text label anchored at (x, y)."""

    x: float = 0.0
    y: float = 0.0
    text: str = ""
    style: Style = field(default_factory=Style)
    anchor: str = "start"  # start | middle | end
    rotation: float = 0.0


@dataclass
class Group(Node):
    """A named group of child nodes."""

    name: str = ""
    children: list[Node] = field(default_factory=list)

    def add(self, node: Node) -> Node:
        """Append a child node and return it (for chaining)."""
        self.children.append(node)
        return node

    def extend(self, nodes: Sequence[Node]) -> None:
        """Append many child nodes."""
        self.children.extend(nodes)

    def walk(self) -> Iterator[Node]:
        """Depth-first iteration over all descendant nodes (excluding self)."""
        for child in self.children:
            yield child
            if isinstance(child, Group):
                yield from child.walk()


@dataclass
class Scene:
    """A complete drawing: a root group plus the canvas size."""

    width: float
    height: float
    root: Group = field(default_factory=lambda: Group(name="root"))
    title: str = ""
    background: Color | None = None

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise RenderError("scene dimensions must be positive")

    def add(self, node: Node) -> Node:
        """Add a node to the root group."""
        return self.root.add(node)

    def walk(self) -> Iterator[Node]:
        """Iterate over every node in the scene."""
        return self.root.walk()

    def count_nodes(self) -> int:
        """Total number of primitive and group nodes (excluding the root)."""
        return sum(1 for _ in self.walk())

    def find(self, element_id: str) -> list[Node]:
        """All nodes carrying the given ``element_id``."""
        return [node for node in self.walk() if node.element_id == element_id]

    def hit_test(self, x: float, y: float) -> list[Node]:
        """Nodes whose geometry contains the pixel (rectangles and circles only).

        This is the headless stand-in for the tool's mouse-pointer interaction:
        the returned nodes' ``element_id`` values identify the flex-offers under
        the cursor.
        """
        hits: list[Node] = []
        for node in self.walk():
            if isinstance(node, Rect) and node.contains(x, y):
                hits.append(node)
            elif isinstance(node, Circle):
                if (x - node.cx) ** 2 + (y - node.cy) ** 2 <= node.radius**2:
                    hits.append(node)
        return hits

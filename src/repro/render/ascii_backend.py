"""ASCII backend: render a scene into a character grid.

Useful for terminal-only environments, doctest-style examples and quick test
assertions about layout (e.g. "the flex-offer boxes occupy separate lanes")
without parsing SVG.  The backend draws rectangle outlines/fills, straight
lines (approximated with Bresenham), circle outlines and text labels; wedges
and polygons are approximated by their outlines.
"""

from __future__ import annotations

import math

from repro.errors import RenderError
from repro.render.scene import Circle, Group, Line, Node, Polygon, Polyline, Rect, Scene, Text, Wedge


class AsciiCanvas:
    """A character grid with primitive drawing operations."""

    def __init__(self, width: int, height: int) -> None:
        if width < 1 or height < 1:
            raise RenderError("ASCII canvas dimensions must be positive")
        self.width = width
        self.height = height
        self._cells = [[" "] * width for _ in range(height)]

    def put(self, x: int, y: int, char: str) -> None:
        """Set a cell when inside the canvas (silently ignores out-of-range)."""
        if 0 <= x < self.width and 0 <= y < self.height:
            self._cells[y][x] = char

    def draw_line(self, x1: int, y1: int, x2: int, y2: int, char: str = "*") -> None:
        """Bresenham line between two cells."""
        dx = abs(x2 - x1)
        dy = -abs(y2 - y1)
        sx = 1 if x1 < x2 else -1
        sy = 1 if y1 < y2 else -1
        error = dx + dy
        x, y = x1, y1
        while True:
            self.put(x, y, char)
            if x == x2 and y == y2:
                break
            doubled = 2 * error
            if doubled >= dy:
                error += dy
                x += sx
            if doubled <= dx:
                error += dx
                y += sy

    def draw_rect(self, x: int, y: int, width: int, height: int, fill: str | None, border: str = "#") -> None:
        """Rectangle outline with optional interior fill character."""
        if width < 1 or height < 1:
            return
        if fill is not None:
            for yy in range(y, y + height):
                for xx in range(x, x + width):
                    self.put(xx, yy, fill)
        for xx in range(x, x + width):
            self.put(xx, y, border)
            self.put(xx, y + height - 1, border)
        for yy in range(y, y + height):
            self.put(x, yy, border)
            self.put(x + width - 1, yy, border)

    def draw_text(self, x: int, y: int, text: str) -> None:
        """Write a text string starting at (x, y)."""
        for offset, char in enumerate(text):
            self.put(x + offset, y, char)

    def to_string(self) -> str:
        """The canvas as a newline-joined string."""
        return "\n".join("".join(row).rstrip() for row in self._cells)


def _scale(value: float, factor: float) -> int:
    return int(round(value * factor))


def render_ascii(scene: Scene, columns: int = 100) -> str:
    """Render ``scene`` to ASCII art ``columns`` characters wide.

    The vertical scale is halved relative to the horizontal one because
    terminal cells are roughly twice as tall as they are wide.
    """
    factor = columns / scene.width
    rows = max(int(round(scene.height * factor * 0.5)), 1)
    canvas = AsciiCanvas(columns, rows)
    fx = factor
    fy = factor * 0.5

    def draw(node: Node) -> None:
        if isinstance(node, Group):
            for child in node.children:
                draw(child)
            return
        if isinstance(node, Rect):
            fill = "." if node.style.fill is not None else None
            canvas.draw_rect(
                _scale(node.x, fx),
                _scale(node.y, fy),
                max(_scale(node.width, fx), 1),
                max(_scale(node.height, fy), 1),
                fill=fill,
                border="#",
            )
            return
        if isinstance(node, Line):
            char = ":" if node.style.dashed else "|" if abs(node.x2 - node.x1) < 1e-9 else "-"
            canvas.draw_line(
                _scale(node.x1, fx), _scale(node.y1, fy), _scale(node.x2, fx), _scale(node.y2, fy), char
            )
            return
        if isinstance(node, (Polyline, Polygon)):
            points = list(node.points)
            if isinstance(node, Polygon) and points:
                points.append(points[0])
            for (x1, y1), (x2, y2) in zip(points, points[1:]):
                canvas.draw_line(_scale(x1, fx), _scale(y1, fy), _scale(x2, fx), _scale(y2, fy), "*")
            return
        if isinstance(node, Circle):
            steps = max(int(node.radius * fx), 8)
            for step in range(steps):
                angle = 2 * math.pi * step / steps
                canvas.put(
                    _scale(node.cx + node.radius * math.cos(angle), fx),
                    _scale(node.cy + node.radius * math.sin(angle), fy),
                    "o",
                )
            return
        if isinstance(node, Wedge):
            for (x1, y1), (x2, y2) in zip(node.arc_points(), node.arc_points()[1:]):
                canvas.draw_line(_scale(x1, fx), _scale(y1, fy), _scale(x2, fx), _scale(y2, fy), "%")
            return
        if isinstance(node, Text):
            x = _scale(node.x, fx)
            if node.anchor == "middle":
                x -= len(node.text) // 2
            elif node.anchor == "end":
                x -= len(node.text)
            canvas.draw_text(x, _scale(node.y, fy), node.text)
            return

    for child in scene.root.children:
        draw(child)
    return canvas.to_string()

"""Axis construction: ticks, labels and grid lines as scene-graph nodes.

Both flex-offer views put time on the abscissa; the ordinate is either
unit-less (basic view) or energy with synchronised scales (profile view).
These helpers build the corresponding decoration so individual views only add
their data marks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.render.color import Palette
from repro.render.scales import LinearScale, SlotTimeScale
from repro.render.scene import Group, Line, Style, Text


@dataclass(frozen=True)
class PlotArea:
    """The rectangular data region of a chart, in pixel coordinates."""

    left: float
    top: float
    width: float
    height: float

    @property
    def right(self) -> float:
        return self.left + self.width

    @property
    def bottom(self) -> float:
        return self.top + self.height


def time_axis(area: PlotArea, scale: SlotTimeScale, max_ticks: int = 8, label: str = "time") -> Group:
    """Horizontal time axis with slot ticks, HH:MM labels and vertical grid lines."""
    group = Group(name="time-axis")
    axis_style = Style(stroke=Palette.AXIS, stroke_width=1.0)
    grid_style = Style(stroke=Palette.AXIS.with_alpha(0.15), stroke_width=0.5)
    text_style = Style(fill=Palette.AXIS, font_size=10.0)

    group.add(Line(x1=area.left, y1=area.bottom, x2=area.right, y2=area.bottom, style=axis_style))
    for slot in scale.tick_slots(max_ticks):
        x = scale.project(slot)
        if x < area.left - 0.5 or x > area.right + 0.5:
            continue
        group.add(Line(x1=x, y1=area.top, x2=x, y2=area.bottom, style=grid_style, css_class="grid"))
        group.add(Line(x1=x, y1=area.bottom, x2=x, y2=area.bottom + 4, style=axis_style))
        group.add(
            Text(
                x=x,
                y=area.bottom + 16,
                text=scale.tick_label(slot),
                style=text_style,
                anchor="middle",
                css_class="tick-label",
            )
        )
    group.add(
        Text(
            x=area.left + area.width / 2,
            y=area.bottom + 30,
            text=label,
            style=text_style,
            anchor="middle",
            css_class="axis-label",
        )
    )
    return group


def value_axis(
    area: PlotArea, scale: LinearScale, max_ticks: int = 6, label: str = "", unit: str = ""
) -> Group:
    """Vertical value axis with pretty ticks and horizontal grid lines."""
    group = Group(name="value-axis")
    axis_style = Style(stroke=Palette.AXIS, stroke_width=1.0)
    grid_style = Style(stroke=Palette.AXIS.with_alpha(0.15), stroke_width=0.5)
    text_style = Style(fill=Palette.AXIS, font_size=10.0)

    group.add(Line(x1=area.left, y1=area.top, x2=area.left, y2=area.bottom, style=axis_style))
    for tick in scale.ticks(max_ticks):
        y = scale.project(tick)
        if y < area.top - 0.5 or y > area.bottom + 0.5:
            continue
        group.add(Line(x1=area.left, y1=y, x2=area.right, y2=y, style=grid_style, css_class="grid"))
        group.add(Line(x1=area.left - 4, y1=y, x2=area.left, y2=y, style=axis_style))
        label_text = f"{tick:g}"
        group.add(
            Text(x=area.left - 7, y=y + 3, text=label_text, style=text_style, anchor="end", css_class="tick-label")
        )
    if label or unit:
        caption = f"{label} [{unit}]" if unit else label
        group.add(
            Text(
                x=area.left - 38,
                y=area.top + area.height / 2,
                text=caption,
                style=text_style,
                anchor="middle",
                rotation=-90.0,
                css_class="axis-label",
            )
        )
    return group


def legend(area: PlotArea, entries: list[tuple[str, "object"]], x: float | None = None, y: float | None = None) -> Group:
    """A simple colour-swatch legend.

    ``entries`` is a list of (label, Color) pairs; the legend is laid out
    vertically starting at the top-right corner of the plot area by default.
    """
    from repro.render.color import Color
    from repro.render.scene import Rect

    group = Group(name="legend")
    text_style = Style(fill=Palette.AXIS, font_size=10.0)
    left = x if x is not None else area.right - 150
    top = y if y is not None else area.top + 6
    for index, (label, color) in enumerate(entries):
        if not isinstance(color, Color):
            continue
        row_y = top + index * 16
        group.add(
            Rect(
                x=left,
                y=row_y,
                width=12,
                height=10,
                style=Style(fill=color, stroke=Palette.AXIS, stroke_width=0.5),
                css_class="legend-swatch",
            )
        )
        group.add(Text(x=left + 18, y=row_y + 9, text=label, style=text_style, css_class="legend-label"))
    return group

"""Scales and the "pretty ticks" algorithm.

The tool offers "automatic selection of 'pretty scales' of the axes"
(Section 4).  A scale maps domain values (time slots, kWh) onto pixel
coordinates; :func:`pretty_ticks` picks human-friendly tick positions
(multiples of 1, 2, 2.5 or 5 times a power of ten) covering the domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from datetime import datetime

from repro.errors import RenderError
from repro.timeseries.grid import TimeGrid

_NICE_STEPS = (1.0, 2.0, 2.5, 5.0, 10.0)


def nice_step(raw_step: float) -> float:
    """Round a raw step size up to the nearest "nice" step (1/2/2.5/5 x 10^k)."""
    if raw_step <= 0:
        raise RenderError("step must be positive")
    exponent = math.floor(math.log10(raw_step))
    fraction = raw_step / 10**exponent
    for candidate in _NICE_STEPS:
        if fraction <= candidate + 1e-12:
            return candidate * 10**exponent
    return 10.0 * 10**exponent


def pretty_ticks(low: float, high: float, max_ticks: int = 8) -> list[float]:
    """Return at most ``max_ticks`` nicely rounded tick values covering [low, high]."""
    if max_ticks < 2:
        raise RenderError("max_ticks must be at least 2")
    if high < low:
        low, high = high, low
    if math.isclose(high, low):
        high = low + 1.0
    step = nice_step((high - low) / (max_ticks - 1))
    first = math.floor(low / step) * step
    ticks = []
    value = first
    # Guard the loop against floating point drift.
    while value <= high + step * 1e-9 and len(ticks) <= max_ticks + 2:
        if value >= low - step * 1e-9:
            ticks.append(round(value, 10))
        value += step
    return ticks


@dataclass(frozen=True)
class LinearScale:
    """Affine mapping from a numeric domain onto a pixel range."""

    domain_min: float
    domain_max: float
    range_min: float
    range_max: float

    def __post_init__(self) -> None:
        if math.isclose(self.domain_max, self.domain_min):
            raise RenderError("scale domain must have non-zero extent")

    def project(self, value: float) -> float:
        """Map a domain value to a pixel coordinate (clamping is the caller's job)."""
        fraction = (value - self.domain_min) / (self.domain_max - self.domain_min)
        return self.range_min + fraction * (self.range_max - self.range_min)

    def invert(self, pixel: float) -> float:
        """Map a pixel coordinate back to a domain value (used by hit-testing)."""
        fraction = (pixel - self.range_min) / (self.range_max - self.range_min)
        return self.domain_min + fraction * (self.domain_max - self.domain_min)

    def ticks(self, max_ticks: int = 8) -> list[float]:
        """Pretty tick values inside the scale's domain."""
        return [
            tick
            for tick in pretty_ticks(self.domain_min, self.domain_max, max_ticks)
            if self.domain_min - 1e-9 <= tick <= self.domain_max + 1e-9
        ]

    @classmethod
    def nice(cls, low: float, high: float, range_min: float, range_max: float, max_ticks: int = 8) -> "LinearScale":
        """Build a scale whose domain is expanded to pretty bounds covering [low, high]."""
        if math.isclose(high, low):
            high = low + 1.0
        ticks = pretty_ticks(low, high, max_ticks)
        domain_min = min(ticks[0], low)
        domain_max = max(ticks[-1], high)
        return cls(domain_min, domain_max, range_min, range_max)


@dataclass(frozen=True)
class SlotTimeScale:
    """Scale from time-grid slots to pixels, with datetime-labelled ticks."""

    grid: TimeGrid
    scale: LinearScale

    @classmethod
    def build(
        cls, grid: TimeGrid, first_slot: int, last_slot: int, range_min: float, range_max: float
    ) -> "SlotTimeScale":
        """Build a slot scale covering ``[first_slot, last_slot]``."""
        if last_slot <= first_slot:
            last_slot = first_slot + 1
        return cls(grid, LinearScale(first_slot, last_slot, range_min, range_max))

    def project(self, slot: float) -> float:
        """Pixel x-coordinate of a (possibly fractional) slot."""
        return self.scale.project(slot)

    def project_time(self, instant: datetime) -> float:
        """Pixel x-coordinate of an absolute instant."""
        delta = (instant - self.grid.origin).total_seconds()
        slot = delta / self.grid.resolution.total_seconds()
        return self.scale.project(slot)

    def tick_slots(self, max_ticks: int = 8) -> list[int]:
        """Slot values to place ticks at (integer slots only)."""
        return sorted({int(round(tick)) for tick in self.scale.ticks(max_ticks)})

    def tick_label(self, slot: int) -> str:
        """Human-readable label of a tick slot (HH:MM, with the date on midnight)."""
        instant = self.grid.to_datetime(slot)
        if instant.hour == 0 and instant.minute == 0:
            return instant.strftime("%m-%d %H:%M")
        return instant.strftime("%H:%M")

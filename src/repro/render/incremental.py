"""Incremental rendering.

Section 4: the tool offers "the incremental rendering of flex-offers, which
allows executing actions when a flex-offer rendering is in progress (rendering
does not freeze the tool)".  The headless equivalent renders the scene's
top-level marks in chunks: a generator yields partial SVG documents (or just
progress records), so a caller can interleave other work — and the CLAIM-4
bench can measure the latency to the first visible chunk against a monolithic
render.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterator

from repro.errors import RenderError
from repro.render.scene import Group, Node, Scene
from repro.render.svg import render_svg


@dataclass(frozen=True)
class RenderChunk:
    """One step of an incremental render."""

    index: int
    nodes_rendered: int
    nodes_total: int
    elapsed_seconds: float
    #: The SVG document containing everything rendered so far (only filled when
    #: ``emit_documents`` is requested — building it repeatedly is costly).
    document: str | None = None

    @property
    def complete(self) -> bool:
        """Whether this chunk completed the scene."""
        return self.nodes_rendered >= self.nodes_total


class IncrementalRenderer:
    """Chunked renderer over a scene's top-level data marks.

    The scene is expected to follow the views' convention: decoration (axes,
    legend) lives in dedicated groups, while per-flex-offer marks are the
    children of a group named ``marks``.  When no such group exists, all
    top-level children are chunked.
    """

    def __init__(self, chunk_size: int = 200, emit_documents: bool = False) -> None:
        if chunk_size < 1:
            raise RenderError("chunk_size must be >= 1")
        self.chunk_size = chunk_size
        self.emit_documents = emit_documents

    def _marks_group(self, scene: Scene) -> Group:
        for node in scene.root.children:
            if isinstance(node, Group) and node.name == "marks":
                return node
        return scene.root

    def render(self, scene: Scene) -> Iterator[RenderChunk]:
        """Yield :class:`RenderChunk` records while progressively building the scene."""
        started = time.perf_counter()
        marks = self._marks_group(scene)
        all_marks = list(marks.children)
        total = len(all_marks)

        partial_scene = Scene(width=scene.width, height=scene.height, title=scene.title, background=scene.background)
        # Decoration first: everything that is not the marks group.
        for node in scene.root.children:
            if node is not marks:
                partial_scene.root.add(node)
        partial_marks = Group(name="marks")
        partial_scene.root.add(partial_marks)

        rendered = 0
        index = 0
        if total == 0:
            yield RenderChunk(
                index=0,
                nodes_rendered=0,
                nodes_total=0,
                elapsed_seconds=time.perf_counter() - started,
                document=render_svg(partial_scene) if self.emit_documents else None,
            )
            return
        while rendered < total:
            chunk_nodes: list[Node] = all_marks[rendered : rendered + self.chunk_size]
            partial_marks.extend(chunk_nodes)
            rendered += len(chunk_nodes)
            document = render_svg(partial_scene) if self.emit_documents else None
            yield RenderChunk(
                index=index,
                nodes_rendered=rendered,
                nodes_total=total,
                elapsed_seconds=time.perf_counter() - started,
                document=document,
            )
            index += 1


def time_to_first_chunk(scene: Scene, chunk_size: int = 200) -> float:
    """Seconds until the first chunk of ``scene`` is available (documents included)."""
    renderer = IncrementalRenderer(chunk_size=chunk_size, emit_documents=True)
    for chunk in renderer.render(scene):
        return chunk.elapsed_seconds
    return 0.0


def monolithic_render_time(scene: Scene) -> float:
    """Seconds for a single monolithic SVG render of the whole scene."""
    started = time.perf_counter()
    render_svg(scene)
    return time.perf_counter() - started

"""Colours and the colour semantics of the flex-offer views.

The paper fixes a small colour vocabulary for the basic and profile views
(Section 4): light blue boxes for non-aggregated flex-offers, light red boxes
for aggregated ones, grey rectangles for the time-flexibility interval, red
solid lines for the scheduled start, yellow marker lines for the
creation/acceptance/assignment times and red dashed lines for aggregation
provenance.  Keeping the palette in one place lets every view and test agree
on it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RenderError


@dataclass(frozen=True)
class Color:
    """An RGB colour with an optional alpha channel (all components 0-255)."""

    red: int
    green: int
    blue: int
    alpha: float = 1.0

    def __post_init__(self) -> None:
        for component in (self.red, self.green, self.blue):
            if not 0 <= component <= 255:
                raise RenderError(f"colour component {component} outside 0..255")
        if not 0.0 <= self.alpha <= 1.0:
            raise RenderError(f"alpha {self.alpha} outside 0..1")

    def to_hex(self) -> str:
        """``#rrggbb`` hexadecimal form (alpha is emitted separately in SVG)."""
        return f"#{self.red:02x}{self.green:02x}{self.blue:02x}"

    def with_alpha(self, alpha: float) -> "Color":
        """Return the same colour with a different alpha."""
        return Color(self.red, self.green, self.blue, alpha)

    def lighten(self, amount: float = 0.3) -> "Color":
        """Mix the colour towards white by ``amount`` in [0, 1]."""
        if not 0.0 <= amount <= 1.0:
            raise RenderError("lighten amount must lie in [0, 1]")
        mix = lambda component: int(round(component + (255 - component) * amount))  # noqa: E731
        return Color(mix(self.red), mix(self.green), mix(self.blue), self.alpha)

    @classmethod
    def from_hex(cls, text: str, alpha: float = 1.0) -> "Color":
        """Parse ``#rrggbb`` (with or without the leading ``#``)."""
        value = text.lstrip("#")
        if len(value) != 6:
            raise RenderError(f"cannot parse colour {text!r}")
        try:
            return cls(int(value[0:2], 16), int(value[2:4], 16), int(value[4:6], 16), alpha)
        except ValueError as exc:
            raise RenderError(f"cannot parse colour {text!r}") from exc


class Palette:
    """The colour vocabulary of the flex-offer views (Section 4 of the paper)."""

    #: Light blue boxes: non-aggregated flex-offers.
    FLEX_OFFER = Color.from_hex("#aecde8")
    #: Light red boxes: aggregated flex-offers.
    AGGREGATED_FLEX_OFFER = Color.from_hex("#f2b8b4")
    #: Grey rectangles: the start-time flexibility interval.
    TIME_FLEXIBILITY = Color.from_hex("#c8c8c8")
    #: Red solid lines: the scheduled start time / scheduled energy amounts.
    SCHEDULE = Color.from_hex("#cc2222")
    #: Yellow marker lines: creation / acceptance / assignment times.
    MARKER = Color.from_hex("#e6c619")
    #: Red dashed lines: aggregation provenance links.
    PROVENANCE = Color.from_hex("#cc2222")
    #: Energy-band fill in the profile view (between min and max energy).
    ENERGY_BAND = Color.from_hex("#7fb2d9")
    #: Minimum-energy bar fill in the profile view.
    ENERGY_MIN = Color.from_hex("#3d7ab5")
    #: Axis lines, ticks and labels.
    AXIS = Color.from_hex("#444444")
    #: Background of plot panels.
    PANEL = Color.from_hex("#fbfbfb")
    #: Selection rectangle outline.
    SELECTION = Color.from_hex("#cc2222")
    #: Flex-offer state colours (pie charts of the dashboard and schematic views).
    STATE_ACCEPTED = Color.from_hex("#4c9f70")
    STATE_ASSIGNED = Color.from_hex("#3d7ab5")
    STATE_REJECTED = Color.from_hex("#c0504d")
    STATE_OFFERED = Color.from_hex("#b5b5b5")
    STATE_EXECUTED = Color.from_hex("#8064a2")
    #: Series colours for the dashboard / figure-1 charts.
    RES_PRODUCTION = Color.from_hex("#7ab648")
    NON_FLEXIBLE_DEMAND = Color.from_hex("#808080")
    FLEXIBLE_DEMAND = Color.from_hex("#f0a030")

    @classmethod
    def state_color(cls, state: str) -> Color:
        """Colour of a flex-offer lifecycle state (grey for unknown states)."""
        return {
            "accepted": cls.STATE_ACCEPTED,
            "assigned": cls.STATE_ASSIGNED,
            "rejected": cls.STATE_REJECTED,
            "offered": cls.STATE_OFFERED,
            "executed": cls.STATE_EXECUTED,
        }.get(state, cls.STATE_OFFERED)

    #: A categorical cycle for arbitrary series (map view bars, pivot swimlanes).
    CATEGORICAL = (
        Color.from_hex("#3d7ab5"),
        Color.from_hex("#e8833a"),
        Color.from_hex("#4c9f70"),
        Color.from_hex("#c0504d"),
        Color.from_hex("#8064a2"),
        Color.from_hex("#6b8e23"),
        Color.from_hex("#d4a017"),
        Color.from_hex("#5f9ea0"),
    )

    @classmethod
    def categorical(cls, index: int) -> Color:
        """The ``index``-th categorical colour (cycles when exhausted)."""
        return cls.CATEGORICAL[index % len(cls.CATEGORICAL)]

"""Rendering substrate: colours, scales, scene graph, SVG/ASCII backends, incremental rendering."""

from repro.render.ascii_backend import AsciiCanvas, render_ascii
from repro.render.axes import PlotArea, legend, time_axis, value_axis
from repro.render.color import Color, Palette
from repro.render.incremental import (
    IncrementalRenderer,
    RenderChunk,
    monolithic_render_time,
    time_to_first_chunk,
)
from repro.render.scales import LinearScale, SlotTimeScale, nice_step, pretty_ticks
from repro.render.scene import (
    Circle,
    Group,
    Line,
    Node,
    Polygon,
    Polyline,
    Rect,
    Scene,
    Style,
    Text,
    Wedge,
)
from repro.render.svg import render_svg, save_svg

__all__ = [
    "Color",
    "Palette",
    "LinearScale",
    "SlotTimeScale",
    "pretty_ticks",
    "nice_step",
    "Scene",
    "Group",
    "Node",
    "Rect",
    "Line",
    "Polyline",
    "Polygon",
    "Circle",
    "Wedge",
    "Text",
    "Style",
    "render_svg",
    "save_svg",
    "render_ascii",
    "AsciiCanvas",
    "PlotArea",
    "time_axis",
    "value_axis",
    "legend",
    "IncrementalRenderer",
    "RenderChunk",
    "time_to_first_chunk",
    "monolithic_render_time",
]

"""Power-exchange market model (Nordpool-spot substitute).

Section 2: for periods in which the balance cannot be met internally, the
enterprise buys or sells energy on a power exchange at the spot price; if its
customers then deviate from what was bought/sold, it pays an imbalance fee
that is "substantially higher than a spot price".  This module models exactly
those two cash flows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import SchedulingError
from repro.timeseries.series import TimeSeries


class TradeSide(str, Enum):
    """Whether the enterprise buys or sells on the exchange."""

    BUY = "buy"
    SELL = "sell"


@dataclass(frozen=True)
class Trade:
    """One cleared spot-market trade for a single slot."""

    slot: int
    side: TradeSide
    energy_kwh: float
    price_eur_per_mwh: float

    @property
    def cost_eur(self) -> float:
        """Signed cost: positive when the enterprise pays (buys), negative when it earns."""
        sign = 1.0 if self.side is TradeSide.BUY else -1.0
        return sign * self.energy_kwh / 1000.0 * self.price_eur_per_mwh


@dataclass(frozen=True)
class MarketConfig:
    """Market parameters."""

    #: Imbalance energy is charged at ``imbalance_multiplier`` times the spot price.
    imbalance_multiplier: float = 2.5
    #: Minimum trade size (kWh); smaller residuals are simply carried as imbalance.
    minimum_trade_kwh: float = 1.0


class SpotMarket:
    """A simple pay-as-cleared spot market on a per-slot price series."""

    def __init__(self, prices: TimeSeries, config: MarketConfig | None = None) -> None:
        if len(prices) == 0:
            raise SchedulingError("spot market needs a non-empty price series")
        self.prices = prices
        self.config = config or MarketConfig()

    def price_at(self, slot: int) -> float:
        """Spot price (EUR/MWh) at ``slot``; the nearest known price outside the series."""
        if slot < self.prices.start_slot:
            return float(self.prices.values[0])
        if slot >= self.prices.end_slot:
            return float(self.prices.values[-1])
        return self.prices.value_at(slot)

    def clear_residual(self, residual: TimeSeries) -> list[Trade]:
        """Trade away a residual series (positive = deficit to buy, negative = surplus to sell)."""
        trades: list[Trade] = []
        for slot, value in residual.to_pairs():
            energy = abs(value)
            if energy < self.config.minimum_trade_kwh:
                continue
            side = TradeSide.BUY if value > 0 else TradeSide.SELL
            trades.append(
                Trade(slot=slot, side=side, energy_kwh=energy, price_eur_per_mwh=self.price_at(slot))
            )
        return trades

    def trade_cost(self, trades: list[Trade]) -> float:
        """Net cost (EUR) of a list of trades."""
        return float(sum(trade.cost_eur for trade in trades))

    def imbalance_cost(self, imbalance: TimeSeries) -> float:
        """Fee (EUR) charged for the per-slot imbalance energy."""
        cost = 0.0
        for slot, value in imbalance.to_pairs():
            cost += abs(value) / 1000.0 * self.price_at(slot) * self.config.imbalance_multiplier
        return float(cost)

"""MIRABEL enterprise pipeline: planning loop, spot market, settlement."""

from repro.enterprise.market import MarketConfig, SpotMarket, Trade, TradeSide
from repro.enterprise.planning import PlanningConfig, PlanningReport, run_planning_cycle
from repro.enterprise.settlement import (
    RealizationConfig,
    SettlementResult,
    simulate_realization,
)

__all__ = [
    "SpotMarket",
    "MarketConfig",
    "Trade",
    "TradeSide",
    "PlanningConfig",
    "PlanningReport",
    "run_planning_cycle",
    "RealizationConfig",
    "SettlementResult",
    "simulate_realization",
]

"""Settlement: simulating the physical realization of a plan and its deviations.

"Numbers differ if prosumers do not follow the plan" (Req. 2) — settlement is
where those differences appear.  Given the assigned flex-offers, the simulator
draws, per offer, whether the prosumer followed the schedule, started late, or
consumed a different amount; the result feeds the *Plan Deviations* measure,
the dashboard view and the enterprise's imbalance costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.flexoffer.model import FlexOffer, FlexOfferState, Schedule, total_scheduled_series
from repro.olap.measures import MeasureContext
from repro.timeseries.grid import TimeGrid

if TYPE_CHECKING:  # pragma: no cover - typing only.  The simulator imports
    # numpy and the numpy-native series machinery lazily at call time so the
    # enterprise package stays importable in the no-numpy fallback.
    from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class RealizationConfig:
    """How prosumers deviate from their assignments."""

    #: Probability an assignment is followed exactly.
    compliance_probability: float = 0.85
    #: Standard deviation of the multiplicative energy noise for non-compliant prosumers.
    energy_noise_std: float = 0.15
    #: Maximum number of slots a non-compliant prosumer starts late (uniform 0..n).
    max_start_delay_slots: int = 2
    seed: int = 17


@dataclass
class SettlementResult:
    """Realized consumption and its deviation from the plan."""

    realized_offers: list[FlexOffer]
    planned_series: TimeSeries
    realized_series: TimeSeries
    deviation_series: TimeSeries
    realized_energy_by_offer: dict[int, float] = field(default_factory=dict)

    @property
    def total_absolute_deviation(self) -> float:
        """Total absolute plan deviation in kWh."""
        return self.deviation_series.absolute().total()

    def measure_context(self) -> MeasureContext:
        """Context for the OLAP *plan_deviation* measure."""
        return MeasureContext(realized_energy=dict(self.realized_energy_by_offer))


def simulate_realization(
    assigned_offers: Sequence[FlexOffer],
    grid: TimeGrid,
    config: RealizationConfig | None = None,
) -> SettlementResult:
    """Simulate how prosumers physically realize their assignments."""
    import numpy as np

    from repro.timeseries.statistics import plan_deviation

    config = config or RealizationConfig()
    rng = np.random.default_rng(config.seed)

    realized_offers: list[FlexOffer] = []
    realized_energy: dict[int, float] = {}
    for offer in assigned_offers:
        if offer.schedule is None or offer.state not in (
            FlexOfferState.ASSIGNED,
            FlexOfferState.EXECUTED,
        ):
            realized_offers.append(offer)
            continue
        if rng.random() < config.compliance_probability:
            executed = offer.execute()
            realized_offers.append(executed)
            realized_energy[offer.id] = executed.scheduled_energy
            continue
        # Deviating prosumer: shift the start (bounded by its own flexibility)
        # and rescale the energy (bounded by the profile bands).
        delay = int(rng.integers(0, config.max_start_delay_slots + 1))
        new_start = min(offer.schedule.start_slot + delay, offer.latest_start_slot)
        factor = float(rng.normal(1.0, config.energy_noise_std))
        amounts = []
        for piece, planned in zip(offer.profile, offer.schedule.energy_per_slice):
            amount = min(max(planned * factor, piece.min_energy), piece.max_energy)
            amounts.append(amount)
        realized_schedule = Schedule(start_slot=new_start, energy_per_slice=tuple(amounts))
        executed = offer.assign(realized_schedule).execute()
        realized_offers.append(executed)
        realized_energy[offer.id] = executed.scheduled_energy

    planned = total_scheduled_series(
        [offer for offer in assigned_offers if offer.schedule is not None], grid, name="planned"
    )
    realized = total_scheduled_series(
        [offer for offer in realized_offers if offer.schedule is not None], grid, name="realized"
    )
    deviation = plan_deviation(planned, realized)
    return SettlementResult(
        realized_offers=realized_offers,
        planned_series=planned,
        realized_series=realized,
        deviation_series=deviation,
        realized_energy_by_offer=realized_energy,
    )

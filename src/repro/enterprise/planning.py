"""The MIRABEL enterprise planning-and-control loop.

Section 2 of the paper describes the activities this module reproduces end to
end:

1. collect flex-offers and meter readings from prosumers,
2. aggregate the flex-offers,
3. forecast demand and RES supply for the planning horizon,
4. produce a balanced plan by scheduling the (aggregated) flex-offers,
5. buy/sell the remaining residual on the power exchange,
6. disaggregate the plan into flex-offer assignments, and
7. settle: compare the physical realization against the plan and pay
   imbalance fees for the deviations.

The :class:`PlanningReport` returned by :func:`run_planning_cycle` carries all
intermediate series, which the dashboard view and the Figure 1 reproduction
render directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aggregation.parameters import AggregationParameters
from repro.datagen.scenarios import Scenario
from repro.enterprise.market import MarketConfig, SpotMarket, Trade
from repro.enterprise.settlement import RealizationConfig, SettlementResult, simulate_realization
from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.forecasting.models import ForecastModel
from repro.scheduling.evaluation import BalanceReport, report
from repro.scheduling.greedy import GreedyScheduler
from repro.scheduling.pipeline import PipelineResult, Scheduler, schedule_offers
from repro.scheduling.problem import make_target
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class PlanningConfig:
    """Configuration of one planning cycle."""

    use_aggregation: bool = True
    aggregation: AggregationParameters = AggregationParameters()
    market: MarketConfig = MarketConfig()
    realization: RealizationConfig = RealizationConfig()
    #: Offers in these states are (re)planned; rejected offers are left alone.
    plannable_states: tuple[FlexOfferState, ...] = (
        FlexOfferState.OFFERED,
        FlexOfferState.ACCEPTED,
        FlexOfferState.ASSIGNED,
    )


@dataclass
class PlanningReport:
    """Everything one planning cycle produced."""

    #: Individual flex-offers with their final assignments.
    assigned_offers: list[FlexOffer]
    #: Offers that were not planned (e.g. rejected ones), unchanged.
    unplanned_offers: list[FlexOffer]
    #: The balancing target (RES surplus after base demand).
    target: TimeSeries
    #: Flexible load before planning (earliest-start behaviour).
    unplanned_load: TimeSeries
    #: Flexible load after planning.
    planned_load: TimeSeries
    #: Residual traded on the spot market.
    residual: TimeSeries
    trades: list[Trade]
    trade_cost_eur: float
    imbalance_cost_eur: float
    settlement: SettlementResult
    balance_report: BalanceReport
    pipeline: PipelineResult

    @property
    def all_offers(self) -> list[FlexOffer]:
        """Planned and unplanned offers together (what the views visualise)."""
        return self.assigned_offers + self.unplanned_offers


def run_planning_cycle(
    scenario: Scenario,
    scheduler: Scheduler | None = None,
    config: PlanningConfig | None = None,
    demand_forecaster: ForecastModel | None = None,
) -> PlanningReport:
    """Run one full MIRABEL planning cycle over ``scenario``.

    ``demand_forecaster`` is optional: when given, the non-flexible demand used
    for the balancing target is the model's forecast fitted on the scenario's
    demand series (exercising the forecasting substrate); otherwise the actual
    series is used (a perfect forecast).
    """
    scheduler = scheduler or GreedyScheduler()
    config = config or PlanningConfig()

    plannable = [offer for offer in scenario.flex_offers if offer.state in config.plannable_states]
    unplanned = [offer for offer in scenario.flex_offers if offer.state not in config.plannable_states]

    base_demand = scenario.base_demand
    if demand_forecaster is not None and len(scenario.base_demand) >= 8:
        history_length = len(scenario.base_demand) // 2
        history = scenario.base_demand.slice_slots(
            scenario.base_demand.start_slot, scenario.base_demand.start_slot + history_length
        )
        forecast = demand_forecaster.fit(history).forecast(len(scenario.base_demand) - history_length)
        base_demand = history.copy()
        base_demand = TimeSeries(
            scenario.grid,
            scenario.base_demand.start_slot,
            list(history.values) + list(forecast.values),
            name="forecast demand",
            unit=scenario.base_demand.unit,
        )

    target = make_target(scenario.res_production, base_demand)

    # "Before" situation: flexible loads run at their earliest start.
    before = [offer.with_default_schedule() for offer in plannable]
    unplanned_load = TimeSeries.zeros(
        scenario.grid, target.start_slot, len(target), name="flexible load (unplanned)", unit="kWh"
    )
    for offer in before:
        series = offer.scheduled_series(scenario.grid)
        if len(series):
            unplanned_load = unplanned_load + series
    unplanned_load = unplanned_load.slice_slots(target.start_slot, target.end_slot)
    unplanned_load.name = "flexible load (unplanned)"

    # Plan: aggregate → schedule → disaggregate.
    pipeline_result = schedule_offers(
        plannable,
        target,
        scenario.grid,
        scheduler,
        aggregation=config.aggregation,
        use_aggregation=config.use_aggregation,
    )
    planned_load = pipeline_result.scheduled_load(scenario.grid, target)
    planned_load.name = "flexible load (planned)"

    # Market: trade away whatever the flexible load could not absorb.
    residual = target - planned_load
    residual.name = "residual"
    market = SpotMarket(scenario.spot_prices, config.market)
    trades = market.clear_residual(residual)
    trade_cost = market.trade_cost(trades)

    # Settlement: simulate the physical realization and pay imbalance fees.
    settlement = simulate_realization(
        pipeline_result.assigned_offers, scenario.grid, config.realization
    )
    imbalance_cost = market.imbalance_cost(settlement.deviation_series)

    balance = report(pipeline_result.aggregate_solution, pipeline_result.scheduled_object_count)

    return PlanningReport(
        assigned_offers=pipeline_result.assigned_offers,
        unplanned_offers=unplanned,
        target=target,
        unplanned_load=unplanned_load,
        planned_load=planned_load,
        residual=residual,
        trades=trades,
        trade_cost_eur=trade_cost,
        imbalance_cost_eur=imbalance_cost,
        settlement=settlement,
        balance_report=balance,
        pipeline=pipeline_result,
    )

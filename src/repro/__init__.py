"""repro: reproduction of "Visualizing Complex Energy Planning Objects With Inherent
Flexibilities" (Šikšnys & Kaulakienė, EDBT/ICDT Workshops 2013).

The package provides:

* ``repro.flexoffer`` — the flex-offer data model (profiles, flexibilities,
  lifecycle, schedules) and flexibility measures,
* ``repro.timeseries`` — the regular time-series substrate,
* ``repro.datagen`` — synthetic prosumers, geography, grid topology, RES and
  demand profiles, and full scenarios,
* ``repro.warehouse`` — the in-memory MIRABEL DW substitute,
* ``repro.olap`` — dimensions, cube, measures, pivot tables and an MDX subset,
* ``repro.aggregation`` / ``repro.scheduling`` / ``repro.forecasting`` — the
  MIRABEL processing components the tool integrates,
* ``repro.enterprise`` — the planning-and-control loop,
* ``repro.render`` — the headless rendering substrate (scene graph, SVG, ASCII),
* ``repro.views`` — the paper's views (basic, profile, map, schematic, pivot,
  dashboard, aggregation tools, loading workflow, framework facade), and
* ``repro.app`` — figure regeneration plus the ``flexviz`` CLI.
"""

from repro.errors import ReproError

__version__ = "0.1.0"

__all__ = ["ReproError", "__version__"]

"""repro: reproduction of "Visualizing Complex Energy Planning Objects With Inherent
Flexibilities" (Šikšnys & Kaulakienė, EDBT/ICDT Workshops 2013).

The package provides:

* ``repro.session`` — **the one front door**: the :class:`FlexSession` facade
  with its fluent offer query API over the pluggable batch/live engines,
* ``repro.flexoffer`` — the flex-offer data model (profiles, flexibilities,
  lifecycle, schedules) and flexibility measures,
* ``repro.timeseries`` — the regular time-series substrate,
* ``repro.datagen`` — synthetic prosumers, geography, grid topology, RES and
  demand profiles, and full scenarios,
* ``repro.warehouse`` — the in-memory MIRABEL DW substitute,
* ``repro.olap`` — dimensions, cube, measures, pivot tables and an MDX subset,
* ``repro.aggregation`` / ``repro.scheduling`` / ``repro.forecasting`` — the
  MIRABEL processing components the tool integrates,
* ``repro.live`` — the event-driven incremental subsystem (event log, live
  aggregation engine, live warehouse, commit subscriptions, replay),
* ``repro.enterprise`` — the planning-and-control loop,
* ``repro.render`` — the headless rendering substrate (scene graph, SVG, ASCII),
* ``repro.views`` — the paper's views (basic, profile, map, schematic, pivot,
  dashboard, aggregation tools, loading workflow, framework facade), and
* ``repro.app`` — figure regeneration plus the ``flexviz`` CLI.
"""

from repro.errors import ReproError, SessionError

__version__ = "0.3.0"

#: Headline session types, resolved lazily (PEP 562) so ``import repro`` for
#: an exception class stays cheap while ``from repro import FlexSession``
#: still works — the session stack (views, live engine, numpy) only loads on
#: first touch.
_SESSION_EXPORTS = {
    "AggregationBackend": "repro.session.engines",
    "BatchEngine": "repro.session.engines",
    "LiveEngine": "repro.session.engines",
    "FlexSession": "repro.session.facade",
    "OfferQuery": "repro.session.query",
    "QuerySpec": "repro.session.spec",
    "ResultSet": "repro.session.spec",
    "VIEW_REGISTRY": "repro.session.views",
    "register_view": "repro.session.views",
}

__all__ = [
    "ReproError",
    "SessionError",
    *sorted(_SESSION_EXPORTS),
    "__version__",
]


def __getattr__(name: str):
    if name in _SESSION_EXPORTS:
        import importlib

        value = getattr(importlib.import_module(_SESSION_EXPORTS[name]), name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_SESSION_EXPORTS))

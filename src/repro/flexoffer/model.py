"""The flex-offer data model.

A *flex-offer* (Figure 2 of the paper) captures a prosumer's intent or
capability to consume or produce energy with two kinds of flexibility:

* **time flexibility** — the appliance may start anywhere between an earliest
  and a latest start time, and
* **energy flexibility** — every profile slice specifies a minimum and a
  maximum amount of energy.

After the enterprise plans, the flex-offer additionally carries a
:class:`Schedule` fixing the start time and the per-slice energy amounts, and
its lifecycle :class:`FlexOfferState` records whether it was accepted,
assigned, rejected or executed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from datetime import datetime
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import ValidationError
from repro.timeseries.grid import TimeGrid

if TYPE_CHECKING:  # pragma: no cover - typing only.  The series helpers
    # import lazily at call time: TimeSeries is numpy-native, and the model
    # itself must stay importable in the no-numpy fallback configuration.
    from repro.timeseries.series import TimeSeries


class FlexOfferState(str, Enum):
    """Lifecycle of a flex-offer inside the MIRABEL enterprise."""

    #: Received from the prosumer, no decision taken yet.
    OFFERED = "offered"
    #: The enterprise promised (before the acceptance deadline) to use the offer.
    ACCEPTED = "accepted"
    #: A concrete schedule was sent back to the prosumer (before the assignment deadline).
    ASSIGNED = "assigned"
    #: The enterprise declined the offer.
    REJECTED = "rejected"
    #: The schedule was physically realized (metered).
    EXECUTED = "executed"


class Direction(str, Enum):
    """Whether the flex-offer consumes or produces energy."""

    CONSUMPTION = "consumption"
    PRODUCTION = "production"

    @property
    def sign(self) -> int:
        """+1 for consumption, -1 for production (grid-load convention)."""
        return 1 if self is Direction.CONSUMPTION else -1


@dataclass(frozen=True)
class ProfileSlice:
    """One interval of a flex-offer's energy profile.

    Parameters
    ----------
    min_energy:
        Lower bound of the energy (kWh) required/offered during the slice.
    max_energy:
        Upper bound of the energy (kWh); must be >= ``min_energy``.
    duration_slots:
        How many grid slots the slice spans (defaults to one).
    """

    min_energy: float
    max_energy: float
    duration_slots: int = 1

    def __post_init__(self) -> None:
        if self.duration_slots < 1:
            raise ValidationError(f"slice duration must be >= 1 slot, got {self.duration_slots}")
        if self.min_energy < 0 or self.max_energy < 0:
            raise ValidationError("slice energy bounds must be non-negative")
        if self.max_energy + 1e-12 < self.min_energy:
            raise ValidationError(
                f"slice max energy {self.max_energy} is below min energy {self.min_energy}"
            )

    @property
    def energy_flexibility(self) -> float:
        """Width of the energy band of this slice (kWh)."""
        return self.max_energy - self.min_energy

    def scale(self, factor: float) -> "ProfileSlice":
        """Return a copy with both bounds multiplied by ``factor`` (>= 0)."""
        if factor < 0:
            raise ValidationError("scale factor must be non-negative")
        return ProfileSlice(self.min_energy * factor, self.max_energy * factor, self.duration_slots)


@dataclass(frozen=True)
class Schedule:
    """The planning outcome for one flex-offer.

    ``start_slot`` fixes when the appliance starts; ``energy_per_slice`` fixes
    the energy amount of every profile slice (within its bounds).
    """

    start_slot: int
    energy_per_slice: tuple[float, ...]

    def __post_init__(self) -> None:
        if any(value < 0 for value in self.energy_per_slice):
            raise ValidationError("scheduled energy amounts must be non-negative")

    @property
    def total_energy(self) -> float:
        """Total scheduled energy (kWh)."""
        return float(sum(self.energy_per_slice))


@dataclass(frozen=True)
class FlexOffer:
    """A flexible energy planning object (the paper's central concept).

    Time quantities are expressed as slot indices on a shared
    :class:`~repro.timeseries.grid.TimeGrid`; absolute deadlines are kept as
    ``datetime`` values because they are instants rather than slots.
    """

    id: int
    prosumer_id: int
    profile: tuple[ProfileSlice, ...]
    earliest_start_slot: int
    latest_start_slot: int
    creation_time: datetime
    acceptance_deadline: datetime
    assignment_deadline: datetime
    direction: Direction = Direction.CONSUMPTION
    state: FlexOfferState = FlexOfferState.OFFERED
    schedule: Schedule | None = None
    # Dimensional attributes used for OLAP filtering / grouping (Section 3).
    region: str = ""
    city: str = ""
    district: str = ""
    grid_node: str = ""
    energy_type: str = ""
    prosumer_type: str = ""
    appliance_type: str = ""
    price_per_kwh: float = 0.0
    # Aggregation provenance (Figure 10's red dashed links).
    is_aggregate: bool = False
    constituent_ids: tuple[int, ...] = field(default_factory=tuple)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        if not self.profile:
            raise ValidationError(f"flex-offer {self.id} has an empty profile")
        if self.latest_start_slot < self.earliest_start_slot:
            raise ValidationError(
                f"flex-offer {self.id}: latest start slot {self.latest_start_slot} precedes "
                f"earliest start slot {self.earliest_start_slot}"
            )
        if self.assignment_deadline < self.acceptance_deadline:
            raise ValidationError(
                f"flex-offer {self.id}: assignment deadline precedes acceptance deadline"
            )
        if self.schedule is not None:
            self._validate_schedule(self.schedule)

    def _validate_schedule(self, schedule: Schedule) -> None:
        if not (self.earliest_start_slot <= schedule.start_slot <= self.latest_start_slot):
            raise ValidationError(
                f"flex-offer {self.id}: scheduled start {schedule.start_slot} outside "
                f"[{self.earliest_start_slot}, {self.latest_start_slot}]"
            )
        if len(schedule.energy_per_slice) != len(self.profile):
            raise ValidationError(
                f"flex-offer {self.id}: schedule has {len(schedule.energy_per_slice)} slices, "
                f"profile has {len(self.profile)}"
            )
        for index, (amount, piece) in enumerate(zip(schedule.energy_per_slice, self.profile)):
            if amount < piece.min_energy - 1e-9 or amount > piece.max_energy + 1e-9:
                raise ValidationError(
                    f"flex-offer {self.id}: scheduled energy {amount} of slice {index} outside "
                    f"[{piece.min_energy}, {piece.max_energy}]"
                )

    # ------------------------------------------------------------------
    # Derived temporal quantities
    # ------------------------------------------------------------------
    @property
    def profile_duration_slots(self) -> int:
        """Number of slots the energy profile spans."""
        return sum(piece.duration_slots for piece in self.profile)

    @property
    def time_flexibility_slots(self) -> int:
        """Start-time flexibility: how many slots the start can be shifted."""
        return self.latest_start_slot - self.earliest_start_slot

    @property
    def latest_end_slot(self) -> int:
        """Latest slot (exclusive) at which the profile can end."""
        return self.latest_start_slot + self.profile_duration_slots

    @property
    def earliest_end_slot(self) -> int:
        """Earliest slot (exclusive) at which the profile can end."""
        return self.earliest_start_slot + self.profile_duration_slots

    @property
    def span_slots(self) -> range:
        """Half-open range of slots the flex-offer can possibly occupy."""
        return range(self.earliest_start_slot, self.latest_end_slot)

    # ------------------------------------------------------------------
    # Derived energy quantities
    # ------------------------------------------------------------------
    @property
    def min_total_energy(self) -> float:
        """Sum of slice minimum energies (kWh)."""
        return float(sum(piece.min_energy for piece in self.profile))

    @property
    def max_total_energy(self) -> float:
        """Sum of slice maximum energies (kWh)."""
        return float(sum(piece.max_energy for piece in self.profile))

    @property
    def energy_flexibility(self) -> float:
        """Total width of the energy band across all slices (kWh)."""
        return self.max_total_energy - self.min_total_energy

    @property
    def scheduled_energy(self) -> float:
        """Total scheduled energy, or 0.0 when not scheduled."""
        return self.schedule.total_energy if self.schedule is not None else 0.0

    @property
    def signed_scheduled_energy(self) -> float:
        """Scheduled energy with the grid-load sign (+consumption / -production)."""
        return self.direction.sign * self.scheduled_energy

    # ------------------------------------------------------------------
    # Lifecycle transitions (functional: each returns a new object)
    # ------------------------------------------------------------------
    def accept(self) -> "FlexOffer":
        """Mark the flex-offer as accepted by the enterprise."""
        return replace(self, state=FlexOfferState.ACCEPTED)

    def reject(self) -> "FlexOffer":
        """Mark the flex-offer as rejected; any schedule is discarded."""
        return replace(self, state=FlexOfferState.REJECTED, schedule=None)

    def assign(self, schedule: Schedule) -> "FlexOffer":
        """Attach ``schedule`` and mark the flex-offer as assigned.

        Raises :class:`~repro.errors.ValidationError` if the schedule violates
        the offered flexibility.
        """
        self._validate_schedule(schedule)
        return replace(self, state=FlexOfferState.ASSIGNED, schedule=schedule)

    def execute(self) -> "FlexOffer":
        """Mark an assigned flex-offer as physically executed."""
        if self.schedule is None:
            raise ValidationError(f"flex-offer {self.id} cannot execute without a schedule")
        return replace(self, state=FlexOfferState.EXECUTED)

    def with_default_schedule(self) -> "FlexOffer":
        """Assign the earliest-start / minimum-energy schedule (a common baseline)."""
        schedule = Schedule(
            start_slot=self.earliest_start_slot,
            energy_per_slice=tuple(piece.min_energy for piece in self.profile),
        )
        return self.assign(schedule)

    # ------------------------------------------------------------------
    # Conversion to time series
    # ------------------------------------------------------------------
    def _slice_start_offsets(self) -> list[int]:
        offsets = []
        offset = 0
        for piece in self.profile:
            offsets.append(offset)
            offset += piece.duration_slots
        return offsets

    def scheduled_series(self, grid: TimeGrid) -> TimeSeries:
        """Return the scheduled energy as a per-slot time series (kWh per slot).

        Slices spanning several slots spread their energy evenly.  The series
        is empty when the flex-offer has no schedule.
        """
        from repro.timeseries.series import TimeSeries

        if self.schedule is None:
            return TimeSeries.zeros(grid, self.earliest_start_slot, 0, name=f"fo-{self.id}", unit="kWh")
        pairs: list[tuple[int, float]] = []
        start = self.schedule.start_slot
        for offset, piece, amount in zip(
            self._slice_start_offsets(), self.profile, self.schedule.energy_per_slice
        ):
            share = amount / piece.duration_slots
            for extra in range(piece.duration_slots):
                pairs.append((start + offset + extra, self.direction.sign * share))
        series = TimeSeries.from_pairs(grid, pairs, name=f"fo-{self.id}", unit="kWh")
        return series

    def bound_series(self, grid: TimeGrid, start_slot: int | None = None) -> tuple[TimeSeries, TimeSeries]:
        """Return ``(min, max)`` per-slot energy bound series for a given start.

        ``start_slot`` defaults to the scheduled start when available and the
        earliest start otherwise.
        """
        from repro.timeseries.series import TimeSeries

        if start_slot is None:
            start_slot = (
                self.schedule.start_slot if self.schedule is not None else self.earliest_start_slot
            )
        lo_pairs: list[tuple[int, float]] = []
        hi_pairs: list[tuple[int, float]] = []
        for offset, piece in zip(self._slice_start_offsets(), self.profile):
            for extra in range(piece.duration_slots):
                slot = start_slot + offset + extra
                lo_pairs.append((slot, piece.min_energy / piece.duration_slots))
                hi_pairs.append((slot, piece.max_energy / piece.duration_slots))
        low = TimeSeries.from_pairs(grid, lo_pairs, name=f"fo-{self.id}-min", unit="kWh")
        high = TimeSeries.from_pairs(grid, hi_pairs, name=f"fo-{self.id}-max", unit="kWh")
        return low, high


def total_scheduled_series(
    flex_offers: Iterable[FlexOffer], grid: TimeGrid, name: str = "scheduled"
) -> TimeSeries:
    """Sum the scheduled series of many flex-offers into one plan series."""
    from repro.timeseries.series import TimeSeries

    total: TimeSeries | None = None
    for offer in flex_offers:
        series = offer.scheduled_series(grid)
        if len(series) == 0:
            continue
        total = series if total is None else total + series
    if total is None:
        return TimeSeries.zeros(grid, 0, 0, name=name, unit="kWh")
    total.name = name
    return total


def count_by_state(flex_offers: Sequence[FlexOffer]) -> dict[FlexOfferState, int]:
    """Return the number of flex-offers in each lifecycle state."""
    counts = {state: 0 for state in FlexOfferState}
    for offer in flex_offers:
        counts[offer.state] += 1
    return counts

"""Flexibility and balancing-potential measures over flex-offers.

The paper's Req. 2 asks the framework to expose, besides raw counts and
attribute summaries, an **energy balancing potential**: "a measure on how well
energy can be balanced utilizing flex-offers … computed from the total amount
of energy and the flexibility prosumers offer with their flex-offers."  The
paper does not pin down a formula, so this module provides a documented,
deterministic definition together with the individual time- and
energy-flexibility components it combines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid

if TYPE_CHECKING:  # pragma: no cover - typing only; the envelope helper
    # imports the numpy-native TimeSeries lazily at call time.
    from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class FlexibilityMeasures:
    """Aggregate flexibility statistics of a set of flex-offers."""

    offer_count: int
    total_min_energy: float
    total_max_energy: float
    total_energy_flexibility: float
    total_time_flexibility_slots: int
    mean_time_flexibility_slots: float
    total_scheduled_energy: float
    balancing_potential: float


def time_flexibility_slots(offers: Iterable[FlexOffer]) -> int:
    """Sum of start-time flexibilities (in slots) across ``offers``."""
    return sum(offer.time_flexibility_slots for offer in offers)


def energy_flexibility(offers: Iterable[FlexOffer]) -> float:
    """Sum of energy-band widths (kWh) across ``offers``."""
    return float(sum(offer.energy_flexibility for offer in offers))


def balancing_potential(offers: Sequence[FlexOffer]) -> float:
    """Energy balancing potential of a flex-offer set, in [0, 1].

    Definition used by this reproduction: the average, over offers weighted by
    their maximum energy, of

    * the *energy slack ratio* ``(max - min) / max`` — how much of the energy
      can be modulated, and
    * the *time slack ratio* ``flex / (flex + duration)`` — how freely the load
      can be moved in time,

    combined with equal weight.  A set of completely rigid offers scores 0; a
    set of offers that can be fully modulated and shifted far beyond their own
    duration approaches 1.
    """
    if not offers:
        return 0.0
    weighted = 0.0
    weight_total = 0.0
    for offer in offers:
        weight = offer.max_total_energy
        if weight <= 0:
            continue
        energy_slack = offer.energy_flexibility / offer.max_total_energy
        time_slack = offer.time_flexibility_slots / (
            offer.time_flexibility_slots + offer.profile_duration_slots
        )
        weighted += weight * 0.5 * (energy_slack + time_slack)
        weight_total += weight
    if weight_total == 0:
        return 0.0
    return weighted / weight_total


def measure(offers: Sequence[FlexOffer]) -> FlexibilityMeasures:
    """Compute the full :class:`FlexibilityMeasures` summary of ``offers``."""
    count = len(offers)
    total_time_flex = time_flexibility_slots(offers)
    return FlexibilityMeasures(
        offer_count=count,
        total_min_energy=float(sum(o.min_total_energy for o in offers)),
        total_max_energy=float(sum(o.max_total_energy for o in offers)),
        total_energy_flexibility=energy_flexibility(offers),
        total_time_flexibility_slots=total_time_flex,
        mean_time_flexibility_slots=(total_time_flex / count) if count else 0.0,
        total_scheduled_energy=float(sum(o.scheduled_energy for o in offers)),
        balancing_potential=balancing_potential(offers),
    )


def flexibility_envelope(
    offers: Sequence[FlexOffer], grid: TimeGrid
) -> tuple[TimeSeries, TimeSeries]:
    """Return the per-slot ``(minimum, maximum)`` demand envelope of a flex-offer set.

    The minimum envelope assumes every offer runs at its earliest start with
    minimum energy; the maximum envelope stretches every offer across its whole
    feasible span at maximum energy.  The band between the two visualizes (in
    the dashboard and Figure 1 reproduction) how much room the enterprise has
    for shifting flexible demand.
    """
    from repro.timeseries.series import TimeSeries

    low_total: TimeSeries | None = None
    high_total: TimeSeries | None = None
    for offer in offers:
        low, _ = offer.bound_series(grid, start_slot=offer.earliest_start_slot)
        low_total = low if low_total is None else low_total + low
        # Spread the maximum energy uniformly over the feasible span so the
        # envelope reflects where energy *could* be placed.
        span = offer.span_slots
        if len(span) == 0:
            continue
        per_slot = offer.max_total_energy / len(span)
        high = TimeSeries.from_pairs(grid, [(slot, per_slot) for slot in span], unit="kWh")
        high_total = high if high_total is None else high_total + high
    if low_total is None:
        low_total = TimeSeries.zeros(grid, 0, 0, name="min envelope", unit="kWh")
    if high_total is None:
        high_total = TimeSeries.zeros(grid, 0, 0, name="max envelope", unit="kWh")
    low_total.name = "min envelope"
    high_total.name = "max envelope"
    return low_total, high_total

"""Cross-cutting validation helpers for flex-offer collections.

The :class:`~repro.flexoffer.model.FlexOffer` dataclass validates a single
object on construction; the checks here validate *sets* of flex-offers the way
the visualization tool does before loading them into a view: unique
identifiers, deadline ordering relative to the planning horizon, and schedule
consistency for assigned offers.  Each problem becomes a structured
:class:`ValidationIssue` so that a UI (or a test) can show them all at once
instead of stopping at the first.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Sequence

from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.timeseries.grid import TimeGrid


class IssueSeverity(str, Enum):
    """Severity of a validation issue."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found while validating a flex-offer collection."""

    offer_id: int
    severity: IssueSeverity
    message: str


def validate_collection(offers: Sequence[FlexOffer], grid: TimeGrid) -> list[ValidationIssue]:
    """Validate a collection of flex-offers and return every issue found.

    Checks performed:

    * duplicate flex-offer identifiers (error),
    * acceptance deadline after the earliest possible start (warning — the
      enterprise would have to answer after the load may already have begun),
    * assignment deadline after the earliest possible start (error),
    * assigned/executed offers without a schedule (error),
    * offers whose constituent list names themselves (error).
    """
    issues: list[ValidationIssue] = []
    seen_ids: set[int] = set()
    for offer in offers:
        if offer.id in seen_ids:
            issues.append(
                ValidationIssue(offer.id, IssueSeverity.ERROR, "duplicate flex-offer id")
            )
        seen_ids.add(offer.id)

        earliest_start_time = grid.to_datetime(offer.earliest_start_slot)
        if offer.acceptance_deadline > earliest_start_time:
            issues.append(
                ValidationIssue(
                    offer.id,
                    IssueSeverity.WARNING,
                    "acceptance deadline falls after the earliest start time",
                )
            )
        if offer.assignment_deadline > grid.to_datetime(offer.latest_start_slot):
            issues.append(
                ValidationIssue(
                    offer.id,
                    IssueSeverity.ERROR,
                    "assignment deadline falls after the latest start time",
                )
            )
        if offer.state in (FlexOfferState.ASSIGNED, FlexOfferState.EXECUTED) and offer.schedule is None:
            issues.append(
                ValidationIssue(
                    offer.id,
                    IssueSeverity.ERROR,
                    f"state {offer.state.value} requires a schedule",
                )
            )
        if offer.id in offer.constituent_ids:
            issues.append(
                ValidationIssue(
                    offer.id, IssueSeverity.ERROR, "flex-offer lists itself as a constituent"
                )
            )
    return issues


def errors_only(issues: Sequence[ValidationIssue]) -> list[ValidationIssue]:
    """Filter ``issues`` down to those with error severity."""
    return [issue for issue in issues if issue.severity is IssueSeverity.ERROR]


def is_valid(offers: Sequence[FlexOffer], grid: TimeGrid) -> bool:
    """Whether the collection has no error-severity issues."""
    return not errors_only(validate_collection(offers, grid))

"""Flex-offer data model, flexibility measures, validation and serialization."""

from repro.flexoffer.flexibility import (
    FlexibilityMeasures,
    balancing_potential,
    energy_flexibility,
    flexibility_envelope,
    measure,
    time_flexibility_slots,
)
from repro.flexoffer.model import (
    Direction,
    FlexOffer,
    FlexOfferState,
    ProfileSlice,
    Schedule,
    count_by_state,
    total_scheduled_series,
)
from repro.flexoffer.serialization import (
    flex_offer_from_dict,
    flex_offer_to_dict,
    from_csv,
    from_json,
    to_csv,
    to_json,
)
from repro.flexoffer.validation import (
    IssueSeverity,
    ValidationIssue,
    errors_only,
    is_valid,
    validate_collection,
)

__all__ = [
    "Direction",
    "FlexOffer",
    "FlexOfferState",
    "ProfileSlice",
    "Schedule",
    "count_by_state",
    "total_scheduled_series",
    "FlexibilityMeasures",
    "balancing_potential",
    "energy_flexibility",
    "flexibility_envelope",
    "measure",
    "time_flexibility_slots",
    "flex_offer_to_dict",
    "flex_offer_from_dict",
    "to_json",
    "from_json",
    "to_csv",
    "from_csv",
    "IssueSeverity",
    "ValidationIssue",
    "validate_collection",
    "errors_only",
    "is_valid",
]

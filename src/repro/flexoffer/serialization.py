"""(De)serialization of flex-offers to plain dictionaries, JSON and CSV.

The MIRABEL tool loads flex-offers from the MIRABEL DW (PostgreSQL); this
reproduction's warehouse substitute and the examples exchange flex-offers as
dictionaries / JSON lines / CSV rows instead.  Round-tripping is lossless for
every field of :class:`~repro.flexoffer.model.FlexOffer`.
"""

from __future__ import annotations

import csv
import io
import json
from datetime import datetime
from typing import Any, Iterable, Sequence

from repro.errors import ValidationError
from repro.flexoffer.model import Direction, FlexOffer, FlexOfferState, ProfileSlice, Schedule

_TIME_FORMAT = "%Y-%m-%dT%H:%M:%S"


def _format_time(value: datetime) -> str:
    return value.strftime(_TIME_FORMAT)


def _parse_time(value: str) -> datetime:
    # The stored format is a strict ISO prefix, so the C-level fromisoformat
    # applies (~10x faster than strptime — offer parsing is the hot path of
    # snapshot restores and event-log replays).
    return datetime.fromisoformat(value)


def flex_offer_to_dict(offer: FlexOffer) -> dict[str, Any]:
    """Convert a flex-offer into a JSON-serializable dictionary."""
    payload: dict[str, Any] = {
        "id": offer.id,
        "prosumer_id": offer.prosumer_id,
        "profile": [
            {"min_energy": s.min_energy, "max_energy": s.max_energy, "duration_slots": s.duration_slots}
            for s in offer.profile
        ],
        "earliest_start_slot": offer.earliest_start_slot,
        "latest_start_slot": offer.latest_start_slot,
        "creation_time": _format_time(offer.creation_time),
        "acceptance_deadline": _format_time(offer.acceptance_deadline),
        "assignment_deadline": _format_time(offer.assignment_deadline),
        "direction": offer.direction.value,
        "state": offer.state.value,
        "region": offer.region,
        "city": offer.city,
        "district": offer.district,
        "grid_node": offer.grid_node,
        "energy_type": offer.energy_type,
        "prosumer_type": offer.prosumer_type,
        "appliance_type": offer.appliance_type,
        "price_per_kwh": offer.price_per_kwh,
        "is_aggregate": offer.is_aggregate,
        "constituent_ids": list(offer.constituent_ids),
    }
    if offer.schedule is not None:
        payload["schedule"] = {
            "start_slot": offer.schedule.start_slot,
            "energy_per_slice": list(offer.schedule.energy_per_slice),
        }
    return payload


def flex_offer_from_dict(payload: dict[str, Any]) -> FlexOffer:
    """Rebuild a flex-offer from :func:`flex_offer_to_dict` output."""
    try:
        schedule = None
        if payload.get("schedule") is not None:
            schedule = Schedule(
                start_slot=int(payload["schedule"]["start_slot"]),
                energy_per_slice=tuple(float(v) for v in payload["schedule"]["energy_per_slice"]),
            )
        return FlexOffer(
            id=int(payload["id"]),
            prosumer_id=int(payload["prosumer_id"]),
            profile=tuple(
                ProfileSlice(
                    min_energy=float(s["min_energy"]),
                    max_energy=float(s["max_energy"]),
                    duration_slots=int(s.get("duration_slots", 1)),
                )
                for s in payload["profile"]
            ),
            earliest_start_slot=int(payload["earliest_start_slot"]),
            latest_start_slot=int(payload["latest_start_slot"]),
            creation_time=_parse_time(payload["creation_time"]),
            acceptance_deadline=_parse_time(payload["acceptance_deadline"]),
            assignment_deadline=_parse_time(payload["assignment_deadline"]),
            direction=Direction(payload.get("direction", Direction.CONSUMPTION.value)),
            state=FlexOfferState(payload.get("state", FlexOfferState.OFFERED.value)),
            schedule=schedule,
            region=payload.get("region", ""),
            city=payload.get("city", ""),
            district=payload.get("district", ""),
            grid_node=payload.get("grid_node", ""),
            energy_type=payload.get("energy_type", ""),
            prosumer_type=payload.get("prosumer_type", ""),
            appliance_type=payload.get("appliance_type", ""),
            price_per_kwh=float(payload.get("price_per_kwh", 0.0)),
            is_aggregate=bool(payload.get("is_aggregate", False)),
            constituent_ids=tuple(int(i) for i in payload.get("constituent_ids", ())),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed flex-offer payload: {exc}") from exc


def to_json(offers: Iterable[FlexOffer]) -> str:
    """Serialize flex-offers to a JSON array string."""
    return json.dumps([flex_offer_to_dict(offer) for offer in offers], indent=2)


def from_json(text: str) -> list[FlexOffer]:
    """Parse flex-offers from a JSON array string."""
    try:
        payloads = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValidationError(f"invalid flex-offer JSON: {exc}") from exc
    if not isinstance(payloads, list):
        raise ValidationError("flex-offer JSON must contain a list")
    return [flex_offer_from_dict(payload) for payload in payloads]


# ----------------------------------------------------------------------
# CSV (one row per flex-offer; profile and schedule encoded as JSON cells)
# ----------------------------------------------------------------------
_CSV_FIELDS = [
    "id",
    "prosumer_id",
    "earliest_start_slot",
    "latest_start_slot",
    "creation_time",
    "acceptance_deadline",
    "assignment_deadline",
    "direction",
    "state",
    "region",
    "city",
    "district",
    "grid_node",
    "energy_type",
    "prosumer_type",
    "appliance_type",
    "price_per_kwh",
    "is_aggregate",
    "constituent_ids",
    "profile",
    "schedule",
]


def to_csv(offers: Sequence[FlexOffer]) -> str:
    """Serialize flex-offers to a CSV string (one row per offer)."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=_CSV_FIELDS)
    writer.writeheader()
    for offer in offers:
        payload = flex_offer_to_dict(offer)
        row = {key: payload.get(key, "") for key in _CSV_FIELDS}
        row["profile"] = json.dumps(payload["profile"])
        row["schedule"] = json.dumps(payload.get("schedule")) if payload.get("schedule") else ""
        row["constituent_ids"] = json.dumps(payload["constituent_ids"])
        writer.writerow(row)
    return buffer.getvalue()


def from_csv(text: str) -> list[FlexOffer]:
    """Parse flex-offers from :func:`to_csv` output."""
    reader = csv.DictReader(io.StringIO(text))
    offers = []
    for row in reader:
        payload: dict[str, Any] = dict(row)
        payload["profile"] = json.loads(row["profile"])
        payload["schedule"] = json.loads(row["schedule"]) if row.get("schedule") else None
        payload["constituent_ids"] = json.loads(row["constituent_ids"]) if row.get("constituent_ids") else []
        payload["is_aggregate"] = row.get("is_aggregate", "").strip().lower() in {"true", "1"}
        offers.append(flex_offer_from_dict(payload))
    return offers

"""Asynchronous commits: decouple event ingestion from dirty-set draining.

Both :class:`~repro.live.engine.LiveAggregationEngine` and
:class:`~repro.live.sharded.ShardedAggregationEngine` commit *synchronously*:
the caller that applied the events also pays for re-aggregating the dirty
cells.  :class:`AsyncCommitEngine` puts a background worker between the two —
``apply`` only enqueues onto a **bounded queue** (blocking when full, so a
fast producer is back-pressured instead of ballooning memory), while the
worker drains the queue into the inner engine and commits whenever the queue
momentarily empties or ``drain_batch`` events have accumulated.

The commit semantics of the inner engine are preserved unchanged: no-op
suppression, stable aggregate ids, one hub publication per logical commit
(callbacks just run on the worker thread).  Determinism is restored on demand
through the two barriers:

* :meth:`flush` — returns once every event enqueued *before the call* has
  been applied and committed; the read API is then exactly the synchronous
  engine's state.
* :meth:`close` — flush, stop the worker, release the thread.

A worker-side failure (e.g. an invalid event) poisons the engine: the queue
keeps draining so producers never deadlock, but the error re-raises on the
next ``apply``/``flush``/``commit`` — the async counterpart of the
synchronous engines raising at the offending ``apply``.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Iterable

from repro.aggregation.aggregate import AggregationResult
from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer
from repro.live.engine import CommitResult
from repro.live.events import OfferEvent
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS

#: Queue sentinel telling the worker to exit its loop.
_STOP = object()

# ----------------------------------------------------------------------
# Observability: queue depth and worker-side commit cadence.  The worker
# thread traces its commits on its own thread-local span stack.
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_QUEUE_DEPTH_GAUGE = _OBS.gauge(
    "repro.live.async.queue_depth", "events enqueued but not yet applied"
)
_DRAIN_BATCH_EVENTS = _OBS.histogram(
    "repro.live.async.drain_batch.events",
    "events applied between worker commits",
    COUNT_BUCKETS,
)
_WORKER_COMMIT_SECONDS = _OBS.histogram(
    "repro.live.async.worker.commit.seconds",
    "worker-side commit latency (inner commit + mirroring hooks)",
)


class AsyncCommitEngine:
    """A background worker draining events into an inner live-family engine.

    Parameters
    ----------
    inner:
        The engine that owns the state — a ``LiveAggregationEngine`` or a
        ``ShardedAggregationEngine``.  Its ``micro_batch_size`` must be 0:
        the worker owns the commit cadence.
    queue_size:
        Bound of the ingest queue; ``apply`` blocks when it is full.
    drain_batch:
        Commit after at most this many applied events even when the queue
        never runs empty (latency bound under sustained load).
    on_event / on_commit:
        Optional mirroring hooks run *on the worker thread* after each applied
        event / committed result — the session layer wires its live warehouse
        through these so reads after :meth:`flush` see a consistent mirror.
    """

    def __init__(
        self,
        inner,
        queue_size: int = 1024,
        drain_batch: int = 64,
        on_event: Callable[[OfferEvent], None] | None = None,
        on_commit: Callable[[CommitResult], None] | None = None,
    ) -> None:
        if queue_size < 1:
            raise LiveEngineError("queue_size must be >= 1")
        if drain_batch < 1:
            raise LiveEngineError("drain_batch must be >= 1")
        if getattr(inner, "micro_batch_size", 0):
            raise LiveEngineError(
                "the inner engine must not micro-batch; the async worker owns commits"
            )
        self.inner = inner
        self.queue_size = queue_size
        self.drain_batch = drain_batch
        self.on_event = on_event
        self.on_commit = on_commit
        self._queue: queue.Queue = queue.Queue(maxsize=queue_size)
        #: The most recent producer-side trace context (captured by ``apply``
        #: while the ingesting thread had a span open).  The worker attaches
        #: its next commit to it — an explicit handoff, so the asynchronous
        #: commit lands in the trace of the operation that caused it instead
        #: of starting an unexplained root on the worker thread.
        self._ingest_context = None
        #: Serializes every touch of ``inner`` (worker commits vs caller reads).
        self._lock = threading.RLock()
        self._commit_log: list[CommitResult] = []
        self._last_commit: CommitResult | None = None
        self._total_commits = 0
        self._error: BaseException | None = None
        self._closed = False
        self._worker = threading.Thread(
            target=self._run, name="async-commit-worker", daemon=True
        )
        self._worker.start()

    # ------------------------------------------------------------------
    # The worker loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        applied = 0
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                break
            try:
                # After a failure the queue still drains (task_done below) so
                # a blocked producer wakes up, but nothing further is applied.
                if self._error is None:
                    with self._lock:
                        self.inner.apply(item)
                        if self.on_event is not None:
                            self.on_event(item)
                    applied += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced at the barriers
                self._error = exc
            finally:
                self._queue.task_done()
            _QUEUE_DEPTH_GAUGE.track(self._queue.qsize())
            if applied and (applied >= self.drain_batch or self._queue.empty()):
                _DRAIN_BATCH_EVENTS.observe(applied)
                try:
                    self._commit_if_dirty()
                except BaseException as exc:  # noqa: BLE001
                    self._error = exc
                applied = 0

    def _commit_if_dirty(self) -> CommitResult | None:
        """Commit the inner engine unless it is clean (no-op suppression)."""
        with self._lock:
            if not (self.inner.has_pending_changes or self.inner.pending_events):
                return None
            return self._commit_inner()

    def _commit_inner(self) -> CommitResult:
        """One mirrored, logged inner commit (callers hold the lock).

        Instrumented as ``async.commit``: the latency covers the inner commit
        *and* the mirroring hooks — what a flush barrier actually waits for.
        A commit running on the worker thread attaches to the trace context
        the producer handed off at enqueue time (when there was one); barrier
        commits run on the caller's thread and nest there naturally.
        """
        started = time.perf_counter() if _OBS.enabled else 0.0
        handoff = None
        if threading.current_thread() is self._worker:
            handoff, self._ingest_context = self._ingest_context, None
        with _TRACER.attach(handoff):
            with _TRACER.span("async.commit"):
                result = self.inner.commit()
                if self.on_commit is not None:
                    self.on_commit(result)
        if _OBS.enabled:
            _WORKER_COMMIT_SECONDS.observe(time.perf_counter() - started)
        self._commit_log.append(result)
        self._last_commit = result
        self._total_commits += 1
        return result

    def _raise_pending_error(self) -> None:
        if self._error is not None:
            raise self._error

    # ------------------------------------------------------------------
    # Ingest (producer side)
    # ------------------------------------------------------------------
    def apply(self, event: OfferEvent) -> None:
        """Enqueue one event; blocks when the bounded queue is full.

        Always returns ``None`` — commits happen on the worker.  Call
        :meth:`flush` (or :meth:`commit`) for a barrier.
        """
        if self._closed:
            raise LiveEngineError("the async-commit engine is closed")
        self._raise_pending_error()
        if _OBS.enabled:
            # Hand the producer's open span (if any) to the worker so the
            # resulting asynchronous commit joins this operation's trace.
            # Last-writer-wins is deliberate: the worker's next commit covers
            # every event applied since its last one, and the newest enqueue
            # is that batch's most recent cause.
            context = _TRACER.context()
            if context is not None:
                self._ingest_context = context
        self._queue.put(event)
        _QUEUE_DEPTH_GAUGE.track(self._queue.qsize())
        return None

    def apply_many(self, events: Iterable[OfferEvent]) -> list[CommitResult]:
        """Enqueue many events; returns ``[]`` (commits happen on the worker)."""
        for event in events:
            self.apply(event)
        return []

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Wait until every previously enqueued event is applied and committed."""
        self._queue.join()
        self._commit_if_dirty()
        self._raise_pending_error()

    def commit(self) -> CommitResult:
        """Synchronous barrier commit: drain, commit, return the newest result.

        When the worker already committed everything (it drains eagerly), the
        most recent logical commit is returned instead of forcing an empty
        one — subscribers never see a phantom commit from the barrier.  Only
        a barrier on an engine that never committed anything produces (and
        mirrors, and logs) one empty commit, matching the synchronous
        engines' behaviour of allowing clean commits.
        """
        self._queue.join()
        self._raise_pending_error()
        with self._lock:
            result = self._commit_if_dirty()
            if result is None:
                result = self._last_commit
            if result is None:
                result = self._commit_inner()
            return result

    def close(self) -> None:
        """Drain the queue, stop the worker and commit the remainder (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join()
        self._commit_if_dirty()
        close_inner = getattr(self.inner, "close", None)
        if close_inner is not None:
            close_inner()
        self._raise_pending_error()

    def drain_commits(self) -> list[CommitResult]:
        """Return (and clear) the log of commits since the last drain.

        Draining only empties the log — :attr:`commit_count` and the
        :meth:`commit` barrier's most-recent-result fallback keep counting.
        """
        with self._lock:
            log = list(self._commit_log)
            self._commit_log.clear()
            return log

    # ------------------------------------------------------------------
    # Introspection and reads (delegate under the lock)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self.inner)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def parameters(self):
        return self.inner.parameters

    @property
    def id_offset(self) -> int:
        return self.inner.id_offset

    @property
    def hub(self):
        return self.inner.hub

    @property
    def micro_batch_size(self) -> int:
        """Always 0 — the worker owns the commit cadence (see ``drain_batch``)."""
        return 0

    @property
    def queued_events(self) -> int:
        """Events enqueued but not yet applied (approximate, racy by nature)."""
        return self._queue.qsize()

    @property
    def pending_events(self) -> int:
        """Queued plus applied-but-uncommitted events (approximate)."""
        with self._lock:
            return self._queue.qsize() + self.inner.pending_events

    @property
    def dirty_cell_count(self) -> int:
        with self._lock:
            return self.inner.dirty_cell_count

    @property
    def dirty_chunk_count(self) -> int:
        """Chunks the inner engine's next commit would re-aggregate (racy)."""
        with self._lock:
            return self.inner.dirty_chunk_count

    @property
    def has_pending_changes(self) -> bool:
        with self._lock:
            return self._queue.qsize() > 0 or self.inner.has_pending_changes

    @property
    def cell_count(self) -> int:
        with self._lock:
            return self.inner.cell_count

    @property
    def commit_count(self) -> int:
        """Total commits this engine performed (unaffected by drains)."""
        with self._lock:
            return self._total_commits

    def offers(self) -> list[FlexOffer]:
        with self._lock:
            return self.inner.offers()

    def offer(self, offer_id: int) -> FlexOffer:
        with self._lock:
            return self.inner.offer(offer_id)

    def cell_of(self, offer_id: int):
        with self._lock:
            return self.inner.cell_of(offer_id)

    def aggregated_offers(self) -> list[FlexOffer]:
        with self._lock:
            return self.inner.aggregated_offers()

    def constituents_of(self, aggregate_id: int) -> list[FlexOffer]:
        with self._lock:
            return self.inner.constituents_of(aggregate_id)

    def result(self) -> AggregationResult:
        with self._lock:
            return self.inner.result()

    def batch_equivalent(self) -> AggregationResult:
        with self._lock:
            return self.inner.batch_equivalent()

"""Commit notifications: views and alert rules subscribe to the live engine.

After every :meth:`~repro.live.engine.LiveAggregationEngine.commit`, the
:class:`SubscriptionHub` fans the commit result out to registered listeners.
A subscription can narrow its interest to grid cells or regions so a view
showing one region is only woken when one of *its* aggregates changed — the
push-based counterpart of the tool's "reload the warehouse and redraw"
workflow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer
from repro.live.engine import CommitResult, LiveAggregationEngine
from repro.monitoring.alerts import Alert, AlertMonitor


@dataclass(frozen=True)
class CommitNotification:
    """What one listener receives: the commit plus its slice of the changes."""

    commit: CommitResult
    #: Changed output offers matching the subscription's interest.
    changed: tuple[FlexOffer, ...]
    #: Offers the subscriber must drop: retired outputs that matched the
    #: interest, plus outputs that changed *out of* the interest (e.g. an
    #: aggregate whose region became "mixed" when a cross-region offer joined
    #: its group) — without the latter, a filtered view would mirror the
    #: retired variant forever.
    removed: tuple[FlexOffer, ...]

    def __len__(self) -> int:
        return len(self.changed) + len(self.removed)


Listener = Callable[[CommitNotification], None]


@dataclass
class Subscription:
    """One registered listener with its interest filter.

    Interest is the conjunction of the built-in region/aggregate filters and
    the optional ``predicate`` — the hook the session layer uses to subscribe
    arbitrary ``QuerySpec`` predicates without duplicating the mirror
    bookkeeping below.
    """

    name: str
    listener: Listener
    regions: frozenset[str] | None = None
    only_aggregates: bool = False
    #: Extra interest predicate over the output offer (``None`` = no-op).
    predicate: Callable[[FlexOffer], bool] | None = None
    #: Deliver empty notifications too (heartbeat listeners want every commit).
    deliver_empty: bool = False
    notified: int = field(default=0, repr=False)
    #: Ids this subscription has been handed as changed and not yet removed —
    #: what the listener's mirror can contain.
    mirrored: set[int] = field(default_factory=set, repr=False)

    def _interested(self, offer: FlexOffer) -> bool:
        if self.only_aggregates and not offer.is_aggregate:
            return False
        if self.regions is not None and offer.region not in self.regions:
            return False
        if self.predicate is not None and not self.predicate(offer):
            return False
        return True

    def slice_of(self, commit: CommitResult) -> CommitNotification:
        """The commit narrowed to this subscription's interest.

        An offer that changed *out of* the interest (e.g. an aggregate whose
        region became "mixed") is delivered as a removal — but only when this
        subscription was previously handed it, so foreign changes never wake
        the listener.  Updates ``mirrored`` as a side effect; call once per
        published commit.
        """
        changed = tuple(offer for offer in commit.changed if self._interested(offer))
        exited = tuple(
            offer
            for offer in commit.changed
            if not self._interested(offer) and offer.id in self.mirrored
        )
        removed = (
            tuple(offer for offer in commit.removed if offer.id in self.mirrored) + exited
        )
        self.mirrored.update(offer.id for offer in changed)
        self.mirrored.difference_update(offer.id for offer in removed)
        return CommitNotification(commit=commit, changed=changed, removed=removed)


class SubscriptionHub:
    """Registers listeners and fans commit results out to them."""

    def __init__(self) -> None:
        self._subscriptions: list[Subscription] = []
        self.published_commits = 0

    def __len__(self) -> int:
        return len(self._subscriptions)

    def subscribe(
        self,
        listener: Listener,
        name: str = "",
        regions: Iterable[str] | None = None,
        only_aggregates: bool = False,
        predicate: Callable[[FlexOffer], bool] | None = None,
        deliver_empty: bool = False,
    ) -> Subscription:
        """Register ``listener``; returns the subscription handle."""
        if not callable(listener):
            raise LiveEngineError("subscription listener must be callable")
        subscription = Subscription(
            name=name or f"subscription-{len(self._subscriptions) + 1}",
            listener=listener,
            regions=frozenset(regions) if regions is not None else None,
            only_aggregates=only_aggregates,
            predicate=predicate,
            deliver_empty=deliver_empty,
        )
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: Subscription) -> bool:
        """Remove a subscription; returns whether it was registered."""
        try:
            self._subscriptions.remove(subscription)
            return True
        except ValueError:
            return False

    def adopt(self, subscription: Subscription) -> Subscription:
        """Register an *existing* subscription handle (idempotent).

        The session facade uses this to carry standing subscriptions — and
        materialized views — across engine swaps: each backend owns its own
        hub, so without adoption a ``use_engine()`` switch would silently
        orphan every listener.  Adopting the same handle keeps its
        ``mirrored``-id bookkeeping, so removals for offers handed out under
        the previous engine are still delivered, and ``unsubscribe`` on the
        original handle keeps working against the hub that now holds it.
        """
        if not isinstance(subscription, Subscription):
            raise LiveEngineError("adopt() needs a Subscription handle")
        if subscription not in self._subscriptions:
            self._subscriptions.append(subscription)
        return subscription

    def publish(self, commit: CommitResult) -> int:
        """Notify interested listeners of one commit; returns how many were."""
        self.published_commits += 1
        notified = 0
        for subscription in list(self._subscriptions):
            notification = subscription.slice_of(commit)
            if len(notification) == 0 and not subscription.deliver_empty:
                continue
            subscription.listener(notification)
            subscription.notified += 1
            notified += 1
        return notified


class ChangeCollector:
    """A minimal live "view model": mirrors the changed aggregates by id.

    Views subscribe one of these and re-render only ``offers`` instead of
    reloading the warehouse; tests use it to observe notification flow.
    """

    def __init__(self) -> None:
        self.offers: dict[int, FlexOffer] = {}
        self.notifications: list[CommitNotification] = []

    def __call__(self, notification: CommitNotification) -> None:
        self.notifications.append(notification)
        for offer in notification.changed:
            self.offers[offer.id] = offer
        for offer in notification.removed:
            self.offers.pop(offer.id, None)


class LiveAlertFeed:
    """Runs monitoring alert rules over the live state after each commit.

    The feed keeps the latest alerts (currently the low-flexibility rule,
    which needs no demand forecast) and a log of every alert ever raised, so
    a :class:`~repro.monitoring.platform.MonitoringPlatform` operator sees
    degradations the moment the triggering event commits.

    The low-flexibility rule is global, so each evaluation scans the whole
    aggregated population; subscribe without ``deliver_empty`` (the
    :meth:`~repro.monitoring.platform.MonitoringPlatform.attach_live`
    default) so no-op commits don't pay that scan.
    """

    def __init__(self, monitor: AlertMonitor, engine: LiveAggregationEngine) -> None:
        self.monitor = monitor
        self.engine = engine
        self.current_alerts: list[Alert] = []
        self.history: list[tuple[int, Alert]] = []

    def __call__(self, notification: CommitNotification) -> None:
        offers = self.engine.aggregated_offers()
        previous = set(self.current_alerts)
        self.current_alerts = list(self.monitor.low_flexibility_alerts(offers))
        # Only newly raised alerts enter the history; an alert standing across
        # many commits is attributed to the commit that first raised it.
        for alert in self.current_alerts:
            if alert not in previous:
                self.history.append((notification.commit.sequence, alert))

    def alerts_for(self, commit_sequence: int) -> list[Alert]:
        """Alerts first raised by one specific commit."""
        return [alert for sequence, alert in self.history if sequence == commit_sequence]

"""Event-driven incremental flex-offer processing (the ``repro.live`` subsystem).

Layers, bottom up:

* :mod:`repro.live.events` — typed offer lifecycle events and the ``EventLog``.
* :mod:`repro.live.engine` — ``LiveAggregationEngine``: persistent grouping
  grid, dirty-cell tracking, incremental ``commit()``.
* :mod:`repro.live.warehouse` — ``LiveWarehouse``: the same events applied to
  the star schema via upsert/delete, keeping repository queries fresh.
* :mod:`repro.live.subscriptions` — ``SubscriptionHub``: commit fan-out to
  views and monitoring alert rules.
* :mod:`repro.live.sharded` — ``ShardedAggregationEngine``: the grouping grid
  hash-partitioned into independent shards, committed in parallel and merged
  into one logical commit.
* :mod:`repro.live.asynccommit` — ``AsyncCommitEngine``: a bounded-queue
  background worker that drains events and commits off the caller's thread,
  with ``flush()``/``close()`` barriers.
* :mod:`repro.live.replay` — scenarios replayed as timestamped event streams,
  with commit-latency reporting.
"""

from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import (
    ChunkStats,
    CommitResult,
    LiveAggregationEngine,
    assert_batch_equivalent,
    canonical_form,
    cell_key_string,
)
from repro.live.events import (
    EventLog,
    OfferAdded,
    OfferEvent,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
    append_jsonl,
    apply_transition,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    write_jsonl,
)
from repro.live.replay import ReplayReport, replay, scenario_event_stream
from repro.live.sharded import (
    ShardedAggregationEngine,
    ShardedCommitResult,
    shard_of_cell,
)
from repro.live.subscriptions import (
    ChangeCollector,
    CommitNotification,
    LiveAlertFeed,
    Subscription,
    SubscriptionHub,
)
from repro.live.warehouse import LiveWarehouse

__all__ = [
    "AsyncCommitEngine",
    "ShardedAggregationEngine",
    "ShardedCommitResult",
    "shard_of_cell",
    "ChunkStats",
    "CommitResult",
    "LiveAggregationEngine",
    "assert_batch_equivalent",
    "canonical_form",
    "cell_key_string",
    "EventLog",
    "OfferAdded",
    "OfferEvent",
    "OfferStateChanged",
    "OfferUpdated",
    "OfferWithdrawn",
    "append_jsonl",
    "apply_transition",
    "event_from_dict",
    "event_to_dict",
    "read_jsonl",
    "write_jsonl",
    "ReplayReport",
    "replay",
    "scenario_event_stream",
    "ChangeCollector",
    "CommitNotification",
    "LiveAlertFeed",
    "Subscription",
    "SubscriptionHub",
    "LiveWarehouse",
]

"""The live warehouse: offer events applied to the star schema via upsert/delete.

The batch workflow rebuilds the whole star schema per scenario
(:func:`repro.warehouse.loader.load_scenario`).  :class:`LiveWarehouse`
instead *maintains* an already-loaded schema under the same event stream the
aggregation engine consumes: added/updated offers upsert their fact and slice
rows, withdrawals delete them, and committed aggregates are mirrored as
derived fact rows — so :class:`~repro.warehouse.query.FlexOfferRepository`
queries stay fresh without any reload.  Each fact row also records the
offer's grouping-grid cell (``group_cell``), making dirty-cell lookups index
hits.
"""

from __future__ import annotations

from repro.aggregation.grouping import GroupKey, cell_for, group_key
from repro.aggregation.parameters import AggregationParameters
from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer
from repro.live.engine import CommitResult, cell_key_string
from repro.live.events import (
    OfferAdded,
    OfferEvent,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
    apply_transition,
)
from repro.timeseries.grid import TimeGrid
from repro.warehouse.loader import RENEWABLE_TYPES, geography_ids, load_flex_offer
from repro.warehouse.query import FlexOfferRepository
from repro.warehouse.schema import StarSchema


class LiveWarehouse:
    """Applies offer lifecycle events to a star schema in place."""

    def __init__(
        self,
        schema: StarSchema,
        grid: TimeGrid,
        parameters: AggregationParameters | None = None,
    ) -> None:
        self.schema = schema
        self.grid = grid
        self.parameters = parameters or AggregationParameters()
        #: Read-side API over the same (mutating) schema; constructing it also
        #: declares the hash indexes the write path relies on.
        self.repository = FlexOfferRepository(schema, grid)
        self._geo_ids = geography_ids(schema)
        schema.table("fact_flexoffer_slice").create_index("offer_id")
        self._known_energy_types = set(schema.table("dim_energy_type").values("energy_type"))
        self._known_appliance_types = set(schema.table("dim_appliance").values("appliance_type"))
        self._assign_group_cells()

    def _group_cell(self, offer: FlexOffer) -> str:
        if offer.is_aggregate:
            return ""
        return cell_key_string(group_key(offer, self.parameters))

    def _assign_group_cells(self) -> None:
        """Backfill ``group_cell`` for rows loaded by the batch loader.

        The batch loader leaves the column empty; the live path needs it so
        per-cell lookups hit the index.  Cell keys are derived from the fact
        columns alone — no payload parsing.
        """
        fact = self.schema.table("fact_flexoffer")
        cells = fact.column("group_cell")
        earliest = fact.column("earliest_start_slot")
        flexibility = fact.column("time_flexibility_slots")
        direction = fact.column("direction")
        is_aggregate = fact.column("is_aggregate")
        for position in fact.live_positions():
            if cells[position] or is_aggregate[position]:
                continue
            fact.set_value(
                "group_cell",
                position,
                cell_key_string(
                    cell_for(
                        int(earliest[position]),
                        int(flexibility[position]),
                        direction[position],
                        self.parameters,
                    )
                ),
            )

    # ------------------------------------------------------------------
    # Event write path
    # ------------------------------------------------------------------
    def apply(self, event: OfferEvent) -> None:
        """Apply one lifecycle event to the fact tables."""
        if isinstance(event, (OfferAdded, OfferUpdated)):
            self.upsert_offer(event.offer)
        elif isinstance(event, OfferWithdrawn):
            self.remove_offer(event.offer_id)
        elif isinstance(event, OfferStateChanged):
            current = self.repository.load_by_offer_ids([event.offer_id])
            if not current:
                # Passthrough aggregates live in the derived table; the
                # offer_id index makes this a dict hit, not a table scan.
                table = self.schema.table("fact_flexoffer_aggregate")
                payloads = table.column("payload")
                current = self.repository.offers_from_payloads(
                    payloads[position] for position in table.lookup("offer_id", event.offer_id)
                )
            if not current:
                raise LiveEngineError(f"warehouse has no offer {event.offer_id}")
            self.upsert_offer(apply_transition(current[0], event.state, event.schedule))
        else:
            raise LiveEngineError(f"unknown event type {type(event).__name__}")

    def _ensure_dimensions(self, offer: FlexOffer) -> None:
        """Add dimension rows for types the batch ETL has not seen.

        The batch loader derives ``dim_energy_type``/``dim_appliance`` from
        the initially loaded offers; streamed offers can introduce new types
        (or arrive into a schema seeded without offers), so the dimensions are
        maintained here to keep joins and pick lists complete.
        """
        if offer.energy_type and offer.energy_type not in self._known_energy_types:
            self._known_energy_types.add(offer.energy_type)
            self.schema.table("dim_energy_type").append(
                {"energy_type": offer.energy_type, "renewable": offer.energy_type in RENEWABLE_TYPES}
            )
        if offer.appliance_type and offer.appliance_type not in self._known_appliance_types:
            self._known_appliance_types.add(offer.appliance_type)
            self.schema.table("dim_appliance").append(
                {
                    "appliance_type": offer.appliance_type,
                    "direction": offer.direction.value,
                    "energy_type": offer.energy_type,
                }
            )
        if offer.district and offer.district not in self._geo_ids:
            # An unseen district would otherwise store geo_id=0 and silently
            # drop out of every region/city/district-filtered query.
            geography = self.schema.table("dim_geography")
            geo_id = max(self._geo_ids.values(), default=0) + 1
            self._geo_ids[offer.district] = geo_id
            geography.append(
                {
                    "geo_id": geo_id,
                    "district": offer.district,
                    "city": offer.city,
                    "region": offer.region,
                    "country": "",
                    "latitude": 0.0,
                    "longitude": 0.0,
                }
            )
            # The repository caches the geo lookup; a new row invalidates it.
            if hasattr(self.repository, "_geo_cache"):
                del self.repository._geo_cache

    def upsert_offer(self, offer: FlexOffer) -> None:
        """Insert or replace one raw offer's fact and slice rows.

        Derived aggregates go through :meth:`apply_commit` into the separate
        ``fact_flexoffer_aggregate`` table — never into ``fact_flexoffer`` —
        so raw-offer queries cannot double-count energy.
        """
        if offer.is_aggregate:
            self._upsert_aggregate(offer)
            return
        self._ensure_dimensions(offer)
        self.remove_offer(offer.id, missing_ok=True)
        load_flex_offer(self.schema, offer, self._geo_ids, group_cell=self._group_cell(offer))

    def remove_offer(self, offer_id: int, missing_ok: bool = False) -> None:
        """Delete one offer's fact and slice rows (index hit on ``offer_id``).

        Both the raw and the derived-aggregate fact table are cleared, so
        withdrawing a passthrough aggregate works through the same path.
        """
        deleted = self.schema.table("fact_flexoffer").delete_where("offer_id", offer_id)
        deleted += self.schema.table("fact_flexoffer_aggregate").delete_where("offer_id", offer_id)
        self.schema.table("fact_flexoffer_slice").delete_where("offer_id", offer_id)
        if not deleted and not missing_ok:
            raise LiveEngineError(f"warehouse has no offer {offer_id}")

    # ------------------------------------------------------------------
    # Aggregate mirror (subscribe this to the engine's hub)
    # ------------------------------------------------------------------
    def _upsert_aggregate(self, offer: FlexOffer) -> None:
        self.schema.table("fact_flexoffer_aggregate").delete_where("offer_id", offer.id)
        self.schema.table("fact_flexoffer_slice").delete_where("offer_id", offer.id)
        load_flex_offer(
            self.schema, offer, self._geo_ids, fact_table="fact_flexoffer_aggregate"
        )

    def apply_commit(self, commit: CommitResult) -> int:
        """Mirror one engine commit's aggregates into ``fact_flexoffer_aggregate``.

        Raw offers in the commit are skipped — the event write path is their
        source of truth; only derived aggregate rows are upserted/deleted.
        Returns the number of fact rows touched.
        """
        aggregates = self.schema.table("fact_flexoffer_aggregate")
        slices = self.schema.table("fact_flexoffer_slice")
        touched = 0
        for offer in commit.changed:
            if offer.is_aggregate:
                self._upsert_aggregate(offer)
                touched += 1
        for offer in commit.removed:
            if offer.is_aggregate:
                touched += aggregates.delete_where("offer_id", offer.id)
                slices.delete_where("offer_id", offer.id)
        return touched

    def notification_listener(self):
        """A hub listener mirroring aggregate changes (for ``hub.subscribe``)."""

        def listener(notification) -> None:
            self.apply_commit(notification.commit)

        return listener

    # ------------------------------------------------------------------
    # Cell drill-down (index hit on group_cell)
    # ------------------------------------------------------------------
    def offers_in_cell(self, cell: GroupKey | str) -> list[FlexOffer]:
        """The raw offers currently stored in one grouping-grid cell.

        Subscribers drill into a commit's ``dirty_cells`` with this: the
        lookup is a ``group_cell`` index hit, not a fact-table scan.
        """
        key = cell if isinstance(cell, str) else cell_key_string(cell)
        fact = self.schema.table("fact_flexoffer")
        payloads = fact.column("payload")
        return self.repository.offers_from_payloads(
            payloads[position] for position in fact.lookup("group_cell", key)
        )

    # ------------------------------------------------------------------
    # Freshness checks
    # ------------------------------------------------------------------
    def offer_count(self) -> int:
        """Raw offer rows currently in ``fact_flexoffer``."""
        return len(self.schema.table("fact_flexoffer"))

    def aggregate_count(self) -> int:
        """Derived aggregate rows currently in ``fact_flexoffer_aggregate``."""
        return len(self.schema.table("fact_flexoffer_aggregate"))

"""Replaying synthetic scenarios as timestamped event streams.

Any :class:`~repro.datagen.scenarios.Scenario` can be viewed as the *final
state* of a stream of lifecycle events: every offer was added when it was
created, then accepted/assigned/rejected by the enterprise before its
deadlines.  :func:`scenario_event_stream` reconstructs that stream (optionally
salting in prosumer revisions and withdrawals), and :func:`replay` drives a
:class:`~repro.live.engine.LiveAggregationEngine` — and optionally a
:class:`~repro.live.warehouse.LiveWarehouse` — through it while measuring
commit latencies.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Iterable

try:  # Optional dependency: the stream salter falls back to stdlib random.
    import numpy as np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    np = None

from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer, FlexOfferState, ProfileSlice
from repro.live.engine import CommitResult, LiveAggregationEngine
from repro.live.events import (
    EventLog,
    OfferAdded,
    OfferEvent,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
)
from repro.live.warehouse import LiveWarehouse

if TYPE_CHECKING:  # pragma: no cover - typing only (datagen is numpy-native;
    # replay itself only needs the scenario's offers and grid)
    from repro.datagen.scenarios import Scenario


def _pristine(offer: FlexOffer) -> FlexOffer:
    """The offer as the prosumer first submitted it: offered, unscheduled."""
    return replace(offer, state=FlexOfferState.OFFERED, schedule=None)


def _revised(offer: FlexOffer) -> FlexOffer:
    """A plausible prosumer revision: wider energy band, one more slot of slack.

    Widening (rather than shifting) keeps any schedule the enterprise later
    assigns feasible, while still dirtying — and possibly migrating — the
    offer's grouping-grid cell (the time flexibility grows by one slot).
    """
    widened = tuple(
        ProfileSlice(
            min_energy=piece.min_energy * 0.9,
            max_energy=piece.max_energy * 1.1,
            duration_slots=piece.duration_slots,
        )
        for piece in offer.profile
    )
    return replace(
        offer,
        profile=widened,
        latest_start_slot=offer.latest_start_slot + 1,
        price_per_kwh=offer.price_per_kwh * 1.05,
    )


def scenario_event_stream(
    scenario: Scenario,
    update_fraction: float = 0.0,
    withdraw_fraction: float = 0.0,
    seed: int = 0,
) -> EventLog:
    """Reconstruct a scenario as a timestamped offer-event stream.

    Every offer yields an ``OfferAdded`` at its creation time and, when the
    scenario left it accepted/assigned/rejected, an ``OfferStateChanged`` at
    the corresponding deadline.  ``update_fraction`` of the offers receive a
    prosumer revision between creation and acceptance; ``withdraw_fraction``
    are withdrawn after their assignment deadline.  Replaying the stream
    therefore ends in exactly the scenario's offer population (minus
    withdrawals, plus revisions).
    """
    # numpy's generator when available (keeps streams identical to the ones
    # committed baselines were built from), stdlib random otherwise — the
    # two draw different update/withdraw choices, but every consumer of this
    # stream asserts replay invariants, not specific salted offers.
    rng = np.random.default_rng(seed) if np is not None else random.Random(seed)
    log = EventLog()
    for offer in scenario.offers_in_arrival_order():
        pristine = _pristine(offer)
        log.append(OfferAdded(offer.creation_time, pristine))
        current = pristine
        if rng.random() < update_fraction:
            midpoint = offer.creation_time + (offer.acceptance_deadline - offer.creation_time) / 2
            current = _revised(pristine)
            log.append(OfferUpdated(midpoint, current))
        if offer.state is FlexOfferState.ACCEPTED:
            log.append(OfferStateChanged(offer.acceptance_deadline, offer.id, FlexOfferState.ACCEPTED))
        elif offer.state is FlexOfferState.REJECTED:
            log.append(OfferStateChanged(offer.acceptance_deadline, offer.id, FlexOfferState.REJECTED))
        elif offer.state in (FlexOfferState.ASSIGNED, FlexOfferState.EXECUTED):
            log.append(
                OfferStateChanged(
                    offer.assignment_deadline, offer.id, offer.state, offer.schedule
                )
            )
        if rng.random() < withdraw_fraction:
            log.append(
                OfferWithdrawn(offer.assignment_deadline + scenario.grid.resolution, offer.id)
            )
    return log


@dataclass
class ReplayReport:
    """Latency and throughput numbers of one replay run."""

    events: int
    commits: list[CommitResult] = field(default_factory=list)
    total_seconds: float = 0.0
    final_offers: int = 0
    final_outputs: int = 0
    #: Events skipped at the head of the stream (resume-from-checkpoint).
    resumed_from: int = 0

    @property
    def commit_count(self) -> int:
        return len(self.commits)

    @property
    def commit_latencies_ms(self) -> list[float]:
        return [commit.elapsed_seconds * 1000 for commit in self.commits]

    @property
    def mean_commit_ms(self) -> float:
        latencies = self.commit_latencies_ms
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def max_commit_ms(self) -> float:
        return max(self.commit_latencies_ms, default=0.0)

    @property
    def p95_commit_ms(self) -> float:
        latencies = sorted(self.commit_latencies_ms)
        if not latencies:
            return 0.0
        return latencies[min(len(latencies) - 1, int(round(0.95 * (len(latencies) - 1))))]

    @property
    def events_per_second(self) -> float:
        return self.events / self.total_seconds if self.total_seconds > 0 else 0.0

    def describe(self) -> str:
        """A multi-line summary (what the ``live`` CLI sub-command prints)."""
        lines = [
            f"events replayed       : {self.events}",
            f"commits               : {self.commit_count}",
            f"events per second     : {self.events_per_second:12.0f}",
            f"mean commit latency   : {self.mean_commit_ms:9.3f} ms",
            f"p95 commit latency    : {self.p95_commit_ms:9.3f} ms",
            f"max commit latency    : {self.max_commit_ms:9.3f} ms",
            f"final live offers     : {self.final_offers}",
            f"final aggregated view : {self.final_outputs}",
        ]
        return "\n".join(lines)


def replay(
    events: EventLog | Iterable[OfferEvent],
    engine,
    warehouse: LiveWarehouse | None = None,
    resume_from: int = 0,
) -> ReplayReport:
    """Drive ``engine`` (and optionally ``warehouse``) through an event stream.

    ``engine`` may be a bare incremental engine (``LiveAggregationEngine``,
    ``ShardedAggregationEngine``, ``AsyncCommitEngine``), a session-layer
    ``LiveEngine``-family backend, or a whole ``FlexSession`` — the session
    forms bring their own live warehouse, which is mirrored unless
    ``warehouse`` overrides it.  Events are consumed in replay order
    (timestamp, then arrival).  When a ``warehouse`` is mirrored it receives
    every event plus every commit's aggregate changes directly — do not
    *also* subscribe it to the engine's hub, or commits would be mirrored
    twice.  Session-layer async backends mirror their warehouse from the
    worker thread via their own hooks, so no caller-side mirroring happens
    for them; a warehouse passed *explicitly* alongside a bare async engine
    is mirrored on the calling thread instead (events during the loop,
    aggregate changes after the flush barrier).  Async commits are gathered
    from the worker's log once the barrier returns.

    ``resume_from`` skips that many events at the head of the (ordered)
    stream — the resume-from-checkpoint entry point: an engine restored from
    a snapshot taken after ``n`` consumed events continues with
    ``replay(stream, engine, resume_from=n)`` instead of re-consuming the
    whole stream from sequence 0.
    """
    if hasattr(engine, "use_engine"):
        # A FlexSession: replay through its active live-family engine (or the
        # plain live engine when a non-committing backend is active).
        active = engine.engine
        backend = active if hasattr(active, "commit") else engine.use_engine("live")
    else:
        backend = engine
    if not isinstance(backend, LiveAggregationEngine) and hasattr(backend, "engine"):
        # A session backend (duck-typed so this module never imports the
        # session layer at import time).
        if warehouse is None and not hasattr(backend.engine, "flush"):
            warehouse = getattr(backend, "warehouse", None)
        backend = backend.engine
    engine = backend
    ordered = events.replay_order() if isinstance(events, EventLog) else list(events)
    if resume_from:
        if resume_from < 0:
            raise LiveEngineError("resume_from must be >= 0")
        ordered = ordered[resume_from:]
    report = ReplayReport(events=len(ordered), resumed_from=resume_from)
    started = time.perf_counter()
    if hasattr(engine, "flush"):
        # Async-commit engine: the worker applies and commits; the flush
        # barrier makes the final state (and the commit log) complete.  An
        # explicitly passed warehouse cannot ride the worker's hooks, so it is
        # mirrored on this thread: events during the loop, aggregate changes
        # from the drained commits after the barrier — same end state.
        for event in ordered:
            engine.apply(event)
            if warehouse is not None:
                warehouse.apply(event)
        engine.flush()
        report.commits.extend(engine.drain_commits())
        if warehouse is not None:
            for commit in report.commits:
                warehouse.apply_commit(commit)
    else:
        for event in ordered:
            # The engine is the stricter validator: apply there first, so an
            # event it rejects never reaches (and diverges) the warehouse mirror.
            result = engine.apply(event)
            if warehouse is not None:
                warehouse.apply(event)
            if result is not None:
                report.commits.append(result)
                if warehouse is not None:
                    warehouse.apply_commit(result)
        if engine.pending_events or engine.has_pending_changes:
            result = engine.commit()
            report.commits.append(result)
            if warehouse is not None:
                warehouse.apply_commit(result)
    report.total_seconds = time.perf_counter() - started
    report.final_offers = len(engine)
    report.final_outputs = len(engine.aggregated_offers())
    return report

"""The incremental (dirty-group) flex-offer aggregation engine.

The batch pipeline (:func:`repro.aggregation.aggregate.aggregate`) re-groups
and re-aggregates *every* offer on every call.  The live engine instead keeps
the grouping grid of :mod:`repro.aggregation.grouping` as a persistent index:
each applied event touches at most two grid cells (the offer's old and new
cell), only those cells are marked *dirty*, and :meth:`LiveAggregationEngine.commit`
re-aggregates just the dirty cells.  The cost of a commit is therefore
proportional to the number of touched offers, not the population size —
recomputation is replaced by incremental maintenance, the classic move of
incremental view maintenance and integrity checking.

Equivalence with the batch path is part of the contract: after any event
stream, :meth:`LiveAggregationEngine.aggregated_offers` equals the batch
aggregation of the surviving offers bit-for-bit on profiles (ids may differ —
the engine allocates stable per-cell aggregate ids).  ``canonical_form`` is
the id-insensitive normal form the equivalence tests compare under.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Iterable

from repro.aggregation.aggregate import aggregate_group, AggregationResult
from repro.aggregation.grouping import GroupKey, chunk_group, chunks_from, group_key
from repro.aggregation.parameters import AggregationParameters
from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS
from repro.live.events import (
    OfferAdded,
    OfferEvent,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
    apply_transition,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.live.subscriptions import SubscriptionHub


# ----------------------------------------------------------------------
# Observability: commit-path metrics and spans (disabled-mode cost is a
# single attribute check per commit; see repro.obs).
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_COMMITS = _OBS.counter("repro.live.commit.count", "engine commits performed")
_COMMIT_SECONDS = _OBS.histogram(
    "repro.live.commit.seconds", "end-to-end commit latency (drain + publish)"
)
_COMMIT_EVENTS = _OBS.histogram(
    "repro.live.commit.events", "events drained per commit", COUNT_BUCKETS
)
_DRAIN_SECONDS = _OBS.histogram(
    "repro.live.commit.drain.seconds", "commit_core drain latency (per engine/shard)"
)
_PUBLISH_SECONDS = _OBS.histogram(
    "repro.live.commit.publish.seconds", "subscription-hub publish latency"
)
_CHUNKS_REAGGREGATED = _OBS.counter(
    "repro.live.chunks.reaggregated", "chunks whose aggregate was recomputed"
)
_CHUNKS_SKIPPED = _OBS.counter(
    "repro.live.chunks.skipped", "chunks in dirty cells reused untouched"
)


def cell_key_string(key: GroupKey) -> str:
    """Stable string form of a grouping-grid cell key (for warehouse columns)."""
    return f"{key[0]}|{key[1]}|{key[2]}"


def canonical_form(offer: FlexOffer) -> FlexOffer:
    """Id-insensitive normal form used to compare aggregation outputs.

    Raw offers are returned unchanged (their ids are ground truth);
    aggregates get id 0 and sorted constituent ids, so two aggregates built
    from the same group compare equal regardless of which engine allocated
    their ids or in which order provenance was recorded.
    """
    if not offer.is_aggregate:
        return offer
    return replace(offer, id=0, constituent_ids=tuple(sorted(offer.constituent_ids)))


class _CellDirt:
    """Per-cell dirt accumulated between commits — the chunk-granular ledger.

    Two kinds of dirt, resolved to chunk indices at commit time (when the
    sorted membership is in hand anyway):

    * ``touched`` — member ids revised *in place* (price, state, profile;
      same grid cell), each perturbing exactly the chunk containing it;
    * ``structural_from`` — the smallest id inserted into or withdrawn from
      the cell; ranks shift from that id onwards, so every chunk from the one
      containing its insertion point to the end changes membership, while
      chunks before it keep their exact member list (the stability rule).
    """

    __slots__ = ("touched", "structural_from")

    def __init__(self) -> None:
        self.touched: set[int] = set()
        self.structural_from: int | None = None

    def note_structural(self, offer_id: int) -> None:
        if self.structural_from is None or offer_id < self.structural_from:
            self.structural_from = offer_id


@dataclass(frozen=True)
class ChunkStats:
    """Chunk-granularity instrumentation of one commit drain."""

    #: Chunks whose aggregate was recomputed this commit.
    reaggregated: int = 0
    #: Chunks inside dirty cells that were proven clean and reused untouched.
    skipped: int = 0

    def __add__(self, other: "ChunkStats") -> "ChunkStats":
        return ChunkStats(
            self.reaggregated + other.reaggregated, self.skipped + other.skipped
        )


@dataclass
class CommitResult:
    """Outcome of one engine commit: what changed, and how long it took."""

    #: Monotonically increasing commit number (1 for the first commit).
    sequence: int
    #: Number of events applied since the previous commit.
    events_applied: int
    #: Grid cells the commit examined (any dirt; a cell can appear here with
    #: zero re-aggregated chunks, e.g. a withdrawal that only retired a chunk).
    dirty_cells: tuple[GroupKey, ...]
    #: Output offers that are new or changed (aggregates and passthroughs).
    changed: list[FlexOffer] = field(default_factory=list)
    #: Output offers retired by this commit (kept as objects so consumers can
    #: tell retired aggregates from raw offers that were folded away).
    removed: list[FlexOffer] = field(default_factory=list)
    #: Wall-clock seconds the commit took.
    elapsed_seconds: float = 0.0
    #: Chunks recomputed by this commit (granularity instrumentation).
    chunks_reaggregated: int = 0
    #: Chunks in dirty cells reused untouched (the chunk ledger's savings).
    chunks_skipped: int = 0

    @property
    def changed_ids(self) -> tuple[int, ...]:
        return tuple(offer.id for offer in self.changed)

    @property
    def removed_ids(self) -> tuple[int, ...]:
        return tuple(offer.id for offer in self.removed)

    def __len__(self) -> int:
        return len(self.changed) + len(self.removed)


class LiveAggregationEngine:
    """Keeps flex-offer aggregates fresh under a stream of lifecycle events.

    Parameters
    ----------
    parameters:
        The grouping/aggregation parameters (shared with the batch path).
    micro_batch_size:
        ``0`` (default) commits only when :meth:`commit` is called; a positive
        value auto-commits after that many applied events, trading commit
        latency against per-event overhead.
    id_offset:
        First aggregate id; ids are allocated once per (cell, chunk) and are
        stable across commits, so a re-aggregated group keeps its identity.
    hub:
        Optional :class:`~repro.live.subscriptions.SubscriptionHub`; every
        commit result is published to it.
    """

    def __init__(
        self,
        parameters: AggregationParameters | None = None,
        micro_batch_size: int = 0,
        id_offset: int = 1_000_000,
        hub: "SubscriptionHub | None" = None,
    ) -> None:
        if micro_batch_size < 0:
            raise LiveEngineError("micro_batch_size must be >= 0")
        self.parameters = parameters or AggregationParameters()
        self.micro_batch_size = micro_batch_size
        self.id_offset = id_offset
        self.hub = hub
        #: Raw (non-aggregate) offers by id — the ground truth.
        self._offers: dict[int, FlexOffer] = {}
        #: Input offers that are already aggregates pass through untouched.
        self._passthrough: dict[int, FlexOffer] = {}
        #: Passthrough versions as of the last commit (no-op change suppression).
        self._committed_passthrough: dict[int, FlexOffer] = {}
        #: The persistent grouping grid: cell -> member offer ids.
        self._cells: dict[GroupKey, set[int]] = {}
        self._cell_of: dict[int, GroupKey] = {}
        #: The chunk-granular dirty ledger: cell -> accumulated dirt, resolved
        #: to the perturbed chunk indices at commit time.
        self._dirty: dict[GroupKey, _CellDirt] = {}
        self._dirty_passthrough: set[int] = set()
        self._removed_passthrough: dict[int, FlexOffer] = {}
        #: Committed aggregation output per cell.
        self._outputs: dict[GroupKey, list[FlexOffer]] = {}
        self._constituents: dict[int, list[FlexOffer]] = {}
        #: Stable aggregate id per (cell, chunk index).
        self._aggregate_ids: dict[tuple[GroupKey, int], int] = {}
        #: Every id ever handed to an engine aggregate (stable, never reused).
        self._reserved_ids: set[int] = set()
        self._next_id = id_offset
        self._pending_events = 0
        self._commit_count = 0
        #: Called with every :class:`CommitResult` right after the commit is
        #: final (sequence assigned, hub notified) and *before* control
        #: returns to the committer — on whatever thread committed.  This is
        #: the one hook that sees every commit path: session ingest/commit,
        #: direct replay-driven commits, and the async worker's background
        #: commits.  The session backends hang snapshot publication and
        #: cumulative chunk accounting here (see :mod:`repro.readpath`).
        self.commit_listener: "Callable[[CommitResult], None] | None" = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live raw offers (passthrough aggregates included)."""
        return len(self._offers) + len(self._passthrough)

    @property
    def pending_events(self) -> int:
        """Events applied since the last commit."""
        return self._pending_events

    @property
    def dirty_cell_count(self) -> int:
        return len(self._dirty)

    @property
    def dirty_chunk_count(self) -> int:
        """Chunks the next commit would re-aggregate (resolved on demand)."""
        return sum(
            len(self._dirty_chunks(cell, dirt, sorted(self._cells.get(cell, ()))))
            for cell, dirt in self._dirty.items()
        )

    @property
    def has_pending_changes(self) -> bool:
        """Whether a commit would find anything to re-aggregate or retire."""
        return bool(self._dirty or self._dirty_passthrough or self._removed_passthrough)

    @property
    def cell_count(self) -> int:
        """Number of non-empty grouping-grid cells."""
        return len(self._cells)

    def owns_aggregate_id(self, offer_id: int) -> bool:
        """Whether ``offer_id`` was ever allocated to one of this engine's aggregates."""
        return offer_id in self._reserved_ids

    @property
    def commit_count(self) -> int:
        """Commits performed so far — the snapshot version sequence."""
        return self._commit_count

    def cells(self) -> list[GroupKey]:
        """Every non-empty grid cell (the snapshot capture walk)."""
        return list(self._cells)

    def cell_members(self, cell: GroupKey) -> list[FlexOffer]:
        """One cell's surviving raw members, sorted by id (chunk order)."""
        return [self._offers[offer_id] for offer_id in sorted(self._cells.get(cell, ()))]

    def outputs_of_cell(self, cell: GroupKey) -> list[FlexOffer]:
        """One cell's committed aggregation outputs (copied, safe to keep)."""
        return list(self._outputs.get(cell, ()))

    def cell_outputs(self) -> dict[GroupKey, list[FlexOffer]]:
        """Committed outputs per grid cell (a live view — do not mutate)."""
        return self._outputs

    def passthrough_offers(self) -> list[FlexOffer]:
        """The live passthrough aggregates, sorted by id."""
        return [self._passthrough[offer_id] for offer_id in sorted(self._passthrough)]

    def constituent_map(self) -> dict[int, list[FlexOffer]]:
        """Provenance of every committed aggregate (a live view — do not mutate)."""
        return self._constituents

    def offers(self) -> list[FlexOffer]:
        """The surviving raw offers, sorted by id (batch-pipeline input order)."""
        combined = list(self._offers.values()) + list(self._passthrough.values())
        return sorted(combined, key=lambda offer: offer.id)

    def offer(self, offer_id: int) -> FlexOffer:
        """One raw offer by id; raises :class:`LiveEngineError` when unknown."""
        try:
            return self._offers.get(offer_id) or self._passthrough[offer_id]
        except KeyError as exc:
            raise LiveEngineError(f"unknown offer id {offer_id}") from exc

    def cell_of(self, offer_id: int) -> GroupKey | None:
        """The grid cell an offer currently sits in (``None`` for passthroughs)."""
        return self._cell_of.get(offer_id)

    # ------------------------------------------------------------------
    # Event application
    # ------------------------------------------------------------------
    def apply(self, event: OfferEvent) -> CommitResult | None:
        """Apply one event; returns a commit result when micro-batching fired."""
        if isinstance(event, OfferAdded):
            self._insert(event.offer)
        elif isinstance(event, OfferUpdated):
            self._update(event.offer)
        elif isinstance(event, OfferWithdrawn):
            self._remove(event.offer_id)
        elif isinstance(event, OfferStateChanged):
            self._change_state(event)
        else:
            raise LiveEngineError(f"unknown event type {type(event).__name__}")
        self._pending_events += 1
        if self.micro_batch_size and self._pending_events >= self.micro_batch_size:
            return self.commit()
        return None

    def apply_many(self, events: Iterable[OfferEvent]) -> list[CommitResult]:
        """Apply a batch of events; returns any micro-batch commit results."""
        results = []
        for event in events:
            result = self.apply(event)
            if result is not None:
                results.append(result)
        return results

    def _mark_structural(self, cell: GroupKey, offer_id: int) -> None:
        """Record a membership change (insert/withdraw) of ``offer_id`` in ``cell``."""
        self._dirty.setdefault(cell, _CellDirt()).note_structural(offer_id)

    def _mark_touched(self, cell: GroupKey, offer_id: int) -> None:
        """Record an in-place revision of ``offer_id`` (cell membership unchanged)."""
        self._dirty.setdefault(cell, _CellDirt()).touched.add(offer_id)

    def _insert(self, offer: FlexOffer, cell: GroupKey | None = None) -> None:
        if offer.id in self._offers or offer.id in self._passthrough:
            raise LiveEngineError(f"offer id {offer.id} is already live; use OfferUpdated")
        if offer.id in self._reserved_ids:
            raise LiveEngineError(
                f"offer id {offer.id} collides with an engine-allocated aggregate id"
            )
        # Never allocate an aggregate id an input already occupies (e.g. batch
        # aggregates fed back in as passthroughs carry ids >= id_offset).
        self._next_id = max(self._next_id, offer.id + 1)
        if offer.is_aggregate:
            self._passthrough[offer.id] = offer
            self._dirty_passthrough.add(offer.id)
            self._removed_passthrough.pop(offer.id, None)
            return
        if cell is None:
            cell = group_key(offer, self.parameters)
        self._offers[offer.id] = offer
        self._cells.setdefault(cell, set()).add(offer.id)
        self._cell_of[offer.id] = cell
        self._mark_structural(cell, offer.id)

    def _update(self, offer: FlexOffer, cell: GroupKey | None = None) -> None:
        """Apply a revision: in place when the grid cell is unchanged.

        A revision that keeps the offer in its cell leaves the membership —
        and therefore the chunk layout — untouched, so only the one chunk
        containing the offer needs re-aggregation.  Anything else (cell
        migration, passthrough, unknown id) falls back to remove + insert.
        """
        if not offer.is_aggregate and offer.id in self._offers:
            if cell is None:
                cell = group_key(offer, self.parameters)
            if self._cell_of[offer.id] == cell:
                self._offers[offer.id] = offer
                self._mark_touched(cell, offer.id)
                return
        self._remove(offer.id)
        self._insert(offer, cell)

    def _remove(self, offer_id: int) -> None:
        if offer_id in self._passthrough:
            self._removed_passthrough[offer_id] = self._passthrough.pop(offer_id)
            self._dirty_passthrough.discard(offer_id)
            return
        if offer_id not in self._offers:
            raise LiveEngineError(f"unknown offer id {offer_id}")
        cell = self._cell_of.pop(offer_id)
        members = self._cells[cell]
        members.discard(offer_id)
        if not members:
            del self._cells[cell]
        del self._offers[offer_id]
        self._mark_structural(cell, offer_id)

    def _change_state(self, event: OfferStateChanged) -> None:
        offer = self.offer(event.offer_id)
        transitioned = apply_transition(offer, event.state, event.schedule)
        if offer.is_aggregate:
            self._passthrough[offer.id] = transitioned
            self._dirty_passthrough.add(offer.id)
            return
        # State does not enter the grouping key, so the cell — and with it the
        # chunk layout — stays put; only the offer's own chunk is perturbed
        # (its aggregate's metadata may change).
        self._offers[offer.id] = transitioned
        self._mark_touched(self._cell_of[offer.id], offer.id)

    # ------------------------------------------------------------------
    # Commit: re-aggregate only the dirty cells
    # ------------------------------------------------------------------
    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        self._reserved_ids.add(allocated)
        return allocated

    def commit(self) -> CommitResult:
        """Re-aggregate the dirty cells and return what changed.

        The cost is proportional to the dirty membership, not the population:
        clean cells keep their committed output objects untouched.
        """
        started = time.perf_counter()
        events_applied = self._pending_events
        with _TRACER.span("live.commit"):
            dirty, changed, removed, stats = self.commit_core()
            # A raw offer migrating between cells in one commit leaves its old
            # cell (removed) and enters its new one (changed); it is still
            # live, so it must not be reported as removed or mirrors would
            # drop it.
            changed_ids = {offer.id for offer in changed}
            removed = [offer for offer in removed if offer.id not in changed_ids]
            self._commit_count += 1
            result = CommitResult(
                sequence=self._commit_count,
                events_applied=events_applied,
                dirty_cells=dirty,
                changed=changed,
                removed=removed,
                elapsed_seconds=time.perf_counter() - started,
                chunks_reaggregated=stats.reaggregated,
                chunks_skipped=stats.skipped,
            )
            if self.hub is not None:
                if _OBS.enabled:
                    publish_started = time.perf_counter()
                    with _TRACER.span("live.commit.publish"):
                        self.hub.publish(result)
                    _PUBLISH_SECONDS.observe(time.perf_counter() - publish_started)
                else:
                    self.hub.publish(result)
            # Inside the commit span on purpose: the listener is the read
            # path's snapshot publication + cache advance, causally part of
            # this commit — its spans belong in this trace.
            if self.commit_listener is not None:
                self.commit_listener(result)
        if _OBS.enabled:
            _COMMITS.inc()
            _COMMIT_SECONDS.observe(time.perf_counter() - started)
            _COMMIT_EVENTS.observe(events_applied)
        return result

    def _dirty_chunks(
        self, cell: GroupKey, dirt: _CellDirt, member_ids: list[int]
    ) -> set[int]:
        """Resolve one cell's accumulated dirt to the perturbed chunk indices.

        ``member_ids`` is the *surviving* sorted membership.  Structural dirt
        perturbs every chunk from the smallest inserted/withdrawn id's
        insertion point onwards (:func:`chunks_from`); in-place touches
        perturb exactly the chunk containing the member
        (:func:`chunk_assignment`).  Touched ids that were later withdrawn
        are covered by the structural range and skipped here.
        """
        max_group_size = self.parameters.max_group_size
        dirty_chunks: set[int] = set()
        if dirt.structural_from is not None:
            dirty_chunks.update(chunks_from(member_ids, dirt.structural_from, max_group_size))
        for offer_id in dirt.touched:
            # One bisect does both jobs: membership check and chunk rank
            # (the rank is chunk_assignment's formula inlined).
            index = bisect_left(member_ids, offer_id)
            if index < len(member_ids) and member_ids[index] == offer_id:
                dirty_chunks.add(index // max_group_size if max_group_size > 0 else 0)
        return dirty_chunks

    def commit_core(
        self,
    ) -> tuple[tuple[GroupKey, ...], list[FlexOffer], list[FlexOffer], ChunkStats]:
        """Drain the dirty state; returns ``(dirty_cells, changed, removed, stats)``.

        The engine-composition seam: :meth:`commit` wraps this with timing,
        migration filtering, sequence numbering and hub publication, and the
        sharded engine fans it out per shard so those per-commit fixed costs
        are paid once per *logical* commit, not once per shard.  ``removed``
        is unfiltered — an offer that migrated cells appears in both lists;
        callers apply the changed-wins rule over their merged result.
        Resets the dirty ledger and the pending-event counter.

        Within each dirty cell only the *perturbed* chunks re-aggregate; a
        clean chunk's committed output object is reused untouched — its
        member list is provably identical (see :class:`_CellDirt`).  The
        split is reported through ``stats``.

        Instrumented: the drain is a ``live.commit.drain`` span, its latency
        lands in ``repro.live.commit.drain.seconds``, and the chunk split
        feeds the reaggregated/skipped counters — recorded *here*, not in
        :meth:`commit`, so the sharded engine's direct per-shard fan-out
        calls are measured too.
        """
        if not _OBS.enabled:
            return self._drain()
        started = time.perf_counter()
        with _TRACER.span("live.commit.drain"):
            outcome = self._drain()
        _DRAIN_SECONDS.observe(time.perf_counter() - started)
        stats = outcome[3]
        _CHUNKS_REAGGREGATED.inc(stats.reaggregated)
        _CHUNKS_SKIPPED.inc(stats.skipped)
        return outcome

    def _drain(
        self,
    ) -> tuple[tuple[GroupKey, ...], list[FlexOffer], list[FlexOffer], ChunkStats]:
        """The uninstrumented drain body (see :meth:`commit_core`)."""
        changed: list[FlexOffer] = []
        removed: list[FlexOffer] = []
        reaggregated = 0
        skipped = 0
        dirty = tuple(sorted(self._dirty))
        for cell in dirty:
            old_outputs = self._outputs.get(cell, [])
            member_ids = sorted(self._cells.get(cell, ()))
            members = [self._offers[i] for i in member_ids]
            dirty_chunks = self._dirty_chunks(cell, self._dirty[cell], member_ids)
            chunks = chunk_group(members, self.parameters.max_group_size) if members else []
            new_outputs: list[FlexOffer] = []
            for chunk_index, group in enumerate(chunks):
                if chunk_index not in dirty_chunks and chunk_index < len(old_outputs):
                    # Clean chunk: the stability rule guarantees its member
                    # list is exactly the committed one — reuse the output.
                    new_outputs.append(old_outputs[chunk_index])
                    skipped += 1
                    continue
                reaggregated += 1
                if len(group) == 1:
                    # Mirror the batch pipeline: 1-offer groups pass through raw.
                    new_outputs.append(group[0])
                    continue
                key = (cell, chunk_index)
                if key not in self._aggregate_ids:
                    self._aggregate_ids[key] = self._allocate_id()
                combined = aggregate_group(group, self._aggregate_ids[key])
                self._constituents[combined.id] = list(group)
                new_outputs.append(combined)
            old_by_id = {offer.id: offer for offer in old_outputs}
            new_by_id = {offer.id: offer for offer in new_outputs}
            for offer_id, offer in new_by_id.items():
                previous = old_by_id.get(offer_id)
                if previous is not offer and previous != offer:
                    changed.append(offer)
            for offer_id, offer in old_by_id.items():
                if offer_id not in new_by_id:
                    removed.append(offer)
                    self._constituents.pop(offer_id, None)
            if new_outputs:
                self._outputs[cell] = new_outputs
            else:
                self._outputs.pop(cell, None)
        for offer_id in sorted(self._dirty_passthrough):
            offer = self._passthrough[offer_id]
            # Mirror the raw-cell path: suppress no-op outputs (e.g. a state
            # event that left the offer identical) so listeners stay asleep.
            if self._committed_passthrough.get(offer_id) != offer:
                changed.append(offer)
                self._committed_passthrough[offer_id] = offer
        for offer_id in sorted(self._removed_passthrough):
            removed.append(self._removed_passthrough[offer_id])
            self._committed_passthrough.pop(offer_id, None)
        self._dirty.clear()
        self._dirty_passthrough.clear()
        self._removed_passthrough.clear()
        self._pending_events = 0
        return dirty, changed, removed, ChunkStats(reaggregated, skipped)

    # ------------------------------------------------------------------
    # Aggregated state
    # ------------------------------------------------------------------
    def aggregated_offers(self) -> list[FlexOffer]:
        """The committed aggregation output (batch-equivalent offer list).

        Cells appear in sorted key order, passthrough aggregates last — the
        same layout :func:`repro.aggregation.aggregate.aggregate` produces.
        Uncommitted events are not reflected; call :meth:`commit` first.
        """
        output: list[FlexOffer] = []
        for cell in sorted(self._outputs):
            output.extend(self._outputs[cell])
        output.extend(self._passthrough[offer_id] for offer_id in sorted(self._passthrough))
        return output

    def constituents_of(self, aggregate_id: int) -> list[FlexOffer]:
        """Provenance of one committed aggregate (empty when unknown)."""
        return list(self._constituents.get(aggregate_id, ()))

    def result(self) -> AggregationResult:
        """The committed state as a batch-compatible :class:`AggregationResult`."""
        result = AggregationResult()
        result.offers = self.aggregated_offers()
        result.constituents = {key: list(value) for key, value in self._constituents.items()}
        return result

    def batch_equivalent(self) -> AggregationResult:
        """Run the *batch* pipeline over the surviving offers (for equivalence checks)."""
        from repro.aggregation.aggregate import aggregate

        return aggregate(self.offers(), self.parameters, id_offset=self.id_offset)


def assert_batch_equivalent(engine: LiveAggregationEngine) -> None:
    """Raise :class:`LiveEngineError` unless engine state equals the batch result.

    Equality is bit-for-bit on profiles and every attribute except aggregate
    ids (compared under :func:`canonical_form`, as a multiset).
    """
    from collections import Counter

    live = Counter(canonical_form(offer) for offer in engine.aggregated_offers())
    batch = Counter(canonical_form(offer) for offer in engine.batch_equivalent().offers)
    if live != batch:
        raise LiveEngineError(
            "live aggregation state diverged from the batch pipeline: "
            f"{len(live)} live outputs vs {len(batch)} batch outputs"
        )

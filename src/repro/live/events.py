"""Typed flex-offer lifecycle events and the append-only :class:`EventLog`.

In production the MIRABEL enterprise does not receive its flex-offers as a
finished dataset: they arrive as a *stream* of lifecycle events — an offer is
created, corrected by the prosumer, accepted/assigned/rejected by the
enterprise, or withdrawn.  This module is the vocabulary of that stream.  The
rest of the live subsystem (:mod:`repro.live.engine`,
:mod:`repro.live.warehouse`) consumes these events; the batch pipeline keeps
working on plain offer lists.

Events are immutable and JSON-serializable (via the flex-offer serialization
helpers), so an :class:`EventLog` can be persisted and replayed losslessly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime
from pathlib import Path
from typing import Any, Iterable, Iterator

from dataclasses import replace as _replace

from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer, FlexOfferState, Schedule
from repro.flexoffer.serialization import flex_offer_from_dict, flex_offer_to_dict


@dataclass(frozen=True)
class OfferEvent:
    """Base class of all offer lifecycle events."""

    timestamp: datetime

    @property
    def subject_id(self) -> int:
        """Id of the flex-offer the event concerns."""
        raise NotImplementedError


@dataclass(frozen=True)
class OfferAdded(OfferEvent):
    """A new flex-offer entered the system (freshly offered by a prosumer)."""

    offer: FlexOffer

    @property
    def subject_id(self) -> int:
        return self.offer.id


@dataclass(frozen=True)
class OfferUpdated(OfferEvent):
    """The prosumer revised an existing offer; ``offer`` is the full new version."""

    offer: FlexOffer

    @property
    def subject_id(self) -> int:
        return self.offer.id


@dataclass(frozen=True)
class OfferWithdrawn(OfferEvent):
    """The prosumer withdrew the offer; it leaves every derived state."""

    offer_id: int

    @property
    def subject_id(self) -> int:
        return self.offer_id


@dataclass(frozen=True)
class OfferStateChanged(OfferEvent):
    """The enterprise moved the offer through its lifecycle.

    ``schedule`` must accompany a transition to *assigned* (and may accompany
    *executed*); other transitions leave the schedule handling to the
    lifecycle rules of :class:`~repro.flexoffer.model.FlexOffer`.
    """

    offer_id: int
    state: FlexOfferState
    schedule: Schedule | None = None

    @property
    def subject_id(self) -> int:
        return self.offer_id


def apply_transition(
    offer: FlexOffer, state: FlexOfferState, schedule: Schedule | None = None
) -> FlexOffer:
    """Apply an :class:`OfferStateChanged` transition to ``offer``.

    Shared by the live engine and the live warehouse so both interpret state
    events identically.  Uses the flex-offer lifecycle methods (so e.g. a
    rejection drops the schedule); raises :class:`LiveEngineError` for
    infeasible transitions such as assigning without a schedule.
    """
    try:
        if state is FlexOfferState.ACCEPTED:
            return offer.accept()
        if state is FlexOfferState.REJECTED:
            return offer.reject()
        if state is FlexOfferState.ASSIGNED:
            target = schedule if schedule is not None else offer.schedule
            if target is None:
                raise LiveEngineError(f"offer {offer.id}: cannot assign without a schedule")
            return offer.assign(target)
        if state is FlexOfferState.EXECUTED:
            if schedule is not None:
                offer = offer.assign(schedule)
            return offer.execute()
        return _replace(offer, state=state)
    except LiveEngineError:
        raise
    except Exception as exc:
        raise LiveEngineError(f"offer {offer.id}: infeasible state change: {exc}") from exc


def event_to_dict(event: OfferEvent) -> dict[str, Any]:
    """Convert an event into a JSON-serializable dictionary."""
    # isoformat keeps sub-second precision, so the round trip is lossless.
    payload: dict[str, Any] = {"timestamp": event.timestamp.isoformat()}
    if isinstance(event, OfferAdded):
        payload["type"] = "added"
        payload["offer"] = flex_offer_to_dict(event.offer)
    elif isinstance(event, OfferUpdated):
        payload["type"] = "updated"
        payload["offer"] = flex_offer_to_dict(event.offer)
    elif isinstance(event, OfferWithdrawn):
        payload["type"] = "withdrawn"
        payload["offer_id"] = event.offer_id
    elif isinstance(event, OfferStateChanged):
        payload["type"] = "state_changed"
        payload["offer_id"] = event.offer_id
        payload["state"] = event.state.value
        if event.schedule is not None:
            payload["schedule"] = {
                "start_slot": event.schedule.start_slot,
                "energy_per_slice": list(event.schedule.energy_per_slice),
            }
    else:
        raise LiveEngineError(f"unknown event type {type(event).__name__}")
    return payload


def event_from_dict(payload: dict[str, Any]) -> OfferEvent:
    """Rebuild an event from :func:`event_to_dict` output."""
    try:
        timestamp = datetime.fromisoformat(payload["timestamp"])
        kind = payload["type"]
        if kind == "added":
            return OfferAdded(timestamp, flex_offer_from_dict(payload["offer"]))
        if kind == "updated":
            return OfferUpdated(timestamp, flex_offer_from_dict(payload["offer"]))
        if kind == "withdrawn":
            return OfferWithdrawn(timestamp, int(payload["offer_id"]))
        if kind == "state_changed":
            schedule = None
            if payload.get("schedule") is not None:
                schedule = Schedule(
                    start_slot=int(payload["schedule"]["start_slot"]),
                    energy_per_slice=tuple(float(v) for v in payload["schedule"]["energy_per_slice"]),
                )
            return OfferStateChanged(
                timestamp, int(payload["offer_id"]), FlexOfferState(payload["state"]), schedule
            )
        raise LiveEngineError(f"unknown event type {kind!r}")
    except (KeyError, TypeError, ValueError) as exc:
        raise LiveEngineError(f"malformed event payload: {exc}") from exc


class EventLog:
    """An append-only, sequence-numbered log of offer events.

    The log records arrival order (the *sequence*); :meth:`replay_order`
    yields events sorted by timestamp with the sequence as tie-breaker, which
    is the order the live engine consumes them in.
    """

    def __init__(self, events: Iterable[OfferEvent] = ()) -> None:
        self._events: list[OfferEvent] = []
        for event in events:
            self.append(event)

    def append(self, event: OfferEvent) -> int:
        """Append one event; returns its sequence number."""
        if not isinstance(event, OfferEvent):
            raise LiveEngineError(f"EventLog only stores OfferEvent, got {type(event).__name__}")
        self._events.append(event)
        return len(self._events) - 1

    def extend(self, events: Iterable[OfferEvent]) -> None:
        """Append many events."""
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[OfferEvent]:
        return iter(self._events)

    def __getitem__(self, sequence: int) -> OfferEvent:
        return self._events[sequence]

    def since(self, sequence: int) -> list[OfferEvent]:
        """Events appended at or after ``sequence`` (for catch-up consumers)."""
        return self._events[sequence:]

    def replay_order(self) -> list[OfferEvent]:
        """All events sorted by timestamp, arrival sequence breaking ties."""
        order = sorted(range(len(self._events)), key=lambda i: (self._events[i].timestamp, i))
        return [self._events[i] for i in order]

    def subjects(self) -> set[int]:
        """Ids of every offer the log ever mentioned."""
        return {event.subject_id for event in self._events}

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict[str, Any]]:
        """The whole log as JSON-serializable dictionaries (in arrival order)."""
        return list(self.iter_dicts())

    def iter_dicts(self) -> Iterator[dict[str, Any]]:
        """Stream the log as JSON-serializable dictionaries (arrival order).

        Unlike :meth:`to_dicts` nothing is materialized, so a large log can be
        written out line by line (see :meth:`to_jsonl`).
        """
        for event in self._events:
            yield event_to_dict(event)

    @classmethod
    def from_dicts(cls, payloads: Iterable[dict[str, Any]]) -> "EventLog":
        """Rebuild a log from :meth:`to_dicts` output."""
        return cls.from_iter(payloads)

    @classmethod
    def from_iter(cls, payloads: Iterable[dict[str, Any]]) -> "EventLog":
        """Rebuild a log from a (possibly lazy) stream of event dictionaries."""
        return cls(event_from_dict(payload) for payload in payloads)

    def to_jsonl(self, path: str | Path) -> int:
        """Write the log as JSON Lines; returns the number of events written."""
        return write_jsonl(path, self.iter_dicts())

    @classmethod
    def from_jsonl(cls, path: str | Path) -> "EventLog":
        """Rebuild a log from a :meth:`to_jsonl` file without materializing it twice."""
        return cls.from_iter(read_jsonl(path))


def _dump_jsonl(path: str | Path, payloads: Iterable[dict[str, Any]], mode: str) -> int:
    count = 0
    with open(path, mode, encoding="utf-8") as handle:
        for payload in payloads:
            handle.write(json.dumps(payload, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def write_jsonl(path: str | Path, payloads: Iterable[dict[str, Any]]) -> int:
    """Write one JSON document per line; returns the line count.

    Shared by :meth:`EventLog.to_jsonl` and the segment store of
    :mod:`repro.store` — the payloads stream through, so writing a large log
    never holds it in memory.
    """
    return _dump_jsonl(path, payloads, "w")


def append_jsonl(path: str | Path, payloads: Iterable[dict[str, Any]]) -> int:
    """Append one JSON document per line; returns the appended line count."""
    return _dump_jsonl(path, payloads, "a")


def read_jsonl(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream the JSON documents of a JSON-Lines file, one per line."""
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except ValueError as exc:
                raise LiveEngineError(f"malformed JSONL line in {path}: {exc}") from exc
            yield payload

"""Hash-partitioned sharded flex-offer aggregation engine.

:class:`~repro.live.engine.LiveAggregationEngine` keeps one grouping grid and
one dirty set, so a commit walks every dirty cell in one sequence.  The
sharded engine partitions the grid by *cell-key hash* into ``shard_count``
independent shards — each a plain live engine with its own grid, dirty set,
commit sequence and aggregate-id allocator — and commits dirty shards
independently (thread-pool fan-out for large commits, inline otherwise),
merging the per-shard results into **one logical commit**.

Invariants the partitioning preserves:

* *Routing is a pure function of the cell key* (`crc32`, not the salted
  builtin ``hash``), so every offer of a cell lands in the same shard and the
  shard layout is reproducible across processes.
* *Aggregate ids never collide across shards*: shard ``i`` only allocates ids
  congruent to ``i`` modulo ``shard_count`` (see :class:`_ShardEngine`), so
  the merged output keeps the live engine's stable-id contract.
* *Subscribers see logical commits, not shards*: the sharded engine owns the
  :class:`~repro.live.subscriptions.SubscriptionHub`; shards run hubless and
  the merged :class:`ShardedCommitResult` is published exactly once.
* *Batch equivalence* is inherited: each shard upholds the dirty-cell
  contract for its cells, and the merge is a disjoint union, so
  :meth:`aggregated_offers` equals the batch pipeline over the surviving
  offers (checked by :func:`~repro.live.engine.assert_batch_equivalent` and
  the four-engine equivalence suite).
"""

from __future__ import annotations

import os
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, Iterable

from repro.aggregation.aggregate import AggregationResult
from repro.aggregation.grouping import GroupKey, group_key
from repro.aggregation.parameters import AggregationParameters
from repro.errors import LiveEngineError
from repro.flexoffer.model import FlexOffer
from repro.live.engine import (
    ChunkStats,
    CommitResult,
    LiveAggregationEngine,
    cell_key_string,
)
from repro.live.events import (
    OfferAdded,
    OfferEvent,
    OfferStateChanged,
    OfferUpdated,
    OfferWithdrawn,
)
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.live.subscriptions import SubscriptionHub

# ----------------------------------------------------------------------
# Observability: logical-commit metrics for the sharded engine.  The
# per-shard drains are measured inside commit_core (see repro.live.engine);
# here the fan-out and merge phases get their own series and spans.
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_SHARDED_COMMIT_SECONDS = _OBS.histogram(
    "repro.live.sharded.commit.seconds", "logical sharded-commit latency"
)
_SHARDED_FANOUT_SECONDS = _OBS.histogram(
    "repro.live.sharded.fanout.seconds", "per-shard drain fan-out latency (all shards)"
)
_SHARDED_MERGE_SECONDS = _OBS.histogram(
    "repro.live.sharded.merge.seconds", "per-shard result merge latency"
)
_SHARDED_SHARDS = _OBS.histogram(
    "repro.live.sharded.shards", "dirty shards drained per logical commit", COUNT_BUCKETS
)
_DIRTY_SHARDS_GAUGE = _OBS.gauge(
    "repro.live.sharded.dirty_shards", "shards dirtied since the last logical commit"
)


def shard_of_cell(cell: GroupKey, shard_count: int) -> int:
    """The shard index of one grid cell — stable across processes and runs."""
    return zlib.crc32(cell_key_string(cell).encode()) % shard_count


@dataclass
class ShardedCommitResult(CommitResult):
    """One logical commit, merged from the independent per-shard drains.

    ``sequence``/``events_applied`` are the sharded engine's own counters;
    ``dirty_cells``/``changed``/``removed`` are the merged union, with the
    same migration rule the base engine applies (an offer that left one shard
    and entered another within the commit is changed, never removed).
    """

    #: Indices of the shards this logical commit drained (dirty shards only).
    shard_indices: tuple[int, ...] = ()

    @property
    def committed_shards(self) -> int:
        return len(self.shard_indices)


class _ShardEngine(LiveAggregationEngine):
    """One shard: a hubless live engine allocating ids in its congruence class."""

    def __init__(
        self,
        parameters: AggregationParameters,
        id_offset: int,
        shard_index: int,
        shard_count: int,
    ) -> None:
        super().__init__(parameters, micro_batch_size=0, id_offset=id_offset, hub=None)
        self.shard_index = shard_index
        self.shard_count = shard_count

    def _allocate_id(self) -> int:
        # Round up to the next id ≡ shard_index (mod shard_count).  Input
        # offers bump `_next_id` past their own ids (inherited behaviour), so
        # rounding — rather than a fixed stride — keeps cross-shard ids
        # disjoint no matter which ids the inputs occupied.
        allocated = self._next_id + (self.shard_index - self._next_id) % self.shard_count
        self._next_id = allocated + 1
        self._reserved_ids.add(allocated)
        return allocated


class ShardedAggregationEngine:
    """The hash-partitioned counterpart of :class:`LiveAggregationEngine`.

    Drop-in for the live engine everywhere the session layer cares: the same
    event vocabulary, commit semantics (no-op suppression, stable aggregate
    ids, migration handling) and read API, with commits fanned out over
    independent shards.

    Parameters
    ----------
    shard_count:
        Number of hash partitions (default 8).
    parallel:
        Commit dirty shards on a thread pool when the commit is large enough;
        small commits always run inline — the fan-out overhead would dominate.
    parallel_min_cells:
        Minimum total dirty cells before the thread pool is used.
    """

    def __init__(
        self,
        parameters: AggregationParameters | None = None,
        shard_count: int = 8,
        micro_batch_size: int = 0,
        id_offset: int = 1_000_000,
        hub: "SubscriptionHub | None" = None,
        parallel: bool = True,
        parallel_min_cells: int = 64,
        max_workers: int | None = None,
    ) -> None:
        if shard_count < 1:
            raise LiveEngineError("shard_count must be >= 1")
        if micro_batch_size < 0:
            raise LiveEngineError("micro_batch_size must be >= 0")
        self.parameters = parameters or AggregationParameters()
        self.shard_count = shard_count
        self.micro_batch_size = micro_batch_size
        self.id_offset = id_offset
        self.hub = hub
        self.parallel = parallel
        self.parallel_min_cells = parallel_min_cells
        self._max_workers = max_workers or min(shard_count, os.cpu_count() or 2)
        self._shards = [
            _ShardEngine(self.parameters, id_offset, index, shard_count)
            for index in range(shard_count)
        ]
        #: Owning shard index per live offer id (raw offers and passthroughs).
        self._owner: dict[int, int] = {}
        #: Shard indices touched since the last commit (saves the commit-time scan).
        self._dirty_shards: set[int] = set()
        #: Memoized cell → shard routing (cells repeat; tuple hash beats crc32).
        self._shard_by_cell: dict[GroupKey, int] = {}
        self._executor: ThreadPoolExecutor | None = None
        self._pending_events = 0
        self._commit_count = 0
        #: Same contract as :attr:`LiveAggregationEngine.commit_listener` —
        #: called with every merged :class:`ShardedCommitResult` before
        #: :meth:`commit` returns, on the committing thread.
        self.commit_listener = None
        #: Lazily bound per-shard labeled fan-out histograms (satellite obs:
        #: one ``{shard="N"}`` series per shard next to the unlabeled total).
        self._shard_fanout: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live raw offers (passthrough aggregates included)."""
        return len(self._owner)

    @property
    def shards(self) -> tuple[LiveAggregationEngine, ...]:
        """The shard engines, in shard-index order (read-only introspection)."""
        return tuple(self._shards)

    @property
    def pending_events(self) -> int:
        """Events applied since the last logical commit."""
        return self._pending_events

    @property
    def dirty_cell_count(self) -> int:
        return sum(shard.dirty_cell_count for shard in self._shards)

    @property
    def dirty_chunk_count(self) -> int:
        """Chunks the next logical commit would re-aggregate, across shards."""
        return sum(shard.dirty_chunk_count for shard in self._shards)

    @property
    def dirty_shard_count(self) -> int:
        return len(self._dirty_shards)

    @property
    def has_pending_changes(self) -> bool:
        return bool(self._dirty_shards)

    @property
    def cell_count(self) -> int:
        return sum(shard.cell_count for shard in self._shards)

    def shard_of(self, offer_id: int) -> int | None:
        """The shard index currently owning an offer (``None`` when unknown)."""
        return self._owner.get(offer_id)

    @property
    def commit_count(self) -> int:
        """Logical commits performed so far — the snapshot version sequence."""
        return self._commit_count

    def cells(self) -> list[GroupKey]:
        """Every non-empty grid cell across all shards."""
        return [cell for shard in self._shards for cell in shard.cells()]

    def cell_members(self, cell: GroupKey) -> list[FlexOffer]:
        """One cell's surviving raw members (routed to its owning shard)."""
        return self._shards[self._route_cell(cell)].cell_members(cell)

    def outputs_of_cell(self, cell: GroupKey) -> list[FlexOffer]:
        """One cell's committed outputs (routed to its owning shard)."""
        return self._shards[self._route_cell(cell)].outputs_of_cell(cell)

    def passthrough_offers(self) -> list[FlexOffer]:
        """The live passthrough aggregates across all shards, sorted by id."""
        combined = [
            offer for shard in self._shards for offer in shard.passthrough_offers()
        ]
        return sorted(combined, key=lambda offer: offer.id)

    def constituent_map(self) -> dict[int, list[FlexOffer]]:
        """Provenance of every committed aggregate, merged across shards."""
        merged: dict[int, list[FlexOffer]] = {}
        for shard in self._shards:
            merged.update(shard.constituent_map())
        return merged

    def offers(self) -> list[FlexOffer]:
        """The surviving raw offers across all shards, sorted by id."""
        combined = [offer for shard in self._shards for offer in shard.offers()]
        return sorted(combined, key=lambda offer: offer.id)

    def offer(self, offer_id: int) -> FlexOffer:
        """One raw offer by id; raises :class:`LiveEngineError` when unknown."""
        return self._owning_shard(offer_id).offer(offer_id)

    def cell_of(self, offer_id: int) -> GroupKey | None:
        """The grid cell an offer sits in (``None`` for passthroughs/unknown)."""
        index = self._owner.get(offer_id)
        return None if index is None else self._shards[index].cell_of(offer_id)

    # ------------------------------------------------------------------
    # Event application: route by cell-key hash
    # ------------------------------------------------------------------
    def _owning_shard(self, offer_id: int) -> LiveAggregationEngine:
        index = self._owner.get(offer_id)
        if index is None:
            raise LiveEngineError(f"unknown offer id {offer_id}")
        return self._shards[index]

    def _route_cell(self, cell: GroupKey) -> int:
        index = self._shard_by_cell.get(cell)
        if index is None:
            index = self._shard_by_cell[cell] = shard_of_cell(cell, self.shard_count)
        return index

    def _vet_input_id(self, offer_id: int) -> None:
        """Reject reserved ids and fence every shard's allocator against this one."""
        for shard in self._shards:
            if shard.owns_aggregate_id(offer_id):
                raise LiveEngineError(
                    f"offer id {offer_id} collides with an engine-allocated aggregate id"
                )
        # The base engine bumps its allocator past every input id; here only
        # the shard whose congruence class contains the id could ever allocate
        # it, so bump that shard — even when the offer's cell routes elsewhere.
        congruent = self._shards[offer_id % self.shard_count]
        congruent._next_id = max(congruent._next_id, offer_id + 1)

    def apply(self, event: OfferEvent) -> ShardedCommitResult | None:
        """Apply one event; returns a commit result when micro-batching fired.

        Routing calls the shard's mutators directly — the event was already
        dispatched (and, for inserts, the grid cell already computed) here, so
        going through the shard's own ``apply`` would pay for both twice.
        """
        if isinstance(event, OfferAdded):
            self._route_insert(event)
        elif isinstance(event, OfferUpdated):
            self._route_update(event)
        elif isinstance(event, OfferWithdrawn):
            index = self._owner.get(event.offer_id)
            if index is None:
                raise LiveEngineError(f"unknown offer id {event.offer_id}")
            self._shards[index]._remove(event.offer_id)
            self._dirty_shards.add(index)
            del self._owner[event.offer_id]
        elif isinstance(event, OfferStateChanged):
            # State never enters the grouping key, so the owner cannot change.
            index = self._owner.get(event.offer_id)
            if index is None:
                raise LiveEngineError(f"unknown offer id {event.offer_id}")
            self._shards[index]._change_state(event)
            self._dirty_shards.add(index)
        else:
            raise LiveEngineError(f"unknown event type {type(event).__name__}")
        self._pending_events += 1
        _DIRTY_SHARDS_GAUGE.track(len(self._dirty_shards))
        if self.micro_batch_size and self._pending_events >= self.micro_batch_size:
            return self.commit()
        return None

    def apply_many(self, events: Iterable[OfferEvent]) -> list[ShardedCommitResult]:
        """Apply a batch of events; returns any micro-batch commit results."""
        results = []
        for event in events:
            result = self.apply(event)
            if result is not None:
                results.append(result)
        return results

    def _route_insert(self, event: OfferAdded) -> None:
        offer = event.offer
        if offer.id in self._owner:
            raise LiveEngineError(f"offer id {offer.id} is already live; use OfferUpdated")
        # The owning shard checks its own reservations; a collision with an id
        # *another* shard allocated must be caught here.
        self._vet_input_id(offer.id)
        if offer.is_aggregate:
            index, cell = offer.id % self.shard_count, None
        else:
            cell = group_key(offer, self.parameters)
            index = self._route_cell(cell)
        self._shards[index]._insert(offer, cell)
        self._dirty_shards.add(index)
        self._owner[offer.id] = index

    def _route_update(self, event: OfferUpdated) -> None:
        offer = event.offer
        index = self._owner.get(offer.id)
        if index is None:
            raise LiveEngineError(f"unknown offer id {offer.id}")
        if offer.is_aggregate:
            target, cell = offer.id % self.shard_count, None
        else:
            cell = group_key(offer, self.parameters)
            target = self._route_cell(cell)
        if target == index:
            # Same shard: the shard's own update path keeps the revision
            # in place when the cell is unchanged, so only the one chunk
            # containing the offer turns dirty.
            self._shards[index]._update(offer, cell)
            self._dirty_shards.add(index)
            return
        # The revision moved the offer to a cell another shard owns: the two
        # halves hit different shards and the merged commit applies the same
        # migration rule — the offer is reported changed, never removed.
        self._shards[index]._remove(offer.id)
        self._shards[target]._insert(offer, cell)
        self._dirty_shards.add(index)
        self._dirty_shards.add(target)
        self._owner[offer.id] = target

    # ------------------------------------------------------------------
    # Commit: fan out over dirty shards, merge into one logical commit
    # ------------------------------------------------------------------
    def _pool(self) -> ThreadPoolExecutor:
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="shard-commit"
            )
        return self._executor

    def commit(self) -> ShardedCommitResult:
        """Commit every dirty shard and merge the results into one logical commit.

        Shard commits are independent (disjoint cells, disjoint id ranges), so
        they may run concurrently; results are merged in shard-index order for
        determinism.  The merged result is published to the hub exactly once.
        """
        started = time.perf_counter()
        dirty_shards = [(index, self._shards[index]) for index in sorted(self._dirty_shards)]
        self._dirty_shards.clear()
        _DIRTY_SHARDS_GAUGE.track(0)
        use_pool = (
            self.parallel
            and len(dirty_shards) > 1
            and sum(shard.dirty_cell_count for _, shard in dirty_shards)
            >= self.parallel_min_cells
        )
        recording = _OBS.enabled
        # Shards drain through commit_core(): the per-commit fixed costs
        # (timing, migration filter, result object, hub publication) are paid
        # once here per *logical* commit, not once per shard.  Each shard's
        # drain records its own latency inside commit_core; the fan-out span
        # covers all of them together (pool wait included).
        with _TRACER.span("sharded.commit"):
            fanout_started = time.perf_counter() if recording else 0.0
            with _TRACER.span("sharded.commit.fanout"):
                if use_pool:
                    # The pool threads must join THIS logical commit's trace:
                    # capture the fan-out span as an explicit context and ship
                    # it with the work — worker-thread-local state is not ours.
                    handoff = _TRACER.context()
                    drains = list(
                        self._pool().map(
                            partial(self._timed_drain, context=handoff), dirty_shards
                        )
                    )
                else:
                    drains = [self._timed_drain(pair) for pair in dirty_shards]
            if recording:
                _SHARDED_FANOUT_SECONDS.observe(time.perf_counter() - fanout_started)
            merge_started = time.perf_counter() if recording else 0.0
            with _TRACER.span("sharded.commit.merge"):
                changed: list[FlexOffer] = []
                removed: list[FlexOffer] = []
                dirty_cells: list[GroupKey] = []
                stats = ChunkStats()
                for shard_dirty, shard_changed, shard_removed, shard_stats in drains:
                    changed.extend(shard_changed)
                    removed.extend(shard_removed)
                    dirty_cells.extend(shard_dirty)
                    stats = stats + shard_stats
                # The changed-wins migration rule over the merged result: an
                # offer that migrated cells — within a shard or across shards —
                # is still live.
                changed_ids = {offer.id for offer in changed}
                removed = [offer for offer in removed if offer.id not in changed_ids]
            if recording:
                _SHARDED_MERGE_SECONDS.observe(time.perf_counter() - merge_started)
            self._commit_count += 1
            result = ShardedCommitResult(
                sequence=self._commit_count,
                events_applied=self._pending_events,
                dirty_cells=tuple(sorted(dirty_cells)),
                changed=changed,
                removed=removed,
                elapsed_seconds=time.perf_counter() - started,
                chunks_reaggregated=stats.reaggregated,
                chunks_skipped=stats.skipped,
                shard_indices=tuple(index for index, _ in dirty_shards),
            )
            self._pending_events = 0
            if self.hub is not None:
                self.hub.publish(result)
            if self.commit_listener is not None:
                self.commit_listener(result)
        if recording:
            _SHARDED_COMMIT_SECONDS.observe(time.perf_counter() - started)
            _SHARDED_SHARDS.observe(len(dirty_shards))
        return result

    def _shard_fanout_histogram(self, index: int):
        """The ``{shard="N"}``-labeled drain-latency series of one shard."""
        histogram = self._shard_fanout.get(index)
        if histogram is None:
            histogram = self._shard_fanout[index] = _OBS.histogram(
                "repro.live.sharded.fanout.seconds",
                "per-shard drain fan-out latency (all shards)",
                labels={"shard": str(index)},
            )
        return histogram

    def _timed_drain(self, pair, context=None):
        """Drain one shard, recording its latency under its own shard label.

        ``context`` is the fan-out span's :class:`~repro.obs.TraceContext`
        when this call runs on a pool thread: attaching it makes the drain
        span (and the kernel spans under it) children of the logical commit's
        trace.  Inline drains pass no context — they already nest naturally.
        """
        index, shard = pair
        if not _OBS.enabled:
            return shard.commit_core()
        drain_started = time.perf_counter()
        with _TRACER.attach(context):
            with _TRACER.span("sharded.shard.drain"):
                outcome = shard.commit_core()
        self._shard_fanout_histogram(index).observe(
            time.perf_counter() - drain_started
        )
        return outcome

    def close(self) -> None:
        """Shut the commit thread pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # ------------------------------------------------------------------
    # Aggregated state: disjoint union of the shard outputs
    # ------------------------------------------------------------------
    def aggregated_offers(self) -> list[FlexOffer]:
        """The committed output across all shards, in the base engine's layout:
        cells in globally sorted key order, passthrough aggregates last."""
        by_cell: dict[GroupKey, list[FlexOffer]] = {}
        passthrough: list[FlexOffer] = []
        for shard in self._shards:
            by_cell.update(shard.cell_outputs())
            passthrough.extend(shard.passthrough_offers())
        output: list[FlexOffer] = []
        for cell in sorted(by_cell):
            output.extend(by_cell[cell])
        output.extend(sorted(passthrough, key=lambda offer: offer.id))
        return output

    def constituents_of(self, aggregate_id: int) -> list[FlexOffer]:
        """Provenance of one committed aggregate (empty when unknown).

        Engine-allocated ids are congruent to their shard index, so the lookup
        is a single-shard dict hit.  Ids outside their shard's congruence
        class — possible after restoring a checkpoint another engine family
        wrote (see :mod:`repro.store.state`) — fall back to probing every
        shard.
        """
        hit = self._shards[aggregate_id % self.shard_count].constituents_of(aggregate_id)
        if hit:
            return hit
        for shard in self._shards:
            hit = shard.constituents_of(aggregate_id)
            if hit:
                return hit
        return []

    def result(self) -> AggregationResult:
        """The committed state as a batch-compatible :class:`AggregationResult`."""
        result = AggregationResult()
        result.offers = self.aggregated_offers()
        result.constituents = {
            aggregate_id: list(group)
            for shard in self._shards
            for aggregate_id, group in shard.constituent_map().items()
        }
        return result

    def batch_equivalent(self) -> AggregationResult:
        """Run the *batch* pipeline over the surviving offers (equivalence checks)."""
        from repro.aggregation.aggregate import aggregate

        return aggregate(self.offers(), self.parameters, id_offset=self.id_offset)

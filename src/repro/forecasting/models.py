"""Demand/supply forecasting models.

The MIRABEL EDMS includes a forecasting component (Fischer et al.) that
predicts demand and supply for the planning horizon.  The reproduction
implements the classical baseline family the pilot builds on: persistence,
moving average, seasonal naive and additive Holt–Winters (triple exponential
smoothing).  Every model follows the same two-phase protocol: ``fit`` on a
historical :class:`~repro.timeseries.series.TimeSeries`, then ``forecast`` a
number of future slots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ForecastError
from repro.timeseries.series import TimeSeries


class ForecastModel:
    """Base class defining the fit/forecast protocol."""

    name = "base"

    def fit(self, history: TimeSeries) -> "ForecastModel":
        """Fit the model on ``history`` and return ``self`` (for chaining)."""
        if len(history) == 0:
            raise ForecastError(f"{self.name}: cannot fit on an empty series")
        self._history = history
        return self

    def forecast(self, horizon: int) -> TimeSeries:
        """Forecast ``horizon`` slots immediately following the history."""
        raise NotImplementedError

    def _require_fit(self) -> TimeSeries:
        history = getattr(self, "_history", None)
        if history is None:
            raise ForecastError(f"{self.name}: forecast() called before fit()")
        return history

    def _make_series(self, values: np.ndarray) -> TimeSeries:
        history = self._require_fit()
        return TimeSeries(
            history.grid,
            history.end_slot,
            values,
            name=f"{history.name} forecast ({self.name})",
            unit=history.unit,
        )


class PersistenceForecast(ForecastModel):
    """Repeat the last observed value (the naive baseline)."""

    name = "persistence"

    def forecast(self, horizon: int) -> TimeSeries:
        history = self._require_fit()
        last = float(history.values[-1])
        return self._make_series(np.full(horizon, last))


class MovingAverageForecast(ForecastModel):
    """Repeat the mean of the last ``window`` observations."""

    name = "moving-average"

    def __init__(self, window: int = 8) -> None:
        if window < 1:
            raise ForecastError("moving-average window must be >= 1")
        self.window = window

    def forecast(self, horizon: int) -> TimeSeries:
        history = self._require_fit()
        window = min(self.window, len(history))
        level = float(history.values[-window:].mean())
        return self._make_series(np.full(horizon, level))


class SeasonalNaiveForecast(ForecastModel):
    """Repeat the value observed one season earlier (e.g. same slot yesterday)."""

    name = "seasonal-naive"

    def __init__(self, season_length: int = 96) -> None:
        if season_length < 1:
            raise ForecastError("season length must be >= 1")
        self.season_length = season_length

    def forecast(self, horizon: int) -> TimeSeries:
        history = self._require_fit()
        if len(history) < self.season_length:
            # Degrade gracefully to persistence when history is too short.
            last = float(history.values[-1])
            return self._make_series(np.full(horizon, last))
        season = history.values[-self.season_length :]
        values = np.array([season[index % self.season_length] for index in range(horizon)])
        return self._make_series(values)


@dataclass
class HoltWintersConfig:
    """Smoothing factors of the additive Holt–Winters model (all in (0, 1))."""

    alpha: float = 0.3
    beta: float = 0.05
    gamma: float = 0.2


class HoltWintersForecast(ForecastModel):
    """Additive Holt–Winters (level + trend + seasonal) forecaster."""

    name = "holt-winters"

    def __init__(self, season_length: int = 96, config: HoltWintersConfig | None = None) -> None:
        if season_length < 1:
            raise ForecastError("season length must be >= 1")
        self.season_length = season_length
        self.config = config or HoltWintersConfig()
        for factor in (self.config.alpha, self.config.beta, self.config.gamma):
            if not 0.0 < factor < 1.0:
                raise ForecastError("Holt-Winters smoothing factors must lie in (0, 1)")

    def fit(self, history: TimeSeries) -> "HoltWintersForecast":
        super().fit(history)
        values = history.values
        season = self.season_length
        if len(values) < 2 * season:
            # Not enough data for seasonal initialisation: fall back to a flat season.
            self._level = float(values.mean())
            self._trend = 0.0
            self._seasonal = np.zeros(season)
            return self

        first_season = values[:season]
        second_season = values[season : 2 * season]
        self._level = float(first_season.mean())
        self._trend = float((second_season.mean() - first_season.mean()) / season)
        self._seasonal = (first_season - first_season.mean()).astype(float)

        alpha, beta, gamma = self.config.alpha, self.config.beta, self.config.gamma
        level, trend = self._level, self._trend
        seasonal = self._seasonal.copy()
        for index in range(len(values)):
            season_index = index % season
            observed = values[index]
            previous_level = level
            level = alpha * (observed - seasonal[season_index]) + (1 - alpha) * (level + trend)
            trend = beta * (level - previous_level) + (1 - beta) * trend
            seasonal[season_index] = gamma * (observed - level) + (1 - gamma) * seasonal[season_index]
        self._level, self._trend, self._seasonal = level, trend, seasonal
        return self

    def forecast(self, horizon: int) -> TimeSeries:
        self._require_fit()
        values = np.empty(horizon)
        history_length = len(self._history)
        for step in range(1, horizon + 1):
            season_index = (history_length + step - 1) % self.season_length
            values[step - 1] = self._level + step * self._trend + self._seasonal[season_index]
        return self._make_series(np.clip(values, 0.0, None))

"""Backtesting of forecasting models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ForecastError
from repro.forecasting.models import ForecastModel
from repro.timeseries.series import TimeSeries
from repro.timeseries.statistics import (
    mean_absolute_error,
    mean_absolute_percentage_error,
    root_mean_squared_error,
)


@dataclass(frozen=True)
class ForecastAccuracy:
    """Accuracy of one model on one backtest split."""

    model_name: str
    horizon: int
    mae: float
    rmse: float
    mape: float


def backtest(
    model: ForecastModel, series: TimeSeries, horizon: int, train_fraction: float = 0.75
) -> ForecastAccuracy:
    """Train on the first part of ``series`` and score on the following ``horizon`` slots."""
    if not 0.0 < train_fraction < 1.0:
        raise ForecastError("train_fraction must lie in (0, 1)")
    split = int(len(series) * train_fraction)
    if split < 1 or split + 1 > len(series):
        raise ForecastError("series is too short for the requested split")
    horizon = min(horizon, len(series) - split)
    train = series.slice_slots(series.start_slot, series.start_slot + split)
    actual = series.slice_slots(series.start_slot + split, series.start_slot + split + horizon)
    predicted = model.fit(train).forecast(horizon)
    return ForecastAccuracy(
        model_name=model.name,
        horizon=horizon,
        mae=mean_absolute_error(actual, predicted),
        rmse=root_mean_squared_error(actual, predicted),
        mape=mean_absolute_percentage_error(actual, predicted),
    )


def compare_models(
    models: Sequence[ForecastModel], series: TimeSeries, horizon: int, train_fraction: float = 0.75
) -> list[ForecastAccuracy]:
    """Backtest several models on the same split and return their accuracies."""
    return [backtest(model, series, horizon, train_fraction) for model in models]

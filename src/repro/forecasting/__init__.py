"""Forecasting substrate: persistence, moving average, seasonal naive, Holt-Winters."""

from repro.forecasting.evaluation import ForecastAccuracy, backtest, compare_models
from repro.forecasting.models import (
    ForecastModel,
    HoltWintersConfig,
    HoltWintersForecast,
    MovingAverageForecast,
    PersistenceForecast,
    SeasonalNaiveForecast,
)

__all__ = [
    "ForecastModel",
    "PersistenceForecast",
    "MovingAverageForecast",
    "SeasonalNaiveForecast",
    "HoltWintersForecast",
    "HoltWintersConfig",
    "ForecastAccuracy",
    "backtest",
    "compare_models",
]

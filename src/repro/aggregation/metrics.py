"""Quality metrics of an aggregation run.

The aggregation panel of the tool (Figure 11) lets the analyst tune the
grouping tolerances interactively; these metrics quantify the trade-off the
panel exposes: stronger aggregation shows fewer objects on screen but loses
time flexibility (the aggregate keeps only its group's minimum flexibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.aggregation.aggregate import AggregationResult
from repro.flexoffer.model import FlexOffer


@dataclass(frozen=True)
class AggregationMetrics:
    """Summary of one aggregation run."""

    original_count: int
    aggregated_count: int
    aggregate_count: int
    reduction_ratio: float
    original_time_flexibility_slots: int
    retained_time_flexibility_slots: int
    time_flexibility_loss_ratio: float
    original_energy: float
    aggregated_energy: float


def evaluate(original: Sequence[FlexOffer], result: AggregationResult) -> AggregationMetrics:
    """Compute the aggregation metrics for ``result`` produced from ``original``.

    Retained time flexibility counts, for every original offer, the flexibility
    of the object that now represents it on screen (the aggregate's flexibility
    for folded offers, its own for untouched ones).
    """
    original_count = len(original)
    aggregated_count = len(result.offers)
    original_flex = sum(offer.time_flexibility_slots for offer in original)

    retained_flex = 0
    for offer in result.offers:
        if offer.is_aggregate:
            retained_flex += offer.time_flexibility_slots * len(offer.constituent_ids)
        else:
            retained_flex += offer.time_flexibility_slots

    original_energy = float(sum(offer.max_total_energy for offer in original))
    aggregated_energy = float(sum(offer.max_total_energy for offer in result.offers))

    loss_ratio = 0.0
    if original_flex > 0:
        loss_ratio = max(0.0, 1.0 - retained_flex / original_flex)

    return AggregationMetrics(
        original_count=original_count,
        aggregated_count=aggregated_count,
        aggregate_count=len(result.aggregates),
        reduction_ratio=(original_count / aggregated_count) if aggregated_count else 0.0,
        original_time_flexibility_slots=original_flex,
        retained_time_flexibility_slots=retained_flex,
        time_flexibility_loss_ratio=loss_ratio,
        original_energy=original_energy,
        aggregated_energy=aggregated_energy,
    )

"""The profile-summation kernel behind :func:`~repro.aggregation.aggregate.aggregate_group`.

Summing the per-slot energy bounds of a flex-offer group is the hottest loop
of the whole system — the batch pipeline runs it for every group, and the
live engines run it for every re-aggregated chunk of every commit.  This
module provides two interchangeable implementations:

* :func:`profile_bounds_scalar` — the pure-Python reference (the seed code of
  ``aggregate_group``, unchanged), always available;
* :func:`profile_bounds_numpy` — a vectorized path that expands every
  offer's profile once into cached index/weight arrays and folds the whole
  group through :func:`numpy.bincount`, whose C accumulation loop releases
  the GIL — which is what lets the sharded engine's thread-pool commit
  fan-out buy real wall-clock (ROADMAP live item e).

**Bit-identity is part of the contract.**  ``bincount`` adds its weights in
input order, and the weights are concatenated offer-major exactly as the
scalar loops iterate, so every output slot sees the same IEEE-754 additions
in the same order: the two kernels agree bit for bit, not just within a
tolerance (property-tested in ``tests/test_aggregation.py``).

:func:`profile_bounds` dispatches: numpy when it is importable and the group
is big enough to amortize the array round-trip, the scalar loops otherwise —
so environments without numpy lose nothing but speed.  Tests pin a path with
:func:`force_kernel`.

The crossover point is machine-dependent: ``NUMPY_MIN_SLOTS`` is the shipped
default, and :func:`calibrate` replaces it with a measured value — it times
both kernels over a synthetic slot ladder on *this* interpreter/BLAS/CPU
combination and installs the smallest group size where numpy actually wins as
a cached override (:func:`effective_min_slots` is what dispatch reads).

Dispatch is observable: :mod:`repro.obs` counts and times every call per
path (``repro.aggregation.kernel.{numpy,scalar}.*``), which is where the
calibration profile and the ``flexviz stats`` kernel rows come from.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator, Sequence, TYPE_CHECKING

from repro.errors import AggregationError
from repro.obs import get_registry

try:  # Optional dependency: every caller falls back to the scalar loops.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flexoffer.model import FlexOffer, ProfileSlice

#: Minimum total profile pieces in a group before the numpy path pays for
#: the Python->array round-trip (tiny groups stay on the scalar loops).
#: This is the *shipped default*; :func:`calibrate` measures the real
#: crossover of the running machine and overrides it (see
#: :func:`effective_min_slots`).
NUMPY_MIN_SLOTS = 128

#: The calibrated override (``None`` = use :data:`NUMPY_MIN_SLOTS`).
_calibrated_min_slots: int | None = None

#: Test hook: ``None`` auto-dispatches, ``"numpy"``/``"scalar"`` pin a path.
_forced: str | None = None

#: Which path the most recent :func:`profile_bounds` call took (debug/tests).
_last_used: str = ""

# ----------------------------------------------------------------------
# Observability: dispatch counts and per-path latency (disabled-mode cost is
# one attribute check inside profile_bounds; see repro.obs).
# ----------------------------------------------------------------------
_OBS = get_registry()
_KERNEL_CALLS = {
    "numpy": _OBS.counter(
        "repro.aggregation.kernel.numpy.calls", "profile_bounds calls on the numpy path"
    ),
    "scalar": _OBS.counter(
        "repro.aggregation.kernel.scalar.calls", "profile_bounds calls on the scalar path"
    ),
}
_KERNEL_SECONDS = {
    "numpy": _OBS.histogram(
        "repro.aggregation.kernel.numpy.seconds", "numpy profile-summation latency"
    ),
    "scalar": _OBS.histogram(
        "repro.aggregation.kernel.scalar.seconds", "scalar profile-summation latency"
    ),
}
_MIN_SLOTS_GAUGE = _OBS.gauge(
    "repro.aggregation.kernel.min_slots",
    "effective numpy dispatch threshold (calibrated or default)",
)


def numpy_available() -> bool:
    """Whether the vectorized path can run in this environment."""
    return _np is not None


def last_kernel_used() -> str:
    """The path the most recent dispatch took (``"numpy"``/``"scalar"``)."""
    return _last_used


@contextmanager
def force_kernel(mode: str | None) -> Iterator[None]:
    """Pin the kernel dispatch for the duration of the block (tests only)."""
    global _forced
    if mode not in (None, "numpy", "scalar"):
        raise AggregationError(f"unknown kernel mode {mode!r}")
    previous, _forced = _forced, mode
    try:
        yield
    finally:
        _forced = previous


def profile_bounds_scalar(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Summed per-slot (min, max) energy bounds — the pure-Python reference."""
    min_energy = [0.0] * length
    max_energy = [0.0] * length
    for offset, offer in zip(offsets, group):
        position = offset
        for piece in offer.profile:
            share_min = piece.min_energy / piece.duration_slots
            share_max = piece.max_energy / piece.duration_slots
            for extra in range(piece.duration_slots):
                min_energy[position + extra] += share_min
                max_energy[position + extra] += share_max
            position += piece.duration_slots
    return min_energy, max_energy


@lru_cache(maxsize=8192)
def _expanded_profile(profile: tuple["ProfileSlice", ...]):
    """One offer's profile expanded to (relative indices, min/max shares).

    Profiles are frozen tuples, so they key an LRU cache: the live engines
    re-aggregate the same offers commit after commit, and the expansion —
    the only per-piece Python loop left on the numpy path — is paid once
    per distinct profile, not once per commit.
    """
    indices: list[int] = []
    mins: list[float] = []
    maxs: list[float] = []
    position = 0
    for piece in profile:
        duration = piece.duration_slots
        # The share divisions happen here, in Python floats, exactly as the
        # scalar path computes them — the arrays only carry the results.
        share_min = piece.min_energy / duration
        share_max = piece.max_energy / duration
        indices.extend(range(position, position + duration))
        mins.extend([share_min] * duration)
        maxs.extend([share_max] * duration)
        position += duration
    return (
        _np.asarray(indices, dtype=_np.intp),
        _np.asarray(mins, dtype=_np.float64),
        _np.asarray(maxs, dtype=_np.float64),
    )


def profile_bounds_numpy(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Summed per-slot bounds via :func:`numpy.bincount` (bit-identical).

    ``bincount`` accumulates ``out[index[i]] += weight[i]`` strictly in input
    order; the index/weight arrays are concatenated offer-major, so repeated
    slots receive their additions in exactly the scalar loops' order.
    """
    if _np is None:
        raise AggregationError("the numpy kernel was requested but numpy is unavailable")
    index_parts = []
    min_parts = []
    max_parts = []
    for offset, offer in zip(offsets, group):
        indices, mins, maxs = _expanded_profile(offer.profile)
        index_parts.append(indices + offset if offset else indices)
        min_parts.append(mins)
        max_parts.append(maxs)
    indices = _np.concatenate(index_parts)
    min_energy = _np.bincount(
        indices, weights=_np.concatenate(min_parts), minlength=length
    )
    max_energy = _np.bincount(
        indices, weights=_np.concatenate(max_parts), minlength=length
    )
    return min_energy.tolist(), max_energy.tolist()


def effective_min_slots() -> int:
    """The numpy dispatch threshold in force (calibrated override or default)."""
    return _calibrated_min_slots if _calibrated_min_slots is not None else NUMPY_MIN_SLOTS


def set_min_slots(value: int | None) -> None:
    """Install (or, with ``None``, clear) the calibrated dispatch threshold."""
    global _calibrated_min_slots
    if value is not None and value < 1:
        raise AggregationError("the numpy dispatch threshold must be >= 1")
    _calibrated_min_slots = value
    _MIN_SLOTS_GAUGE.set(effective_min_slots())


def profile_bounds(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Dispatch to the numpy kernel or the scalar loops (identical outputs).

    Auto mode picks numpy when it is importable and the group carries at
    least :func:`effective_min_slots` profile pieces; tiny groups stay
    scalar — the array round-trip would cost more than the loops it replaces.
    """
    global _last_used
    if _forced == "scalar":
        use_numpy = False
    elif _forced == "numpy":
        use_numpy = True
    else:
        use_numpy = (
            _np is not None
            and sum(len(offer.profile) for offer in group) >= effective_min_slots()
        )
    path = "numpy" if use_numpy else "scalar"
    implementation = profile_bounds_numpy if use_numpy else profile_bounds_scalar
    _last_used = path
    if not _OBS.enabled:
        return implementation(group, offsets, length)
    started = time.perf_counter()
    result = implementation(group, offsets, length)
    _KERNEL_SECONDS[path].observe(time.perf_counter() - started)
    _KERNEL_CALLS[path].inc()
    return result


# ----------------------------------------------------------------------
# Calibration: measure the scalar/numpy crossover on this machine
# ----------------------------------------------------------------------
class _ProbeOffer:
    """The minimal offer the kernels need: a frozen profile tuple."""

    __slots__ = ("profile",)

    def __init__(self, profile) -> None:
        self.profile = profile


def _probe_group(total_slots: int, pieces_per_offer: int = 16):
    """A synthetic group carrying ``total_slots`` single-slot profile pieces.

    Profiles are distinct per offer (values vary) so the numpy path's
    expansion cache behaves as in real populations: warm after the first
    pass over a group, per distinct profile.
    """
    from repro.flexoffer.model import ProfileSlice

    offers = []
    count = max(1, total_slots // pieces_per_offer)
    for index in range(count):
        profile = tuple(
            ProfileSlice(
                min_energy=0.1 + 0.01 * ((index + piece) % 7),
                max_energy=1.0 + 0.01 * ((index + piece) % 11),
                duration_slots=1,
            )
            for piece in range(pieces_per_offer)
        )
        offers.append(_ProbeOffer(profile))
    offsets = [0] * len(offers)
    return offers, offsets, pieces_per_offer


def calibrate(
    ladder: Sequence[int] = (16, 32, 64, 128, 256, 512, 1024),
    repeats: int = 5,
    install: bool = True,
) -> int:
    """Measure the scalar/numpy crossover and cache it as the dispatch threshold.

    For each candidate group size on ``ladder`` (total profile pieces), both
    kernels run ``repeats`` times over the same synthetic group — warmed
    first, so the numpy path's profile-expansion cache is in its steady state,
    exactly as it is for the live engines' repeated re-aggregations.  The
    crossover is the smallest ladder rung where the numpy median beats the
    scalar median; one rung past the end means numpy never won (the override
    then disables numpy dispatch for realistic group sizes rather than
    guessing).  With ``install=True`` (default) the result replaces the fixed
    :data:`NUMPY_MIN_SLOTS` via :func:`set_min_slots`; the return value is
    the measured threshold either way.

    Without numpy there is nothing to cross over: the current effective
    threshold is returned unchanged.
    """
    if _np is None:
        return effective_min_slots()
    if repeats < 1:
        raise AggregationError("repeats must be >= 1")
    crossover: int | None = None
    for total_slots in sorted(ladder):
        group, offsets, length = _probe_group(total_slots)
        timings: dict[str, float] = {}
        for mode in ("scalar", "numpy"):
            with force_kernel(mode):
                profile_bounds(group, offsets, length)  # warm caches untimed
                samples = []
                for _ in range(repeats):
                    started = time.perf_counter()
                    profile_bounds(group, offsets, length)
                    samples.append(time.perf_counter() - started)
            samples.sort()
            timings[mode] = samples[len(samples) // 2]
        if timings["numpy"] <= timings["scalar"]:
            crossover = total_slots
            break
    if crossover is None:
        # Numpy never won on the ladder: push the threshold past the largest
        # rung so realistic groups stay on the (faster-here) scalar loops.
        crossover = max(ladder) * 2
    if install:
        set_min_slots(crossover)
    return crossover

"""The profile-summation kernel behind :func:`~repro.aggregation.aggregate.aggregate_group`.

Summing the per-slot energy bounds of a flex-offer group is the hottest loop
of the whole system — the batch pipeline runs it for every group, and the
live engines run it for every re-aggregated chunk of every commit.  This
module provides two interchangeable implementations:

* :func:`profile_bounds_scalar` — the pure-Python reference (the seed code of
  ``aggregate_group``, unchanged), always available;
* :func:`profile_bounds_numpy` — a vectorized path that expands every
  offer's profile once into cached index/weight arrays and folds the whole
  group through :func:`numpy.bincount`, whose C accumulation loop releases
  the GIL — which is what lets the sharded engine's thread-pool commit
  fan-out buy real wall-clock (ROADMAP live item e).

**Bit-identity is part of the contract.**  ``bincount`` adds its weights in
input order, and the weights are concatenated offer-major exactly as the
scalar loops iterate, so every output slot sees the same IEEE-754 additions
in the same order: the two kernels agree bit for bit, not just within a
tolerance (property-tested in ``tests/test_aggregation.py``).

:func:`profile_bounds` dispatches: numpy when it is importable and the group
is big enough to amortize the array round-trip (``NUMPY_MIN_SLOTS``), the
scalar loops otherwise — so environments without numpy lose nothing but
speed.  Tests pin a path with :func:`force_kernel`.
"""

from __future__ import annotations

from contextlib import contextmanager
from functools import lru_cache
from typing import Iterator, Sequence, TYPE_CHECKING

from repro.errors import AggregationError

try:  # Optional dependency: every caller falls back to the scalar loops.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via monkeypatch in tests
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flexoffer.model import FlexOffer, ProfileSlice

#: Minimum total profile pieces in a group before the numpy path pays for
#: the Python->array round-trip (tiny groups stay on the scalar loops).
NUMPY_MIN_SLOTS = 128

#: Test hook: ``None`` auto-dispatches, ``"numpy"``/``"scalar"`` pin a path.
_forced: str | None = None

#: Which path the most recent :func:`profile_bounds` call took (debug/tests).
_last_used: str = ""


def numpy_available() -> bool:
    """Whether the vectorized path can run in this environment."""
    return _np is not None


def last_kernel_used() -> str:
    """The path the most recent dispatch took (``"numpy"``/``"scalar"``)."""
    return _last_used


@contextmanager
def force_kernel(mode: str | None) -> Iterator[None]:
    """Pin the kernel dispatch for the duration of the block (tests only)."""
    global _forced
    if mode not in (None, "numpy", "scalar"):
        raise AggregationError(f"unknown kernel mode {mode!r}")
    previous, _forced = _forced, mode
    try:
        yield
    finally:
        _forced = previous


def profile_bounds_scalar(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Summed per-slot (min, max) energy bounds — the pure-Python reference."""
    min_energy = [0.0] * length
    max_energy = [0.0] * length
    for offset, offer in zip(offsets, group):
        position = offset
        for piece in offer.profile:
            share_min = piece.min_energy / piece.duration_slots
            share_max = piece.max_energy / piece.duration_slots
            for extra in range(piece.duration_slots):
                min_energy[position + extra] += share_min
                max_energy[position + extra] += share_max
            position += piece.duration_slots
    return min_energy, max_energy


@lru_cache(maxsize=8192)
def _expanded_profile(profile: tuple["ProfileSlice", ...]):
    """One offer's profile expanded to (relative indices, min/max shares).

    Profiles are frozen tuples, so they key an LRU cache: the live engines
    re-aggregate the same offers commit after commit, and the expansion —
    the only per-piece Python loop left on the numpy path — is paid once
    per distinct profile, not once per commit.
    """
    indices: list[int] = []
    mins: list[float] = []
    maxs: list[float] = []
    position = 0
    for piece in profile:
        duration = piece.duration_slots
        # The share divisions happen here, in Python floats, exactly as the
        # scalar path computes them — the arrays only carry the results.
        share_min = piece.min_energy / duration
        share_max = piece.max_energy / duration
        indices.extend(range(position, position + duration))
        mins.extend([share_min] * duration)
        maxs.extend([share_max] * duration)
        position += duration
    return (
        _np.asarray(indices, dtype=_np.intp),
        _np.asarray(mins, dtype=_np.float64),
        _np.asarray(maxs, dtype=_np.float64),
    )


def profile_bounds_numpy(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Summed per-slot bounds via :func:`numpy.bincount` (bit-identical).

    ``bincount`` accumulates ``out[index[i]] += weight[i]`` strictly in input
    order; the index/weight arrays are concatenated offer-major, so repeated
    slots receive their additions in exactly the scalar loops' order.
    """
    if _np is None:
        raise AggregationError("the numpy kernel was requested but numpy is unavailable")
    index_parts = []
    min_parts = []
    max_parts = []
    for offset, offer in zip(offsets, group):
        indices, mins, maxs = _expanded_profile(offer.profile)
        index_parts.append(indices + offset if offset else indices)
        min_parts.append(mins)
        max_parts.append(maxs)
    indices = _np.concatenate(index_parts)
    min_energy = _np.bincount(
        indices, weights=_np.concatenate(min_parts), minlength=length
    )
    max_energy = _np.bincount(
        indices, weights=_np.concatenate(max_parts), minlength=length
    )
    return min_energy.tolist(), max_energy.tolist()


def profile_bounds(
    group: Sequence["FlexOffer"], offsets: Sequence[int], length: int
) -> tuple[list[float], list[float]]:
    """Dispatch to the numpy kernel or the scalar loops (identical outputs).

    Auto mode picks numpy when it is importable and the group carries at
    least ``NUMPY_MIN_SLOTS`` profile pieces; tiny groups stay scalar — the
    array round-trip would cost more than the loops it replaces.
    """
    global _last_used
    if _forced == "scalar":
        use_numpy = False
    elif _forced == "numpy":
        use_numpy = True
    else:
        use_numpy = (
            _np is not None
            and sum(len(offer.profile) for offer in group) >= NUMPY_MIN_SLOTS
        )
    if use_numpy:
        _last_used = "numpy"
        return profile_bounds_numpy(group, offsets, length)
    _last_used = "scalar"
    return profile_bounds_scalar(group, offsets, length)

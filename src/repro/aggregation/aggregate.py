"""N-to-1 aggregation of flex-offer groups.

The aggregation follows the *start-alignment* scheme of the MIRABEL
aggregation component: every constituent keeps a fixed offset relative to the
group anchor (the smallest earliest start), per-slot energy bounds are summed,
and the aggregate's time flexibility is the minimum flexibility of the group —
so any feasible schedule of the aggregate can always be disaggregated into
feasible schedules of the constituents.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.aggregation.grouping import group_offers
from repro.aggregation.kernel import profile_bounds
from repro.aggregation.parameters import AggregationParameters
from repro.errors import AggregationError
from repro.flexoffer.model import Direction, FlexOffer, ProfileSlice


def _common_attribute(values: Iterable[str]) -> str:
    """Return the shared attribute value or ``"mixed"`` when the group disagrees."""
    unique = {value for value in values}
    if len(unique) == 1:
        return next(iter(unique))
    return "mixed"


def aggregate_group(group: Sequence[FlexOffer], aggregate_id: int) -> FlexOffer:
    """Aggregate one group of flex-offers into a single aggregate flex-offer.

    Singleton groups go through the same path as larger ones: the result
    carries ``aggregate_id``, ``is_aggregate=True`` and a one-element
    ``constituent_ids``, so callers can always tell aggregates from raw
    offers.  (Callers that want to pass 1-offer groups through untouched —
    such as :func:`aggregate` — skip the call instead.)

    Raises :class:`~repro.errors.AggregationError` for empty groups or groups
    mixing consumption with production.
    """
    if not group:
        raise AggregationError("cannot aggregate an empty group")
    directions = {offer.direction for offer in group}
    if len(directions) > 1:
        raise AggregationError("cannot aggregate consumption and production offers together")
    direction: Direction = next(iter(directions))

    anchor = min(offer.earliest_start_slot for offer in group)
    offsets = [offer.earliest_start_slot - anchor for offer in group]
    length = max(
        offset + offer.profile_duration_slots for offset, offer in zip(offsets, group)
    )

    # The hot loop lives in the kernel: numpy when available and worthwhile,
    # the scalar reference otherwise — bit-identical either way.
    min_energy, max_energy = profile_bounds(group, offsets, length)

    profile = tuple(
        ProfileSlice(min_energy=min_energy[index], max_energy=max_energy[index])
        for index in range(length)
    )
    time_flexibility = min(offer.time_flexibility_slots for offer in group)

    return FlexOffer(
        id=aggregate_id,
        # Only singletons keep their prosumer: multi-offer aggregates must not
        # match per-entity warehouse queries, or the loading tab would count a
        # prosumer's energy twice (raw offers + the derived aggregate row).
        prosumer_id=group[0].prosumer_id if len(group) == 1 else 0,
        profile=profile,
        earliest_start_slot=anchor,
        latest_start_slot=anchor + time_flexibility,
        creation_time=min(offer.creation_time for offer in group),
        acceptance_deadline=min(offer.acceptance_deadline for offer in group),
        assignment_deadline=min(offer.assignment_deadline for offer in group),
        direction=direction,
        region=_common_attribute(offer.region for offer in group),
        city=_common_attribute(offer.city for offer in group),
        district=_common_attribute(offer.district for offer in group),
        grid_node=_common_attribute(offer.grid_node for offer in group),
        energy_type=_common_attribute(offer.energy_type for offer in group),
        prosumer_type=_common_attribute(offer.prosumer_type for offer in group),
        appliance_type=_common_attribute(offer.appliance_type for offer in group),
        price_per_kwh=sum(offer.price_per_kwh for offer in group) / len(group),
        is_aggregate=True,
        constituent_ids=tuple(offer.id for offer in group),
    )


class AggregationResult:
    """Outcome of aggregating a set of flex-offers.

    Keeps both the resulting offer list (aggregates plus untouched singletons)
    and the provenance mapping needed by disaggregation and by the tooltip
    view (Figure 10's dashed links from an aggregate to its constituents).
    """

    def __init__(self) -> None:
        self.offers: list[FlexOffer] = []
        self.constituents: dict[int, list[FlexOffer]] = {}

    @property
    def aggregates(self) -> list[FlexOffer]:
        """Only the offers that are true aggregates (more than one constituent)."""
        return [offer for offer in self.offers if offer.is_aggregate]

    def constituents_of(self, aggregate_id: int) -> list[FlexOffer]:
        """The original offers folded into aggregate ``aggregate_id`` (empty if none)."""
        return self.constituents.get(aggregate_id, [])


def aggregate(
    offers: Sequence[FlexOffer],
    parameters: AggregationParameters | None = None,
    id_offset: int = 1_000_000,
) -> AggregationResult:
    """Group and aggregate ``offers``.

    Aggregate ids are allocated from ``id_offset`` upwards so they never clash
    with the ids of raw offers loaded from the warehouse.
    """
    parameters = parameters or AggregationParameters()
    result = AggregationResult()
    next_id = id_offset
    for group in group_offers(offers, parameters):
        if len(group) == 1:
            result.offers.append(group[0])
            continue
        combined = aggregate_group(group, next_id)
        result.offers.append(combined)
        result.constituents[combined.id] = list(group)
        next_id += 1
    return result

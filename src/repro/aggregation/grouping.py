"""Grid-based grouping of flex-offers prior to aggregation.

Offers may only be aggregated together when they are "similar enough" that the
aggregate loses little flexibility.  The grid-based grouping of the MIRABEL
aggregation component bins offers by earliest start time and time flexibility
(window widths given by :class:`~repro.aggregation.parameters.AggregationParameters`);
each non-empty bin becomes one candidate group, optionally chopped into chunks
of ``max_group_size``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Sequence

from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOffer

#: A grouping key: (EST bin, TFT bin, direction or "").
GroupKey = tuple[int, int, str]


def cell_for(
    earliest_start_slot: int,
    time_flexibility_slots: int,
    direction_value: str,
    parameters: AggregationParameters,
) -> GroupKey:
    """The grid cell for raw offer components (the single binning formula).

    Callers that only have warehouse fact columns (the live warehouse's
    ``group_cell`` backfill) use this directly; :func:`group_key` is the
    offer-object convenience wrapper.
    """
    est_bin = earliest_start_slot // parameters.est_tolerance_slots
    tft_bin = time_flexibility_slots // parameters.time_flexibility_tolerance_slots
    direction = direction_value if parameters.separate_directions else ""
    return est_bin, tft_bin, direction


def group_key(offer: FlexOffer, parameters: AggregationParameters) -> GroupKey:
    """The grouping-grid cell an offer falls into."""
    return cell_for(
        offer.earliest_start_slot,
        offer.time_flexibility_slots,
        offer.direction.value,
        parameters,
    )


def chunk_group(members: Sequence[FlexOffer], max_group_size: int) -> list[list[FlexOffer]]:
    """Split one cell's members into aggregation chunks of ``max_group_size``.

    ``0`` means unlimited (one chunk).  Shared by the batch grouping and the
    live engine's per-cell commit so both paths chunk identically.
    """
    if max_group_size and len(members) > max_group_size:
        return [
            list(members[start : start + max_group_size])
            for start in range(0, len(members), max_group_size)
        ]
    return [list(members)]


def chunk_count(member_count: int, max_group_size: int) -> int:
    """How many chunks :func:`chunk_group` cuts ``member_count`` members into."""
    if member_count == 0:
        return 0
    if max_group_size <= 0:
        return 1
    return -(-member_count // max_group_size)


def chunk_assignment(member_ids: Sequence[int], offer_id: int, max_group_size: int) -> int:
    """The chunk index ``offer_id`` occupies within a cell's sorted membership.

    ``member_ids`` must be the cell's member ids in ascending order — the
    order both :func:`chunk_group` callers (batch grouping and the live
    engine's commit) chunk in, so this is *the* mapping from a member
    mutation to the one chunk it perturbs.  ``max_group_size == 0``
    (unlimited) always maps to chunk 0.
    """
    if max_group_size <= 0:
        return 0
    return bisect_left(member_ids, offer_id) // max_group_size


def chunks_from(member_ids: Sequence[int], offer_id: int, max_group_size: int) -> range:
    """Chunk indices perturbed when ``offer_id`` enters or leaves a cell.

    Inserting or withdrawing a member shifts the rank of every larger id, so
    chunk membership changes from the chunk containing the insertion point
    onwards; chunks before it keep their exact member list (the stability
    rule the live engine's chunk-granular dirty ledger relies on).
    ``member_ids`` is the *surviving* sorted membership — for an insert the
    id is already present, for a withdrawal ``bisect_left`` lands on the slot
    the id vacated, so one formula covers both.
    """
    total = chunk_count(len(member_ids), max_group_size)
    if max_group_size <= 0:
        return range(0, total)
    first = bisect_left(member_ids, offer_id) // max_group_size
    return range(min(first, total), total)


def group_offers(
    offers: Sequence[FlexOffer], parameters: AggregationParameters | None = None
) -> list[list[FlexOffer]]:
    """Partition ``offers`` into aggregation groups.

    Offers that are already aggregates are kept alone in their own group so
    that repeated aggregation never nests provenance more than one level deep
    (matching the tool, which distinguishes only aggregated vs non-aggregated
    offers by colour).
    """
    parameters = parameters or AggregationParameters()
    bins: dict[GroupKey, list[FlexOffer]] = {}
    singletons: list[list[FlexOffer]] = []
    for offer in offers:
        if offer.is_aggregate:
            singletons.append([offer])
            continue
        bins.setdefault(group_key(offer, parameters), []).append(offer)

    groups: list[list[FlexOffer]] = []
    for key in sorted(bins):
        groups.extend(chunk_group(bins[key], parameters.max_group_size))
    groups.extend(singletons)
    return groups


def reduction_ratio(original_count: int, aggregated_count: int) -> float:
    """How strongly aggregation reduced the number of on-screen objects.

    1.0 means no reduction; e.g. 4.0 means four times fewer objects.  Returns
    0.0 when there was nothing to aggregate.
    """
    if original_count == 0:
        return 0.0
    if aggregated_count == 0:
        return float(original_count)
    return original_count / aggregated_count

"""Grid-based grouping of flex-offers prior to aggregation.

Offers may only be aggregated together when they are "similar enough" that the
aggregate loses little flexibility.  The grid-based grouping of the MIRABEL
aggregation component bins offers by earliest start time and time flexibility
(window widths given by :class:`~repro.aggregation.parameters.AggregationParameters`);
each non-empty bin becomes one candidate group, optionally chopped into chunks
of ``max_group_size``.
"""

from __future__ import annotations

from typing import Sequence

from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOffer

#: A grouping key: (EST bin, TFT bin, direction or "").
GroupKey = tuple[int, int, str]


def group_key(offer: FlexOffer, parameters: AggregationParameters) -> GroupKey:
    """The grouping-grid cell an offer falls into."""
    est_bin = offer.earliest_start_slot // parameters.est_tolerance_slots
    tft_bin = offer.time_flexibility_slots // parameters.time_flexibility_tolerance_slots
    direction = offer.direction.value if parameters.separate_directions else ""
    return est_bin, tft_bin, direction


def group_offers(
    offers: Sequence[FlexOffer], parameters: AggregationParameters | None = None
) -> list[list[FlexOffer]]:
    """Partition ``offers`` into aggregation groups.

    Offers that are already aggregates are kept alone in their own group so
    that repeated aggregation never nests provenance more than one level deep
    (matching the tool, which distinguishes only aggregated vs non-aggregated
    offers by colour).
    """
    parameters = parameters or AggregationParameters()
    bins: dict[GroupKey, list[FlexOffer]] = {}
    singletons: list[list[FlexOffer]] = []
    for offer in offers:
        if offer.is_aggregate:
            singletons.append([offer])
            continue
        bins.setdefault(group_key(offer, parameters), []).append(offer)

    groups: list[list[FlexOffer]] = []
    for key in sorted(bins):
        members = bins[key]
        if parameters.max_group_size and len(members) > parameters.max_group_size:
            for start in range(0, len(members), parameters.max_group_size):
                groups.append(members[start : start + parameters.max_group_size])
        else:
            groups.append(members)
    groups.extend(singletons)
    return groups


def reduction_ratio(original_count: int, aggregated_count: int) -> float:
    """How strongly aggregation reduced the number of on-screen objects.

    1.0 means no reduction; e.g. 4.0 means four times fewer objects.  Returns
    0.0 when there was nothing to aggregate.
    """
    if original_count == 0:
        return 0.0
    if aggregated_count == 0:
        return float(original_count)
    return original_count / aggregated_count

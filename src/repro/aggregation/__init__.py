"""Flex-offer aggregation and disaggregation (MIRABEL-style, start-alignment scheme)."""

from repro.aggregation.aggregate import AggregationResult, aggregate, aggregate_group
from repro.aggregation.disaggregate import disaggregate, disaggregation_error
from repro.aggregation.grouping import (
    cell_for,
    chunk_assignment,
    chunk_count,
    chunk_group,
    chunks_from,
    group_key,
    group_offers,
    reduction_ratio,
)
from repro.aggregation.kernel import (
    force_kernel,
    numpy_available,
    profile_bounds,
    profile_bounds_numpy,
    profile_bounds_scalar,
)
from repro.aggregation.metrics import AggregationMetrics, evaluate
from repro.aggregation.parameters import AggregationParameters

__all__ = [
    "AggregationParameters",
    "group_offers",
    "group_key",
    "cell_for",
    "chunk_assignment",
    "chunk_count",
    "chunk_group",
    "chunks_from",
    "reduction_ratio",
    "force_kernel",
    "numpy_available",
    "profile_bounds",
    "profile_bounds_numpy",
    "profile_bounds_scalar",
    "aggregate",
    "aggregate_group",
    "AggregationResult",
    "disaggregate",
    "disaggregation_error",
    "AggregationMetrics",
    "evaluate",
]

"""Flex-offer aggregation and disaggregation (MIRABEL-style, start-alignment scheme)."""

from repro.aggregation.aggregate import AggregationResult, aggregate, aggregate_group
from repro.aggregation.disaggregate import disaggregate, disaggregation_error
from repro.aggregation.grouping import (
    cell_for,
    chunk_group,
    group_key,
    group_offers,
    reduction_ratio,
)
from repro.aggregation.metrics import AggregationMetrics, evaluate
from repro.aggregation.parameters import AggregationParameters

__all__ = [
    "AggregationParameters",
    "group_offers",
    "group_key",
    "cell_for",
    "chunk_group",
    "reduction_ratio",
    "aggregate",
    "aggregate_group",
    "AggregationResult",
    "disaggregate",
    "disaggregation_error",
    "AggregationMetrics",
    "evaluate",
]

"""Disaggregation: distributing an aggregate's schedule back to its constituents.

After the scheduler fixes a start time and per-slot energy amounts for an
aggregate flex-offer, the enterprise must send *flex-offer assignments* to the
individual prosumers (Section 2 of the paper).  Start-alignment aggregation
makes this sound: shifting the aggregate by ``delta`` slots shifts every
constituent by the same ``delta`` (which is within each constituent's
flexibility because the aggregate kept only the minimum flexibility), and the
per-slot energy surplus above the group minimum is shared proportionally to
each constituent's slack in that slot.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import DisaggregationError
from repro.flexoffer.model import FlexOffer, Schedule


def _per_slot_bounds(offer: FlexOffer) -> tuple[list[float], list[float]]:
    """Per-slot (min, max) energy of ``offer`` spread over slice durations."""
    minimums: list[float] = []
    maximums: list[float] = []
    for piece in offer.profile:
        for _ in range(piece.duration_slots):
            minimums.append(piece.min_energy / piece.duration_slots)
            maximums.append(piece.max_energy / piece.duration_slots)
    return minimums, maximums


def disaggregate(
    aggregate_offer: FlexOffer,
    constituents: Sequence[FlexOffer],
    schedule: Schedule | None = None,
) -> list[FlexOffer]:
    """Disaggregate ``aggregate_offer``'s schedule onto its constituents.

    Parameters
    ----------
    aggregate_offer:
        The aggregate produced by :func:`repro.aggregation.aggregate.aggregate_group`.
    constituents:
        The original flex-offers that were folded into the aggregate.
    schedule:
        The schedule to distribute; defaults to ``aggregate_offer.schedule``.

    Returns the constituents with their state set to *assigned* and a feasible
    schedule attached.  Raises :class:`DisaggregationError` when the aggregate
    has no schedule or the constituents do not match its provenance.
    """
    schedule = schedule if schedule is not None else aggregate_offer.schedule
    if schedule is None:
        raise DisaggregationError(f"aggregate {aggregate_offer.id} has no schedule to disaggregate")
    expected = set(aggregate_offer.constituent_ids)
    provided = {offer.id for offer in constituents}
    if expected and expected != provided:
        raise DisaggregationError(
            f"constituents {sorted(provided)} do not match aggregate provenance {sorted(expected)}"
        )

    delta = schedule.start_slot - aggregate_offer.earliest_start_slot
    anchor = aggregate_offer.earliest_start_slot

    # Aggregate per-slot scheduled amount and bounds (its slices are 1 slot wide).
    agg_min, agg_max = _per_slot_bounds(aggregate_offer)
    agg_scheduled = list(schedule.energy_per_slice)
    if len(agg_scheduled) != len(agg_min):
        raise DisaggregationError("schedule length does not match the aggregate profile")

    # Per-slot fraction of the available band that the scheduler used.
    fractions = []
    for low, high, value in zip(agg_min, agg_max, agg_scheduled):
        band = high - low
        fractions.append((value - low) / band if band > 1e-12 else 0.0)

    assigned: list[FlexOffer] = []
    for offer in constituents:
        offset = offer.earliest_start_slot - anchor
        start = offer.earliest_start_slot + delta
        piece_amounts: list[float] = []
        position = offset
        for piece in offer.profile:
            amount = 0.0
            for extra in range(piece.duration_slots):
                slot_index = position + extra
                fraction = fractions[slot_index] if 0 <= slot_index < len(fractions) else 0.0
                low = piece.min_energy / piece.duration_slots
                high = piece.max_energy / piece.duration_slots
                amount += low + fraction * (high - low)
            position += piece.duration_slots
            # Guard against floating point drift outside the slice band.
            amount = min(max(amount, piece.min_energy), piece.max_energy)
            piece_amounts.append(amount)
        assigned.append(offer.assign(Schedule(start_slot=start, energy_per_slice=tuple(piece_amounts))))
    return assigned


def disaggregation_error(
    aggregate_offer: FlexOffer, assigned_constituents: Sequence[FlexOffer]
) -> float:
    """Absolute energy difference between the aggregate schedule and the distributed schedules.

    Exactly zero would mean lossless disaggregation; small positive values stem
    from clamping constituent slices to their bounds.
    """
    if aggregate_offer.schedule is None:
        raise DisaggregationError("aggregate has no schedule")
    distributed = sum(offer.scheduled_energy for offer in assigned_constituents)
    return abs(aggregate_offer.schedule.total_energy - distributed)

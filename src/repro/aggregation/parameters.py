"""Aggregation parameters.

The visualization tool "allows interactive tuning values of the aggregation
parameters" (Section 4).  Following the MIRABEL aggregation work (Šikšnys,
Khalefa, Pedersen: *Aggregating and Disaggregating Flexibility Objects*,
SSDBM 2012), flex-offers are grouped before aggregation by similarity of their
**earliest start time (EST)** and their **time flexibility (TFT)**; the two
tolerances below are the widths of the grouping grid in those dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AggregationError


@dataclass(frozen=True)
class AggregationParameters:
    """Parameters of grid-based flex-offer grouping and aggregation.

    Parameters
    ----------
    est_tolerance_slots:
        Offers whose earliest start slots fall into the same window of this
        width may be aggregated together.  Larger values aggregate more
        aggressively but shift constituents further from their preferred start.
    time_flexibility_tolerance_slots:
        Offers whose start-time flexibilities fall into the same window of this
        width may be aggregated together.  Larger values lose more time
        flexibility (the aggregate keeps only the group's minimum flexibility).
    max_group_size:
        Upper bound on how many offers one aggregate may contain (0 = unlimited).
    separate_directions:
        Whether consumption and production offers are always kept apart
        (they are in MIRABEL, since they balance opposite sides of the grid).
    """

    est_tolerance_slots: int = 4
    time_flexibility_tolerance_slots: int = 4
    max_group_size: int = 0
    separate_directions: bool = True

    def __post_init__(self) -> None:
        if self.est_tolerance_slots < 1:
            raise AggregationError("est_tolerance_slots must be >= 1")
        if self.time_flexibility_tolerance_slots < 1:
            raise AggregationError("time_flexibility_tolerance_slots must be >= 1")
        if self.max_group_size < 0:
            raise AggregationError("max_group_size must be >= 0")

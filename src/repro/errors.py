"""Shared exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ValidationError(ReproError):
    """Raised when a domain object is constructed with inconsistent data.

    Examples: a flex-offer whose latest start time precedes its earliest start
    time, a profile slice whose minimum energy exceeds its maximum energy, or a
    schedule that does not fit inside the offered time flexibility.
    """


class TimeGridError(ReproError):
    """Raised for operations on incompatible or malformed time grids."""


class WarehouseError(ReproError):
    """Raised by the data-warehouse substitute (schema/table/query layer)."""


class UnknownColumnError(WarehouseError):
    """Raised when a query references a column that does not exist."""


class UnknownTableError(WarehouseError):
    """Raised when a schema lookup references a table that does not exist."""


class OlapError(ReproError):
    """Raised by the OLAP engine (dimensions, cube, measures, MDX parser)."""


class UnknownDimensionError(OlapError):
    """Raised when a query references a dimension the cube does not have."""


class UnknownMeasureError(OlapError):
    """Raised when a query references a measure the cube does not have."""


class MdxSyntaxError(OlapError):
    """Raised when an MDX-like query string cannot be parsed."""


class AggregationError(ReproError):
    """Raised by flex-offer aggregation / disaggregation."""


class DisaggregationError(AggregationError):
    """Raised when an aggregated schedule cannot be disaggregated."""


class SchedulingError(ReproError):
    """Raised by the balancing schedulers."""


class ForecastError(ReproError):
    """Raised by the forecasting models."""


class RenderError(ReproError):
    """Raised by the rendering substrate (scene graph, scales, backends)."""


class ViewError(ReproError):
    """Raised by the visualization views (basic, profile, map, pivot, ...)."""


class DataGenerationError(ReproError):
    """Raised by the synthetic scenario generators."""


class SessionError(ReproError):
    """Raised by the :class:`~repro.session.FlexSession` facade and query builder.

    Examples: executing a subscription against the read-only batch engine,
    requesting an unregistered view, or ingesting events into a backend that
    cannot accept them.
    """


class LiveEngineError(ReproError):
    """Raised by the event-driven live subsystem (event log, engine, warehouse).

    Examples: adding an offer id twice, withdrawing an unknown offer, or a
    state-change event that is infeasible for the current offer (assigning
    without a schedule).
    """


class ObservabilityError(ReproError):
    """Raised by the observability layer (:mod:`repro.obs`).

    Examples: registering the same metric name as two different kinds,
    decreasing a counter, or a histogram with non-increasing bucket
    boundaries.  Never raised from a disabled-mode fast path — misuse fails
    at instrument definition time, not in production hot loops.
    """


class ReadPathError(ReproError):
    """Raised by the versioned read path (:mod:`repro.readpath`).

    Examples: reading a snapshot version that was never published or has
    been evicted from the retention ring, or pinning an unknown version.
    """


class StoreError(ReproError):
    """Raised by the durability subsystem (:mod:`repro.store`).

    Examples: loading a checkpoint written by an unknown format version, a
    snapshot whose recorded aggregates disagree with its offer population, or
    a restored engine whose state fails the recovery equivalence check.
    """

"""Persisting the warehouse to and from a directory of CSV files.

The MIRABEL DW lives in PostgreSQL; the offline substitute persists each table
of the star schema as ``<table>.csv`` inside a directory.  Values are stored as
strings and coerced back to their declared types on load, which keeps the
format inspectable with any spreadsheet tool.
"""

from __future__ import annotations

from datetime import datetime
from pathlib import Path
from typing import Any, Callable

from repro.errors import WarehouseError
from repro.warehouse.schema import DIMENSION_TABLES, FACT_TABLES, StarSchema
from repro.warehouse.table import Table

_TIME_FORMAT = "%Y-%m-%d %H:%M:%S"

#: Column-level parsers applied when reading CSV back (strings otherwise).
_COLUMN_PARSERS: dict[str, Callable[[str], Any]] = {
    "slot": int,
    "year": int,
    "month": int,
    "day": int,
    "hour": int,
    "minute": int,
    "weekday": int,
    "geo_id": int,
    "prosumer_id": int,
    "entity_id": int,
    "offer_id": int,
    "slice_index": int,
    "earliest_start_slot": int,
    "latest_start_slot": int,
    "profile_slots": int,
    "time_flexibility_slots": int,
    "latitude": float,
    "longitude": float,
    "min_total_energy": float,
    "max_total_energy": float,
    "scheduled_energy": float,
    "price_per_kwh": float,
    "min_energy": float,
    "max_energy": float,
    "value": float,
    "renewable": lambda text: text == "True",
    "is_aggregate": lambda text: text == "True",
}

_DATETIME_COLUMNS = {"timestamp", "creation_time", "acceptance_deadline", "assignment_deadline"}
_NULLABLE_COLUMNS = {"scheduled_start_slot", "scheduled_energy"}


def _coerce(column: str, text: str) -> Any:
    """Coerce one stored cell (the single-cell face of :func:`_column_coercer`)."""
    coercer = _column_coercer(column)
    return coercer(text) if coercer is not None else text


def _column_coercer(column: str) -> Callable[[str], Any] | None:
    """A per-column coercion function, or ``None`` for plain string columns.

    Resolving the column's parsing rule *once* (instead of re-deciding per
    cell) lets :func:`load_schema` coerce whole columns in tight loops.
    """
    if column in _DATETIME_COLUMNS:
        # The stored format is ISO with a space separator, which the C-level
        # fromisoformat parses directly (an order of magnitude faster than
        # strptime — schema loads are the hot path of checkpoint restores).
        return lambda text: datetime.fromisoformat(text) if text else None
    if column == "scheduled_start_slot":
        return lambda text: None if text == "" else int(float(text))
    parser = _COLUMN_PARSERS.get(column)
    nullable = column in _NULLABLE_COLUMNS
    if parser is None and not nullable:
        return None

    def coerce(text: str) -> Any:
        if nullable and text == "":
            return None
        if parser is None:
            return text
        try:
            return parser(text)
        except ValueError:
            return text

    return coerce


def _missing_default(column: str) -> Any:
    """Backfill value for a column absent from an old dump.

    Typed columns default to ``None`` (an empty string would poison
    arithmetic and equality filters); plain string columns default to ``""``.
    """
    if column in _DATETIME_COLUMNS or column in _COLUMN_PARSERS or column in _NULLABLE_COLUMNS:
        return None
    return ""


def _format(value: Any) -> Any:
    if isinstance(value, datetime):
        return value.strftime(_TIME_FORMAT)
    if value is None:
        return ""
    return value


def save_schema(schema: StarSchema, directory: str | Path) -> list[Path]:
    """Write every table of ``schema`` as ``<directory>/<table>.csv``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written = []
    for name, table in schema.tables.items():
        formatted = Table(name, table.columns)
        for row in table.rows():
            formatted.append({column: _format(value) for column, value in row.items()})
        path = target / f"{name}.csv"
        path.write_text(formatted.to_csv(), encoding="utf-8")
        written.append(path)
    return written


def load_schema(directory: str | Path) -> StarSchema:
    """Rebuild a star schema from a directory written by :func:`save_schema`.

    Loading is column-wise: the CSV rows are transposed once, each column is
    coerced with its single resolved parser and the result is installed in
    bulk (:meth:`~repro.warehouse.table.Table.install_columns`) — no per-row
    dictionaries, no per-cell rule dispatch.  Restoring a checkpointed
    warehouse is bounded by this path, so it matters.
    """
    import csv as _csv

    source = Path(directory)
    if not source.is_dir():
        raise WarehouseError(f"{source} is not a directory")
    schema = StarSchema.empty()
    for name in {**DIMENSION_TABLES, **FACT_TABLES}:
        path = source / f"{name}.csv"
        if not path.exists():
            continue
        target = schema.table(name)
        with open(path, encoding="utf-8", newline="") as handle:
            reader = _csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration as exc:
                raise WarehouseError(f"{path} is empty") from exc
            rows = list(reader)
        data: dict[str, list[Any]] = {}
        for position, column in enumerate(header):
            values = [row[position] for row in rows]
            coercer = _column_coercer(column)
            data[column] = [coercer(value) for value in values] if coercer else values
        # Dumps written before a column existed load with an empty default, so
        # old warehouse directories stay readable after schema growth.
        for column in target.columns:
            if column not in data:
                data[column] = [_missing_default(column)] * len(rows)
        target.install_columns(data)
    return schema

"""In-memory substitute of the MIRABEL data warehouse (star schema + query API)."""

from repro.warehouse.loader import load_flex_offer, load_scenario, load_time_series
from repro.warehouse.persistence import load_schema, save_schema
from repro.warehouse.query import FlexOfferFilter, FlexOfferRepository, QueryResult
from repro.warehouse.schema import DIMENSION_TABLES, FACT_TABLES, StarSchema
from repro.warehouse.table import Table

__all__ = [
    "Table",
    "StarSchema",
    "DIMENSION_TABLES",
    "FACT_TABLES",
    "load_scenario",
    "load_flex_offer",
    "load_time_series",
    "FlexOfferFilter",
    "FlexOfferRepository",
    "QueryResult",
    "save_schema",
    "load_schema",
]

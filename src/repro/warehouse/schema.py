"""The MIRABEL DW star schema, as used by this reproduction.

The original tool reads flex-offers "from a database employing the MIRABEL DW
schema" (Siksnys, Thomsen, Pedersen: *MIRABEL DW*, DaWaK 2012).  The substitute
keeps the dimensional design — one fact table per subject (flex-offers, time
series) surrounded by conformed dimensions — but stores everything in
in-memory :class:`~repro.warehouse.table.Table` objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import UnknownTableError
from repro.warehouse.table import Table

#: Dimension tables and their columns.
DIMENSION_TABLES: dict[str, list[str]] = {
    "dim_time": [
        "slot",
        "timestamp",
        "date",
        "year",
        "month",
        "day",
        "hour",
        "minute",
        "weekday",
    ],
    "dim_geography": [
        "geo_id",
        "district",
        "city",
        "region",
        "country",
        "latitude",
        "longitude",
    ],
    "dim_grid_node": [
        "node_name",
        "kind",
        "parent_node",
        "district",
        "city",
        "region",
        "latitude",
        "longitude",
    ],
    "dim_energy_type": ["energy_type", "renewable"],
    "dim_prosumer": [
        "prosumer_id",
        "name",
        "prosumer_type",
        "district",
        "city",
        "region",
        "grid_node",
    ],
    "dim_appliance": ["appliance_type", "direction", "energy_type"],
    "dim_legal_entity": ["entity_id", "name", "kind"],
}

#: Fact tables and their columns.
FACT_TABLES: dict[str, list[str]] = {
    "fact_flexoffer": [
        "offer_id",
        "prosumer_id",
        "geo_id",
        "grid_node",
        "energy_type",
        "prosumer_type",
        "appliance_type",
        "state",
        "direction",
        "earliest_start_slot",
        "latest_start_slot",
        "profile_slots",
        "time_flexibility_slots",
        "min_total_energy",
        "max_total_energy",
        "scheduled_energy",
        "scheduled_start_slot",
        "price_per_kwh",
        "is_aggregate",
        # Aggregation grouping-grid cell key ("" when not maintained); filled
        # by the live warehouse so dirty-cell lookups are index hits.
        "group_cell",
        "creation_time",
        "acceptance_deadline",
        "assignment_deadline",
        "payload",
    ],
    "fact_timeseries": ["series_name", "kind", "slot", "value", "unit"],
    # Derived rows maintained by the live warehouse: engine aggregates are
    # mirrored here, NOT into fact_flexoffer, so queries over raw offers
    # never double-count energy with their derived aggregates.
    "fact_flexoffer_aggregate": [],  # filled in below: same columns as fact_flexoffer
    "fact_flexoffer_slice": [
        "offer_id",
        "slice_index",
        "min_energy",
        "max_energy",
        "scheduled_energy",
    ],
}

FACT_TABLES["fact_flexoffer_aggregate"] = list(FACT_TABLES["fact_flexoffer"])

#: Column dtypes per table (:data:`~repro.warehouse.table.COLUMN_DTYPES` keys).
#: Declared columns are numpy-array-backed when numpy is available; everything
#: else (strings, datetimes, nullable columns like ``scheduled_start_slot``)
#: stays a plain Python list.  A declared column that ever receives a
#: non-conforming cell silently demotes to a list, so these are hints, not
#: constraints — see the demotion contract in :mod:`repro.warehouse.table`.
_FACT_FLEXOFFER_DTYPES: dict[str, str] = {
    "offer_id": "int64",
    "prosumer_id": "int64",
    "geo_id": "int64",
    "earliest_start_slot": "int64",
    "latest_start_slot": "int64",
    "profile_slots": "int64",
    "time_flexibility_slots": "int64",
    "min_total_energy": "float64",
    "max_total_energy": "float64",
    "scheduled_energy": "float64",
    "price_per_kwh": "float64",
    "is_aggregate": "bool",
}

COLUMN_TYPES: dict[str, dict[str, str]] = {
    "dim_time": {
        "slot": "int64",
        "year": "int64",
        "month": "int64",
        "day": "int64",
        "hour": "int64",
        "minute": "int64",
        "weekday": "int64",
    },
    "dim_geography": {"geo_id": "int64", "latitude": "float64", "longitude": "float64"},
    "dim_grid_node": {"latitude": "float64", "longitude": "float64"},
    "dim_energy_type": {"renewable": "bool"},
    "dim_prosumer": {"prosumer_id": "int64"},
    "dim_legal_entity": {"entity_id": "int64"},
    "fact_flexoffer": dict(_FACT_FLEXOFFER_DTYPES),
    "fact_flexoffer_aggregate": dict(_FACT_FLEXOFFER_DTYPES),
    "fact_timeseries": {"slot": "int64", "value": "float64"},
    "fact_flexoffer_slice": {
        "offer_id": "int64",
        "slice_index": "int64",
        "min_energy": "float64",
        "max_energy": "float64",
    },
}


@dataclass
class StarSchema:
    """All dimension and fact tables of the warehouse."""

    tables: dict[str, Table] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "StarSchema":
        """Create a schema with every table declared but no rows."""
        tables = {}
        for name, columns in {**DIMENSION_TABLES, **FACT_TABLES}.items():
            tables[name] = Table(name, columns, dtypes=COLUMN_TYPES.get(name))
        return cls(tables=tables)

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self.tables[name]
        except KeyError as exc:
            raise UnknownTableError(f"schema has no table {name!r}") from exc

    @property
    def dimension_names(self) -> list[str]:
        """Names of the dimension tables present in the schema."""
        return [name for name in self.tables if name in DIMENSION_TABLES]

    @property
    def fact_names(self) -> list[str]:
        """Names of the fact tables present in the schema."""
        return [name for name in self.tables if name in FACT_TABLES]

    def row_counts(self) -> dict[str, int]:
        """Number of rows per table (useful in the loading tab and tests)."""
        return {name: len(table) for name, table in self.tables.items()}

"""Loading a synthetic scenario into the warehouse star schema.

This is the ETL step the MIRABEL pilot performs when smart-meter readings and
flex-offers arrive: dimensions are populated from the master data (geography,
grid topology, prosumers, energy types), and facts are populated from the
flex-offers and the time series.  The full flex-offer object is also kept as a
JSON payload column so detail views can reconstruct it losslessly.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.flexoffer.model import FlexOffer
from repro.flexoffer.serialization import flex_offer_to_dict
from repro.warehouse.schema import StarSchema

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps the module
    # importable without numpy: datagen and timeseries are numpy-native,
    # while warehouse loading itself only walks their objects)
    from repro.datagen.scenarios import Scenario
    from repro.timeseries.series import TimeSeries

#: Energy types considered renewable by the dim_energy_type dimension.
RENEWABLE_TYPES = {"hydro", "wind", "solar", "chp"}


def _load_time_dimension(schema: StarSchema, scenario: Scenario) -> None:
    table = schema.table("dim_time")
    for slot in scenario.horizon_slots:
        instant = scenario.grid.to_datetime(slot)
        table.append(
            {
                "slot": slot,
                "timestamp": instant,
                "date": instant.date().isoformat(),
                "year": instant.year,
                "month": instant.month,
                "day": instant.day,
                "hour": instant.hour,
                "minute": instant.minute,
                "weekday": instant.weekday(),
            }
        )


def _load_geography_dimension(schema: StarSchema, scenario: Scenario) -> dict[str, int]:
    table = schema.table("dim_geography")
    geo_ids: dict[str, int] = {}
    next_id = 1
    for district in scenario.geography.all_districts():
        geo_ids[district.name] = next_id
        table.append(
            {
                "geo_id": next_id,
                "district": district.name,
                "city": district.city,
                "region": district.region,
                "country": scenario.geography.country,
                "latitude": district.latitude,
                "longitude": district.longitude,
            }
        )
        next_id += 1
    return geo_ids


def _load_grid_dimension(schema: StarSchema, scenario: Scenario) -> None:
    table = schema.table("dim_grid_node")
    parents: dict[str, str] = {}
    for line in scenario.topology.lines:
        # Lines always point from the higher-voltage node to the lower one.
        parents.setdefault(line.target, line.source)
    for node in scenario.topology.nodes.values():
        table.append(
            {
                "node_name": node.name,
                "kind": node.kind.value,
                "parent_node": parents.get(node.name, ""),
                "district": node.district,
                "city": node.city,
                "region": node.region,
                "latitude": node.latitude,
                "longitude": node.longitude,
            }
        )


def _load_prosumer_dimension(schema: StarSchema, scenario: Scenario) -> None:
    prosumer_table = schema.table("dim_prosumer")
    entity_table = schema.table("dim_legal_entity")
    for prosumer in scenario.prosumers:
        prosumer_table.append(
            {
                "prosumer_id": prosumer.id,
                "name": prosumer.name,
                "prosumer_type": prosumer.type.value,
                "district": prosumer.district,
                "city": prosumer.city,
                "region": prosumer.region,
                "grid_node": prosumer.grid_node,
            }
        )
        entity_table.append(
            {"entity_id": prosumer.id, "name": prosumer.name, "kind": prosumer.type.value}
        )


def _load_type_dimensions(schema: StarSchema, scenario: Scenario) -> None:
    energy_table = schema.table("dim_energy_type")
    appliance_table = schema.table("dim_appliance")
    energy_types = sorted(
        {offer.energy_type for offer in scenario.flex_offers if offer.energy_type}
    )
    for energy_type in energy_types:
        energy_table.append(
            {"energy_type": energy_type, "renewable": energy_type in RENEWABLE_TYPES}
        )
    seen: set[str] = set()
    for offer in scenario.flex_offers:
        if offer.appliance_type and offer.appliance_type not in seen:
            seen.add(offer.appliance_type)
            appliance_table.append(
                {
                    "appliance_type": offer.appliance_type,
                    "direction": offer.direction.value,
                    "energy_type": offer.energy_type,
                }
            )


def load_flex_offer(
    schema: StarSchema,
    offer: FlexOffer,
    geo_ids: dict[str, int],
    group_cell: str = "",
    fact_table: str = "fact_flexoffer",
) -> None:
    """Insert one flex-offer into the fact tables.

    ``fact_table`` lets the live warehouse route derived aggregates into
    ``fact_flexoffer_aggregate`` (same columns) instead of the raw fact table.
    """
    fact = schema.table(fact_table)
    slices = schema.table("fact_flexoffer_slice")
    fact.append(
        {
            "offer_id": offer.id,
            "prosumer_id": offer.prosumer_id,
            "geo_id": geo_ids.get(offer.district, 0),
            "grid_node": offer.grid_node,
            "energy_type": offer.energy_type,
            "prosumer_type": offer.prosumer_type,
            "appliance_type": offer.appliance_type,
            "state": offer.state.value,
            "direction": offer.direction.value,
            "earliest_start_slot": offer.earliest_start_slot,
            "latest_start_slot": offer.latest_start_slot,
            "profile_slots": offer.profile_duration_slots,
            "time_flexibility_slots": offer.time_flexibility_slots,
            "min_total_energy": offer.min_total_energy,
            "max_total_energy": offer.max_total_energy,
            "scheduled_energy": offer.scheduled_energy,
            "scheduled_start_slot": offer.schedule.start_slot if offer.schedule else None,
            "price_per_kwh": offer.price_per_kwh,
            "is_aggregate": offer.is_aggregate,
            "group_cell": group_cell,
            "creation_time": offer.creation_time,
            "acceptance_deadline": offer.acceptance_deadline,
            "assignment_deadline": offer.assignment_deadline,
            "payload": json.dumps(flex_offer_to_dict(offer)),
        }
    )
    for index, piece in enumerate(offer.profile):
        scheduled = (
            offer.schedule.energy_per_slice[index] if offer.schedule is not None else None
        )
        slices.append(
            {
                "offer_id": offer.id,
                "slice_index": index,
                "min_energy": piece.min_energy,
                "max_energy": piece.max_energy,
                "scheduled_energy": scheduled,
            }
        )


def geography_ids(schema: StarSchema) -> dict[str, int]:
    """Rebuild the district -> geo_id mapping from a loaded geography dimension.

    :func:`load_scenario` builds this mapping internally and discards it; the
    live warehouse needs it again to insert facts for offers arriving as
    events after the initial load.
    """
    return {row["district"]: row["geo_id"] for row in schema.table("dim_geography").rows()}


def load_time_series(schema: StarSchema, series: TimeSeries, kind: str) -> None:
    """Insert one time series into ``fact_timeseries``."""
    table = schema.table("fact_timeseries")
    for slot, value in series.to_pairs():
        table.append(
            {
                "series_name": series.name,
                "kind": kind,
                "slot": slot,
                "value": value,
                "unit": series.unit,
            }
        )


def load_scenario(scenario: Scenario) -> StarSchema:
    """Load a full scenario into a fresh star schema and return it."""
    schema = StarSchema.empty()
    _load_time_dimension(schema, scenario)
    geo_ids = _load_geography_dimension(schema, scenario)
    _load_grid_dimension(schema, scenario)
    _load_prosumer_dimension(schema, scenario)
    _load_type_dimensions(schema, scenario)
    for offer in scenario.flex_offers:
        load_flex_offer(schema, offer, geo_ids)
    load_time_series(schema, scenario.base_demand, kind="base_demand")
    load_time_series(schema, scenario.res_production, kind="res_production")
    load_time_series(schema, scenario.spot_prices, kind="spot_price")
    return schema

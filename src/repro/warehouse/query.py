"""Query layer over the warehouse: the read path of the loading tab (Figure 7).

The tool's loading tab lets the analyst pick a *legal entity* (prosumer) and an
*absolute time interval* and then reads the matching flex-offers from the DW.
:class:`FlexOfferRepository` exposes exactly that operation, plus the
attribute-based filters required by Section 3 (geography, grid topology,
energy type, prosumer type, appliance type, state) and reconstruction of full
:class:`~repro.flexoffer.model.FlexOffer` objects from their stored payload.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime
from typing import TYPE_CHECKING, Any, Sequence

from repro.errors import WarehouseError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.serialization import flex_offer_from_dict
from repro.timeseries.grid import TimeGrid
from repro.warehouse.schema import StarSchema
from repro.warehouse.table import numpy_enabled

try:  # Optional dependency: the planner intersects with sets without it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

if TYPE_CHECKING:  # pragma: no cover - typing only; load_series imports the
    # numpy-native TimeSeries lazily at call time.
    from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class FlexOfferFilter:
    """A conjunctive filter over flex-offer facts.

    ``None`` fields do not constrain.  Time bounds are absolute instants; an
    offer matches when its feasible span ``[earliest start, latest end]``
    overlaps the requested interval — the same semantics the tool uses when an
    analyst selects "an absolute time interval, for which flex-offers need to
    be selected".
    """

    prosumer_ids: tuple[int, ...] | None = None
    regions: tuple[str, ...] | None = None
    cities: tuple[str, ...] | None = None
    districts: tuple[str, ...] | None = None
    grid_nodes: tuple[str, ...] | None = None
    energy_types: tuple[str, ...] | None = None
    prosumer_types: tuple[str, ...] | None = None
    appliance_types: tuple[str, ...] | None = None
    states: tuple[str, ...] | None = None
    interval_start: datetime | None = None
    interval_end: datetime | None = None
    only_aggregates: bool | None = None

    def describe(self) -> str:
        """Human-readable one-line description (shown in view tab titles)."""
        parts: list[str] = []
        if self.prosumer_ids:
            parts.append(f"prosumers={list(self.prosumer_ids)}")
        for label, values in (
            ("regions", self.regions),
            ("cities", self.cities),
            ("districts", self.districts),
            ("grid_nodes", self.grid_nodes),
            ("energy_types", self.energy_types),
            ("prosumer_types", self.prosumer_types),
            ("appliance_types", self.appliance_types),
            ("states", self.states),
        ):
            if values:
                parts.append(f"{label}={list(values)}")
        if self.interval_start or self.interval_end:
            parts.append(f"interval=[{self.interval_start} .. {self.interval_end}]")
        if self.only_aggregates is not None:
            parts.append(f"aggregates={self.only_aggregates}")
        return ", ".join(parts) if parts else "all flex-offers"


@dataclass
class QueryResult:
    """Result of a repository query: the offers plus bookkeeping metadata."""

    offers: list[FlexOffer]
    filter: FlexOfferFilter
    scanned_rows: int
    matched_rows: int

    def __len__(self) -> int:
        return len(self.offers)


#: fact_flexoffer columns the repository keeps hash indexes on.  ``prosumer_id``
#: serves the Figure 7 entity lookup and the live path's per-prosumer refresh,
#: ``offer_id`` the live warehouse's upsert/delete, ``group_cell`` the
#: dirty-cell lookups of the live aggregation engine, ``state`` /
#: ``grid_node`` the session query builder's most common filters, and
#: ``geo_id`` the geography pushdown (regions/cities/districts resolve to
#: geo ids through the dimension, then hit this index).
INDEXED_FACT_COLUMNS = ("prosumer_id", "offer_id", "group_cell", "state", "grid_node", "geo_id")

#: (indexed column, filter attribute) pairs :meth:`FlexOfferRepository.load`
#: can plan with: when the filter pins any of these, the candidate row set is
#: the intersection of the per-column index hits instead of a full scan.
PLANNABLE_FILTERS = (
    ("prosumer_id", "prosumer_ids"),
    ("grid_node", "grid_nodes"),
    ("state", "states"),
)

#: Geography filter attributes and the ``dim_geography`` column each resolves
#: through; all three push down onto the fact table's ``geo_id`` index.
GEO_FILTERS = (
    ("regions", "region"),
    ("cities", "city"),
    ("districts", "district"),
)


class FlexOfferRepository:
    """Read-side API over a loaded :class:`StarSchema`."""

    def __init__(self, schema: StarSchema, grid: TimeGrid) -> None:
        self.schema = schema
        self.grid = grid
        for table_name in ("fact_flexoffer", "fact_flexoffer_aggregate"):
            if table_name not in schema.tables:
                continue
            fact = schema.table(table_name)
            for column in INDEXED_FACT_COLUMNS:
                if column in fact.columns:
                    fact.create_index(column)

    # ------------------------------------------------------------------
    # Master data used by the loading tab's combo boxes
    # ------------------------------------------------------------------
    def legal_entities(self) -> list[dict[str, Any]]:
        """All legal entities (prosumers) the analyst can choose from."""
        return list(self.schema.table("dim_legal_entity").rows())

    def known_values(self, column: str) -> list[Any]:
        """Distinct values of a fact_flexoffer column (for filter pick lists)."""
        seen: list[Any] = []
        for value in self.schema.table("fact_flexoffer").values(column):
            if value not in seen:
                seen.append(value)
        return seen

    # ------------------------------------------------------------------
    # Main read operation
    # ------------------------------------------------------------------
    def _row_matches(self, row: dict[str, Any], query: FlexOfferFilter) -> bool:
        def in_or_none(value: Any, allowed: tuple | None) -> bool:
            return allowed is None or value in allowed

        checks = (
            in_or_none(row["prosumer_id"], query.prosumer_ids)
            and in_or_none(row["grid_node"], query.grid_nodes)
            and in_or_none(row["energy_type"], query.energy_types)
            and in_or_none(row["prosumer_type"], query.prosumer_types)
            and in_or_none(row["appliance_type"], query.appliance_types)
            and in_or_none(row["state"], query.states)
        )
        if not checks:
            return False
        if query.only_aggregates is not None and bool(row["is_aggregate"]) != query.only_aggregates:
            return False
        if query.regions or query.cities or query.districts:
            geo = self._geo_lookup()["by_id"].get(row["geo_id"])
            if geo is None:
                return False
            if query.regions is not None and geo["region"] not in query.regions:
                return False
            if query.cities is not None and geo["city"] not in query.cities:
                return False
            if query.districts is not None and geo["district"] not in query.districts:
                return False
        if query.interval_start is not None or query.interval_end is not None:
            earliest = self.grid.to_datetime(row["earliest_start_slot"])
            latest_end = self.grid.to_datetime(
                row["latest_start_slot"] + row["profile_slots"]
            )
            if query.interval_end is not None and earliest >= query.interval_end:
                return False
            if query.interval_start is not None and latest_end <= query.interval_start:
                return False
        return True

    def _geo_lookup(self) -> dict[str, dict]:
        """The cached two-way geography index.

        ``by_id`` maps geo_id -> dimension row (the row-match path);
        ``region``/``city``/``district`` each map an attribute value -> the
        set of geo ids carrying it (the pushdown path).  Rebuilt from scratch
        whenever the live warehouse appends a geography row (it deletes
        ``_geo_cache``).
        """
        if not hasattr(self, "_geo_cache"):
            by_id: dict[int, dict[str, Any]] = {}
            reverse: dict[str, dict[Any, set[int]]] = {
                column: {} for _, column in GEO_FILTERS
            }
            for row in self.schema.table("dim_geography").rows():
                by_id[row["geo_id"]] = row
                for _, column in GEO_FILTERS:
                    reverse[column].setdefault(row[column], set()).add(row["geo_id"])
            self._geo_cache = {"by_id": by_id, **reverse}
        return self._geo_cache

    def _plan_positions(self, fact, query: FlexOfferFilter) -> list[int] | None:
        """Candidate row positions from the hash indexes, or ``None`` to scan.

        Every plannable filter present in the query contributes the union of
        its per-value index hits; the candidate set is the intersection across
        filters (the filters are conjunctive), so e.g. ``states + grid_nodes``
        examines only rows satisfying both.  Geography filters participate by
        resolving their values to geo ids through the dimension and hitting
        the fact table's ``geo_id`` index.  With numpy available the
        intersection runs through ``np.intersect1d`` over int64 position
        arrays; the set-based fallback produces the identical sorted result.
        """
        groups: list[list[int]] = []
        for column, attribute in PLANNABLE_FILTERS:
            values = getattr(query, attribute)
            if values is None or column not in fact.indexed_columns:
                continue
            hits = [p for value in values for p in fact.lookup(column, value)]
            if not hits:
                return []
            groups.append(hits)
        if "geo_id" in fact.indexed_columns:
            for attribute, geo_column in GEO_FILTERS:
                values = getattr(query, attribute)
                if values is None:
                    continue
                ids_by_value = self._geo_lookup()[geo_column]
                geo_ids = {gid for value in values for gid in ids_by_value.get(value, ())}
                hits = [p for gid in geo_ids for p in fact.lookup("geo_id", gid)]
                if not hits:
                    return []
                groups.append(hits)
        if not groups:
            return None
        if numpy_enabled():
            # np.intersect1d returns sorted unique positions — the same
            # normal form as the set-based fallback's ``sorted(set & ...)``.
            result = _np.unique(_np.asarray(groups[0], dtype=_np.int64))
            for hits in groups[1:]:
                if result.size == 0:
                    break
                result = _np.intersect1d(result, _np.asarray(hits, dtype=_np.int64))
            return result.tolist()
        positions = set(groups[0])
        for hits in groups[1:]:
            positions &= set(hits)
        return sorted(positions)

    def load(self, query: FlexOfferFilter | None = None) -> QueryResult:
        """Load flex-offers matching ``query`` (all offers when ``None``).

        When the filter pins ``prosumer_ids``, ``grid_nodes``, ``states`` or
        a geography level (``regions``/``cities``/``districts``, pushed down
        through the geo dimension onto the ``geo_id`` index), only the
        candidate rows from the corresponding hash indexes are examined
        (intersected across filters) instead of scanning the whole fact
        table; the linear scan remains the fallback for every other filter
        shape.
        """
        query = query or FlexOfferFilter()
        fact = self.schema.table("fact_flexoffer")
        offers: list[FlexOffer] = []
        matched = 0
        positions = self._plan_positions(fact, query)
        if positions is not None:
            candidate_rows = (fact.row(position) for position in positions)
            scanned = len(positions)
        else:
            candidate_rows = fact.rows()
            scanned = len(fact)
        for row in candidate_rows:
            if not self._row_matches(row, query):
                continue
            matched += 1
            offers.append(flex_offer_from_dict(json.loads(row["payload"])))
        return QueryResult(offers=offers, filter=query, scanned_rows=scanned, matched_rows=matched)

    def offers_from_payloads(self, payloads) -> list[FlexOffer]:
        """Reconstruct full offers from stored JSON payload cells."""
        return [flex_offer_from_dict(json.loads(payload)) for payload in payloads]

    def load_aggregates(self) -> list[FlexOffer]:
        """The derived aggregates the live warehouse mirrors.

        These live in ``fact_flexoffer_aggregate``, separate from the raw
        offers, so :meth:`load` never mixes the two.  Empty for schemas
        persisted before the table existed.
        """
        if "fact_flexoffer_aggregate" not in self.schema.tables:
            return []
        return self.offers_from_payloads(
            self.schema.table("fact_flexoffer_aggregate").values("payload")
        )

    def load_by_offer_ids(self, offer_ids: Sequence[int]) -> list[FlexOffer]:
        """Resolve specific offer ids to full objects via the ``offer_id`` index.

        The live path (alert drill-down, change notifications) uses this to
        refresh exactly the touched offers without a fact-table scan.
        """
        fact = self.schema.table("fact_flexoffer")
        payloads = fact.column("payload")
        return self.offers_from_payloads(
            payloads[position]
            for offer_id in offer_ids
            for position in fact.lookup("offer_id", offer_id)
        )

    def load_for_entity(
        self, entity_id: int, start: datetime | None = None, end: datetime | None = None
    ) -> QueryResult:
        """The Figure 7 operation: offers of one legal entity in a time interval."""
        return self.load(
            FlexOfferFilter(prosumer_ids=(entity_id,), interval_start=start, interval_end=end)
        )

    # ------------------------------------------------------------------
    # Time-series read path
    # ------------------------------------------------------------------
    def load_series(self, kind: str) -> TimeSeries:
        """Reassemble one stored time series by its ``kind`` column."""
        from repro.timeseries.series import TimeSeries

        table = self.schema.table("fact_timeseries").where(kind=kind)
        if len(table) == 0:
            raise WarehouseError(f"no time series of kind {kind!r} is stored")
        pairs = list(zip(table.column("slot"), table.column("value")))
        name = table.column("series_name")[0]
        unit = table.column("unit")[0]
        series = TimeSeries.from_pairs(
            self.grid, [(int(s), float(v)) for s, v in pairs], name=name, unit=unit
        )
        return series

    # ------------------------------------------------------------------
    # Summary statistics (used by the loading tab and the dashboard)
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Row counts plus offer-state distribution of the whole warehouse."""
        fact = self.schema.table("fact_flexoffer")
        states: dict[str, int] = {}
        for state in fact.values("state"):
            states[state] = states.get(state, 0) + 1
        return {
            "row_counts": self.schema.row_counts(),
            "offer_count": len(fact),
            "states": states,
        }

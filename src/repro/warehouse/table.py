"""A small columnar table — the storage primitive of the warehouse substitute.

The MIRABEL tool reads flex-offers from a PostgreSQL database laid out as the
MIRABEL DW star schema.  Offline, this reproduction stores the same schema in
memory: each :class:`Table` keeps named columns as Python lists, supports
appending rows, predicate filtering, projection, sorting and simple
aggregation, and round-trips through CSV.  The goal is fidelity of the access
pattern (dimensional filtering and grouping), not database performance.
"""

from __future__ import annotations

import csv
import io
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import UnknownColumnError, WarehouseError


class Table:
    """A columnar table with named columns and optional hash indexes.

    The table is append-mostly; :meth:`delete_where` and :meth:`set_value`
    exist for the live warehouse's event-driven updates.  Secondary indexes map a
    column value to the list of row positions holding it, turning equality
    lookups into dict hits.  Appends maintain indexes incrementally.

    Deletes are *tombstoned*: :meth:`delete_where` only marks the row
    positions dead, which keeps every index valid (lookups skip tombstoned
    positions) and makes a delete O(matched rows) instead of O(table).  Once
    tombstones pile past :data:`COMPACT_MIN_TOMBSTONES` *and* half the
    physical rows, :meth:`compact` rewrites the columns — so the rewrite cost
    is amortized over the deletes that caused it.  Positions returned by
    :meth:`lookup` are *physical* and stay valid until the next compaction.
    """

    #: Tombstones needed before an automatic compaction is even considered.
    COMPACT_MIN_TOMBSTONES = 64
    #: Automatic compaction triggers once tombstones exceed this fraction of
    #: the physical rows (and the minimum above).
    COMPACT_FRACTION = 0.5

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        if len(set(columns)) != len(columns):
            raise WarehouseError(f"table {name!r} declares duplicate columns")
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        self._data: dict[str, list[Any]] = {column: [] for column in columns}
        #: column -> (value -> row positions); ``None`` marks a stale index.
        self._indexes: dict[str, dict[Any, list[int]] | None] = {}
        #: Physical positions of deleted-but-not-yet-compacted rows.
        self._tombstones: set[int] = set()

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _physical_len(self) -> int:
        return len(self._data[self.columns[0]]) if self.columns else 0

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one row given as a mapping; missing columns raise."""
        missing = [column for column in self.columns if column not in row]
        if missing:
            raise UnknownColumnError(f"row for table {self.name!r} misses columns {missing}")
        for column in self.columns:
            self._data[column].append(row[column])
        position = self._physical_len() - 1
        for column, index in self._indexes.items():
            if index is not None:
                index.setdefault(row[column], []).append(position)

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    def install_columns(self, data: Mapping[str, list[Any]]) -> None:
        """Replace the table contents with whole columns (bulk-load fast path).

        Every declared column must be present and all columns equal-length.
        The CSV loader uses this to skip per-row dict building and index
        upkeep entirely; indexes rebuild lazily on the next lookup.
        """
        missing = [column for column in self.columns if column not in data]
        if missing:
            raise UnknownColumnError(f"bulk load for table {self.name!r} misses columns {missing}")
        lengths = {len(data[column]) for column in self.columns}
        if len(lengths) > 1:
            raise WarehouseError(f"bulk load for table {self.name!r} has ragged columns")
        self._data = {column: list(data[column]) for column in self.columns}
        self._tombstones.clear()
        for indexed in self._indexes:
            self._indexes[indexed] = None

    def delete_where(self, column: str, value: Any) -> int:
        """Tombstone all rows whose ``column`` equals ``value``; returns the count.

        The rows only disappear logically; the physical rewrite happens in the
        (auto-triggered) :meth:`compact`, so repeated deletes on a large table
        stay amortized O(matched rows) rather than O(table) each.
        """
        positions = self.lookup(column, value)
        if not positions:
            return 0
        self._tombstones.update(positions)
        self._maybe_compact()
        return len(positions)

    @property
    def tombstone_count(self) -> int:
        """Rows deleted but not yet physically removed."""
        return len(self._tombstones)

    def _maybe_compact(self) -> None:
        if (
            len(self._tombstones) >= self.COMPACT_MIN_TOMBSTONES
            and len(self._tombstones) >= self._physical_len() * self.COMPACT_FRACTION
        ):
            self.compact()

    def compact(self) -> int:
        """Physically drop tombstoned rows; returns how many were removed.

        Indexes are invalidated (rebuilt lazily on the next lookup) because
        every physical position after the first tombstone shifts.
        """
        if not self._tombstones:
            return 0
        removed = len(self._tombstones)
        for name, values in self._data.items():
            self._data[name] = [v for i, v in enumerate(values) if i not in self._tombstones]
        self._tombstones.clear()
        for indexed in self._indexes:
            self._indexes[indexed] = None
        return removed

    def set_value(self, column: str, position: int, value: Any) -> None:
        """Overwrite one cell in place, keeping any index on ``column`` honest."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if not 0 <= position < self._physical_len():
            raise WarehouseError(f"row index {position} out of range for table {self.name!r}")
        self._data[column][position] = value
        self.invalidate_index(column)

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Declare a hash index on ``column`` (built lazily, maintained on append)."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        self._indexes.setdefault(column, None)

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Columns a hash index has been declared on."""
        return tuple(self._indexes)

    def invalidate_index(self, column: str) -> None:
        """Mark one index stale (callers that mutate column values in place)."""
        if column in self._indexes:
            self._indexes[column] = None

    def _index(self, column: str) -> dict[Any, list[int]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for position, value in enumerate(self._data[column]):
                if position not in self._tombstones:
                    index.setdefault(value, []).append(position)
            self._indexes[column] = index
        return index

    def lookup(self, column: str, value: Any) -> list[int]:
        """Physical positions of the *live* rows whose ``column`` equals ``value``.

        A dict hit when ``column`` is indexed; a linear scan otherwise (the
        fallback keeps the method usable on any column).  Tombstoned rows are
        skipped either way — incrementally maintained indexes may still hold
        their positions, so index hits are filtered against the tombstone set.
        """
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if column in self._indexes:
            hits = self._index(column).get(value, ())
            if not self._tombstones:
                return list(hits)
            return [p for p in hits if p not in self._tombstones]
        return [
            i
            for i, v in enumerate(self._data[column])
            if v == value and i not in self._tombstones
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* rows (tombstoned rows excluded)."""
        return self._physical_len() - len(self._tombstones)

    def live_positions(self) -> Iterator[int]:
        """The physical positions of the live rows, ascending."""
        if not self._tombstones:
            yield from range(self._physical_len())
            return
        for position in range(self._physical_len()):
            if position not in self._tombstones:
                yield position

    def column(self, name: str) -> list[Any]:
        """The *physical* value list of one column (the live list; do not mutate).

        Positions from :meth:`lookup` index into this list directly.  When the
        table holds tombstones the list still contains the dead rows' values —
        full iterations should use :meth:`values` (or :meth:`rows`) instead.
        """
        if name not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {name!r}")
        return self._data[name]

    def values(self, name: str) -> Iterator[Any]:
        """Iterate one column's live values (tombstoned rows skipped)."""
        column = self.column(name)
        for position in self.live_positions():
            yield column[position]

    def row(self, index: int) -> dict[str, Any]:
        """Return the row at *physical* position ``index`` as a dictionary."""
        if not 0 <= index < self._physical_len():
            raise WarehouseError(f"row index {index} out of range for table {self.name!r}")
        if index in self._tombstones:
            raise WarehouseError(f"row {index} of table {self.name!r} is deleted")
        return {column: self._data[column][index] for column in self.columns}

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over all live rows as dictionaries."""
        for index in self.live_positions():
            yield self.row(index)

    # ------------------------------------------------------------------
    # Relational-style operations (each returns a new table)
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Return a new table with the rows for which ``predicate`` is true."""
        result = Table(self.name, self.columns)
        for row in self.rows():
            if predicate(row):
                result.append(row)
        return result

    def where(self, **equals: Any) -> "Table":
        """Return rows whose columns equal the given values (conjunction).

        When one of the constrained columns is indexed, only the candidate
        rows from the index are examined; otherwise the full table is scanned.
        """
        for column in equals:
            if column not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        indexed = next((column for column in equals if column in self._indexes), None)
        if indexed is not None:
            result = Table(self.name, self.columns)
            for position in self.lookup(indexed, equals[indexed]):
                row = self.row(position)
                if all(row[column] == value for column, value in equals.items()):
                    result.append(row)
            return result
        return self.filter(lambda row: all(row[column] == value for column, value in equals.items()))

    def where_in(self, column: str, values: Iterable[Any]) -> "Table":
        """Return rows whose ``column`` value is in ``values``."""
        allowed = set(values)
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        return self.filter(lambda row: row[column] in allowed)

    def where_between(self, column: str, low: Any, high: Any) -> "Table":
        """Return rows whose ``column`` value lies in the closed interval [low, high]."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        return self.filter(lambda row: low <= row[column] <= high)

    def select(self, columns: Sequence[str]) -> "Table":
        """Project onto the given columns."""
        for column in columns:
            if column not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        result = Table(self.name, columns)
        for index in self.live_positions():
            result.append({column: self._data[column][index] for column in columns})
        return result

    def sort_by(self, column: str, reverse: bool = False) -> "Table":
        """Return a copy sorted by ``column``."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        order = sorted(self.live_positions(), key=lambda i: self._data[column][i], reverse=reverse)
        result = Table(self.name, self.columns)
        for index in order:
            result.append(self.row(index))
        return result

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Mapping[str, Callable[[list[dict[str, Any]]], Any]],
    ) -> "Table":
        """Group rows by ``keys`` and compute named aggregations per group.

        Each aggregation receives the list of row dictionaries of its group.
        The result table has the key columns followed by the aggregation names.
        """
        for key in keys:
            if key not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {key!r}")
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in self.rows():
            group_key = tuple(row[key] for key in keys)
            groups.setdefault(group_key, []).append(row)
        result = Table(f"{self.name}_grouped", list(keys) + list(aggregations))
        for group_key, group_rows in groups.items():
            out: dict[str, Any] = dict(zip(keys, group_key))
            for agg_name, agg_fn in aggregations.items():
                out[agg_name] = agg_fn(group_rows)
            result.append(out)
        return result

    def join(self, other: "Table", on: str, other_on: str | None = None, prefix: str = "") -> "Table":
        """Left-join ``other`` on equality of the key columns.

        Columns of ``other`` (except its key) are added, optionally prefixed to
        avoid collisions.  Unmatched rows keep ``None`` in the joined columns.
        """
        other_key = other_on or on
        if on not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {on!r}")
        if other_key not in other._data:
            raise UnknownColumnError(f"table {other.name!r} has no column {other_key!r}")
        lookup: dict[Any, dict[str, Any]] = {}
        for row in other.rows():
            lookup.setdefault(row[other_key], row)
        joined_columns = [c for c in other.columns if c != other_key]
        new_columns = list(self.columns) + [f"{prefix}{c}" for c in joined_columns]
        result = Table(f"{self.name}_join_{other.name}", new_columns)
        for row in self.rows():
            match = lookup.get(row[on])
            extra = {
                f"{prefix}{c}": (match[c] if match is not None else None) for c in joined_columns
            }
            result.append({**row, **extra})
        return result

    # ------------------------------------------------------------------
    # CSV round trip
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize the table to CSV (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows():
            writer.writerow([row[column] for column in self.columns])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, name: str, text: str) -> "Table":
        """Rebuild a table from :meth:`to_csv` output (all values are strings)."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration as exc:
            raise WarehouseError("CSV text is empty") from exc
        table = cls(name, header)
        for values in reader:
            table.append(dict(zip(header, values)))
        return table

"""A small columnar table — the storage primitive of the warehouse substitute.

The MIRABEL tool reads flex-offers from a PostgreSQL database laid out as the
MIRABEL DW star schema.  Offline, this reproduction stores the same schema in
memory: each :class:`Table` keeps named columns, supports appending rows,
predicate filtering, projection, sorting and simple aggregation, and
round-trips through CSV.  The goal is fidelity of the access pattern
(dimensional filtering and grouping) — but the storage layer now has to hold
100k+ flex-offers (ROADMAP's scale item), so columns are *typed*.

A column declared with a dtype (``"int64"``, ``"float64"`` or ``"bool"``) is
backed by a growable numpy array (:class:`ColumnArray`) instead of a Python
list.  Predicate evaluation over typed columns is vectorized: ``where``
becomes a conjunction of boolean masks, ``where_in`` an ``np.isin``,
``where_between`` a range mask, tombstone compaction a single fancy-index
pass.  Everything else — indexes, tombstones, row dictionaries — is
unchanged.

**Bit-identity is part of the contract** (mirroring
:mod:`repro.aggregation.kernel`'s dual-path design): list storage is the
specification, arrays are an internal representation.  A typed column only
holds cells whose array round-trip is exact (``type(cell)`` is exactly the
dtype's Python type and, for ``int64``, the value is in range); any other
cell *demotes* the column back to a plain list on the spot.  Reads always
return plain Python values (``ColumnArray`` indexing/iteration go through
``.item()``/``.tolist()``), so callers cannot observe numpy scalars.  When
numpy is absent — or a test pins the scalar path with :func:`force_backend`
— every column is a list and behavior is identical, just slower.
"""

from __future__ import annotations

import csv
import io
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator, Mapping, Sequence

from repro.errors import UnknownColumnError, WarehouseError

try:  # Optional dependency: every path falls back to plain lists.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

#: Declarable column dtypes -> the exact Python type a cell must have to be
#: storable in the typed array.  The check is strict on purpose (no int→float
#: coercion): only cells whose array round-trip is bit-identical go in.
COLUMN_DTYPES: dict[str, type] = {"int64": int, "float64": float, "bool": bool}

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Test hook: ``None`` auto-dispatches, ``"numpy"``/``"scalar"`` pin a path.
_forced: str | None = None


def numpy_enabled() -> bool:
    """True when typed columns may use numpy arrays (importable, not pinned off)."""
    if _forced == "scalar":
        return False
    if _forced == "numpy" and _np is None:
        raise WarehouseError("numpy backend forced but numpy is not importable")
    return _np is not None


@contextmanager
def force_backend(mode: str | None) -> Iterator[None]:
    """Pin the column backend to ``"numpy"`` or ``"scalar"`` within the block.

    Tables *created* under ``"scalar"`` store every column as a list; tables
    that already hold arrays keep them but stop taking vectorized paths, so
    both representations can be differenced against each other in tests.
    """
    global _forced
    if mode not in (None, "numpy", "scalar"):
        raise WarehouseError(f"unknown table backend {mode!r}")
    previous = _forced
    _forced = mode
    try:
        yield
    finally:
        _forced = previous


class _DemotionRequired(Exception):
    """Internal: a cell does not fit its column's dtype; fall back to a list."""


def _fits(dtype: str, value: Any) -> bool:
    """True when ``value`` round-trips exactly through an array of ``dtype``."""
    if type(value) is not COLUMN_DTYPES[dtype]:
        return False
    if dtype == "int64":
        return _INT64_MIN <= value <= _INT64_MAX
    return True


class ColumnArray:
    """A growable typed numpy column that reads back as plain Python values.

    Appends amortize O(1) via capacity doubling.  ``__getitem__``/``__iter__``
    convert through ``.item()``/``.tolist()`` so no numpy scalar ever leaks to
    a caller; :attr:`array` exposes the live slice for vectorized operators.
    A cell that does not fit the dtype raises :class:`_DemotionRequired`,
    which :class:`Table` answers by converting the column back to a list.
    """

    __slots__ = ("dtype", "_buffer", "_size")

    def __init__(self, dtype: str, values: Any = None) -> None:
        if dtype not in COLUMN_DTYPES:
            raise WarehouseError(f"unknown column dtype {dtype!r}")
        self.dtype = dtype
        if values is None:
            self._buffer = _np.empty(0, dtype=dtype)
            self._size = 0
        else:
            self._buffer = _np.array(values, dtype=dtype)
            self._size = len(self._buffer)

    @property
    def array(self) -> Any:
        """The live values as a numpy array view (no copy)."""
        return self._buffer[: self._size]

    def append(self, value: Any) -> None:
        if not _fits(self.dtype, value):
            raise _DemotionRequired
        if self._size == len(self._buffer):
            grown = _np.empty(max(8, 2 * len(self._buffer)), dtype=self.dtype)
            grown[: self._size] = self._buffer
            self._buffer = grown
        self._buffer[self._size] = value
        self._size += 1

    def take(self, positions: Any) -> "ColumnArray":
        """A new column holding the given physical positions (fancy index)."""
        index = _np.asarray(positions, dtype=_np.int64)
        return ColumnArray(self.dtype, self.array[index])

    def tolist(self) -> list[Any]:
        return self.array.tolist()

    def __len__(self) -> int:
        return self._size

    def __getitem__(self, index: Any) -> Any:
        if isinstance(index, slice):
            return self.array[index].tolist()
        return self.array[index].item()

    def __setitem__(self, index: int, value: Any) -> None:
        if not _fits(self.dtype, value):
            raise _DemotionRequired
        self.array[index] = value

    def __iter__(self) -> Iterator[Any]:
        return iter(self.array.tolist())

    def __eq__(self, other: Any) -> Any:
        if isinstance(other, ColumnArray):
            return self.tolist() == other.tolist()
        if isinstance(other, (list, tuple)):
            return self.tolist() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ColumnArray({self.dtype}, {self.tolist()!r})"


class Table:
    """A columnar table with named columns, optional dtypes and hash indexes.

    The table is append-mostly; :meth:`delete_where` and :meth:`set_value`
    exist for the live warehouse's event-driven updates.  Secondary indexes map a
    column value to the list of row positions holding it, turning equality
    lookups into dict hits.  Appends maintain indexes incrementally.

    Deletes are *tombstoned*: :meth:`delete_where` only marks the row
    positions dead, which keeps every index valid (lookups skip tombstoned
    positions) and makes a delete O(matched rows) instead of O(table).  Once
    tombstones pile past :data:`COMPACT_MIN_TOMBSTONES` *and* half the
    physical rows, :meth:`compact` rewrites the columns — so the rewrite cost
    is amortized over the deletes that caused it.  Positions returned by
    :meth:`lookup` are *physical* and stay valid until the next compaction.

    ``dtypes`` maps column names to :data:`COLUMN_DTYPES` keys; those columns
    are array-backed when numpy is available (see the module docstring for
    the demotion/bit-identity contract).  Tables built without dtypes — test
    tables, :meth:`from_csv`, ``group_by``/``join`` results — behave exactly
    as the seed's list-of-lists tables did.
    """

    #: Tombstones needed before an automatic compaction is even considered.
    COMPACT_MIN_TOMBSTONES = 64
    #: Automatic compaction triggers once tombstones exceed this fraction of
    #: the physical rows (and the minimum above).
    COMPACT_FRACTION = 0.5

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        dtypes: Mapping[str, str] | None = None,
    ) -> None:
        if len(set(columns)) != len(columns):
            raise WarehouseError(f"table {name!r} declares duplicate columns")
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        self.dtypes: dict[str, str] = {}
        for column, dtype in (dtypes or {}).items():
            if dtype not in COLUMN_DTYPES:
                raise WarehouseError(f"table {name!r}: unknown dtype {dtype!r} for {column!r}")
            if column in self.columns:
                self.dtypes[column] = dtype
        self._data: dict[str, Any] = {column: self._fresh_backing(column) for column in columns}
        #: column -> (value -> row positions); ``None`` marks a stale index.
        self._indexes: dict[str, dict[Any, list[int]] | None] = {}
        #: Physical positions of deleted-but-not-yet-compacted rows.
        self._tombstones: set[int] = set()

    def _fresh_backing(self, column: str) -> Any:
        dtype = self.dtypes.get(column)
        if dtype is not None and numpy_enabled():
            return ColumnArray(dtype)
        return []

    def _demote(self, column: str) -> list[Any]:
        """Convert one typed column back to a plain list (value did not fit)."""
        backing = self._data[column]
        if isinstance(backing, ColumnArray):
            backing = backing.tolist()
            self._data[column] = backing
        return backing

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _physical_len(self) -> int:
        return len(self._data[self.columns[0]]) if self.columns else 0

    def append(self, row: Mapping[str, Any]) -> None:
        """Append one row given as a mapping; missing columns raise."""
        missing = [column for column in self.columns if column not in row]
        if missing:
            raise UnknownColumnError(f"row for table {self.name!r} misses columns {missing}")
        for column in self.columns:
            try:
                self._data[column].append(row[column])
            except _DemotionRequired:
                self._demote(column).append(row[column])
        position = self._physical_len() - 1
        for column, index in self._indexes.items():
            if index is not None:
                index.setdefault(row[column], []).append(position)

    def extend(self, rows: Iterable[Mapping[str, Any]]) -> None:
        """Append many rows."""
        for row in rows:
            self.append(row)

    def install_columns(self, data: Mapping[str, Any]) -> None:
        """Replace the table contents with whole columns (bulk-load fast path).

        Every declared column must be present and all columns equal-length.
        The snapshot loaders use this to skip per-row dict building and index
        upkeep entirely; indexes rebuild lazily on the next lookup.  A typed
        column accepts a numpy array of the declared dtype directly (the
        binary snapshot reader's zero-parse path); lists are adopted as
        arrays when every cell fits, and kept as lists otherwise.
        """
        missing = [column for column in self.columns if column not in data]
        if missing:
            raise UnknownColumnError(f"bulk load for table {self.name!r} misses columns {missing}")
        lengths = {len(data[column]) for column in self.columns}
        if len(lengths) > 1:
            raise WarehouseError(f"bulk load for table {self.name!r} has ragged columns")
        self._data = {column: self._adopt_column(column, data[column]) for column in self.columns}
        self._tombstones.clear()
        for indexed in self._indexes:
            self._indexes[indexed] = None

    def _adopt_column(self, column: str, values: Any) -> Any:
        """Typed-array backing when possible, a plain list otherwise."""
        dtype = self.dtypes.get(column)
        if dtype is None or not numpy_enabled():
            return values.tolist() if isinstance(values, ColumnArray) else list(values)
        if isinstance(values, ColumnArray):
            if values.dtype == dtype:
                return ColumnArray(dtype, values.array)
            return values.tolist()
        if _np is not None and isinstance(values, _np.ndarray):
            if str(values.dtype) == dtype:
                return ColumnArray(dtype, values)
            return list(values.tolist())
        values = list(values)
        if all(_fits(dtype, value) for value in values):
            return ColumnArray(dtype, _np.array(values, dtype=dtype))
        return values

    def delete_where(self, column: str, value: Any) -> int:
        """Tombstone all rows whose ``column`` equals ``value``; returns the count.

        The rows only disappear logically; the physical rewrite happens in the
        (auto-triggered) :meth:`compact`, so repeated deletes on a large table
        stay amortized O(matched rows) rather than O(table) each.
        """
        positions = self.lookup(column, value)
        if not positions:
            return 0
        self._tombstones.update(positions)
        self._maybe_compact()
        return len(positions)

    @property
    def tombstone_count(self) -> int:
        """Rows deleted but not yet physically removed."""
        return len(self._tombstones)

    def _maybe_compact(self) -> None:
        if (
            len(self._tombstones) >= self.COMPACT_MIN_TOMBSTONES
            and len(self._tombstones) >= self._physical_len() * self.COMPACT_FRACTION
        ):
            self.compact()

    def compact(self) -> int:
        """Physically drop tombstoned rows; returns how many were removed.

        Typed columns compact in one fancy-index pass over the keep mask;
        list columns rebuild by comprehension.  Indexes are invalidated
        (rebuilt lazily on the next lookup) because every physical position
        after the first tombstone shifts.
        """
        if not self._tombstones:
            return 0
        removed = len(self._tombstones)
        if numpy_enabled() and any(isinstance(b, ColumnArray) for b in self._data.values()):
            keep = _np.ones(self._physical_len(), dtype=bool)
            keep[list(self._tombstones)] = False
            positions = _np.nonzero(keep)[0]
            survivors = positions.tolist()
            for name, backing in self._data.items():
                if isinstance(backing, ColumnArray):
                    self._data[name] = backing.take(positions)
                else:
                    self._data[name] = [backing[i] for i in survivors]
        else:
            for name, values in self._data.items():
                self._data[name] = [v for i, v in enumerate(values) if i not in self._tombstones]
        self._tombstones.clear()
        for indexed in self._indexes:
            self._indexes[indexed] = None
        return removed

    def set_value(self, column: str, position: int, value: Any) -> None:
        """Overwrite one cell in place, keeping any index on ``column`` honest."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if not 0 <= position < self._physical_len():
            raise WarehouseError(f"row index {position} out of range for table {self.name!r}")
        try:
            self._data[column][position] = value
        except _DemotionRequired:
            self._demote(column)[position] = value
        self.invalidate_index(column)

    # ------------------------------------------------------------------
    # Secondary indexes
    # ------------------------------------------------------------------
    def create_index(self, column: str) -> None:
        """Declare a hash index on ``column`` (built lazily, maintained on append)."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        self._indexes.setdefault(column, None)

    @property
    def indexed_columns(self) -> tuple[str, ...]:
        """Columns a hash index has been declared on."""
        return tuple(self._indexes)

    def invalidate_index(self, column: str) -> None:
        """Mark one index stale (callers that mutate column values in place)."""
        if column in self._indexes:
            self._indexes[column] = None

    def _index(self, column: str) -> dict[Any, list[int]]:
        index = self._indexes.get(column)
        if index is None:
            index = {}
            for position, value in enumerate(self._data[column]):
                if position not in self._tombstones:
                    index.setdefault(value, []).append(position)
            self._indexes[column] = index
        return index

    def lookup(self, column: str, value: Any) -> list[int]:
        """Physical positions of the *live* rows whose ``column`` equals ``value``.

        A dict hit when ``column`` is indexed; otherwise a vectorized equality
        scan on typed columns, a linear Python scan on the rest (the fallback
        keeps the method usable on any column).  Tombstoned rows are skipped
        either way — incrementally maintained indexes may still hold their
        positions, so index hits are filtered against the tombstone set.
        """
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if column in self._indexes:
            hits = self._index(column).get(value, ())
            if not self._tombstones:
                return list(hits)
            return [p for p in hits if p not in self._tombstones]
        backing = self._data[column]
        if isinstance(backing, ColumnArray) and numpy_enabled() and _fits(backing.dtype, value):
            hits = _np.nonzero(backing.array == value)[0].tolist()
            if not self._tombstones:
                return hits
            return [p for p in hits if p not in self._tombstones]
        return [
            i
            for i, v in enumerate(backing)
            if v == value and i not in self._tombstones
        ]

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of *live* rows (tombstoned rows excluded)."""
        return self._physical_len() - len(self._tombstones)

    def live_positions(self) -> Iterator[int]:
        """The physical positions of the live rows, ascending."""
        if not self._tombstones:
            yield from range(self._physical_len())
            return
        for position in range(self._physical_len()):
            if position not in self._tombstones:
                yield position

    def column(self, name: str) -> Any:
        """The *physical* backing of one column (the live storage; do not mutate).

        A plain list for untyped/demoted columns, a :class:`ColumnArray` for
        typed ones — both index and iterate as plain Python values, and
        positions from :meth:`lookup` index into them directly.  When the
        table holds tombstones the backing still contains the dead rows'
        values — full iterations should use :meth:`values` (or :meth:`rows`).
        """
        if name not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {name!r}")
        return self._data[name]

    def column_array(self, name: str) -> Any:
        """The live numpy view of a typed column, or ``None`` if list-backed.

        The binary snapshot writer uses this to dump raw column blocks
        without a per-cell Python loop.
        """
        backing = self.column(name)
        if isinstance(backing, ColumnArray):
            return backing.array
        return None

    def values(self, name: str) -> Iterator[Any]:
        """Iterate one column's live values (tombstoned rows skipped)."""
        column = self.column(name)
        for position in self.live_positions():
            yield column[position]

    def row(self, index: int) -> dict[str, Any]:
        """Return the row at *physical* position ``index`` as a dictionary."""
        if not 0 <= index < self._physical_len():
            raise WarehouseError(f"row index {index} out of range for table {self.name!r}")
        if index in self._tombstones:
            raise WarehouseError(f"row {index} of table {self.name!r} is deleted")
        return {column: self._data[column][index] for column in self.columns}

    def rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over all live rows as dictionaries."""
        for index in self.live_positions():
            yield self.row(index)

    # ------------------------------------------------------------------
    # Relational-style operations (each returns a new table)
    # ------------------------------------------------------------------
    def _subset(self, positions: Sequence[int], columns: Sequence[str] | None = None) -> "Table":
        """Bulk-build a new table from physical positions (dtype-preserving).

        Typed columns copy via one fancy-index pass instead of per-row
        appends; list columns copy by comprehension and stay lists.
        """
        columns = tuple(columns if columns is not None else self.columns)
        dtypes = {c: self.dtypes[c] for c in columns if c in self.dtypes}
        result = Table(self.name, columns, dtypes=dtypes)
        index = None
        if numpy_enabled() and any(isinstance(self._data[c], ColumnArray) for c in columns):
            index = _np.asarray(list(positions), dtype=_np.int64)
        for column in columns:
            backing = self._data[column]
            if isinstance(backing, ColumnArray) and index is not None:
                result._data[column] = backing.take(index)
            else:
                result._data[column] = [backing[p] for p in positions]
        return result

    def _mask_to_positions(self, mask: Any) -> list[int]:
        """Live physical positions from a boolean mask over physical rows."""
        if self._tombstones:
            mask[list(self._tombstones)] = False
        return _np.nonzero(mask)[0].tolist()

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "Table":
        """Return a new table with the rows for which ``predicate`` is true."""
        positions = [i for i in self.live_positions() if predicate(self.row(i))]
        return self._subset(positions)

    def where(self, **equals: Any) -> "Table":
        """Return rows whose columns equal the given values (conjunction).

        When every constrained column is array-backed the conjunction is one
        boolean-mask pass; when one is indexed, only the candidate rows from
        the index are examined; otherwise the full table is scanned.
        """
        for column in equals:
            if column not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        if (
            equals
            and numpy_enabled()
            and all(
                isinstance(self._data[c], ColumnArray) and _fits(self._data[c].dtype, v)
                for c, v in equals.items()
            )
        ):
            mask = _np.ones(self._physical_len(), dtype=bool)
            for column, value in equals.items():
                mask &= self._data[column].array == value
            return self._subset(self._mask_to_positions(mask))
        indexed = next((column for column in equals if column in self._indexes), None)
        if indexed is not None:
            positions = []
            for position in self.lookup(indexed, equals[indexed]):
                row = self.row(position)
                if all(row[column] == value for column, value in equals.items()):
                    positions.append(position)
            return self._subset(positions)
        return self.filter(
            lambda row: all(row[column] == value for column, value in equals.items())
        )

    def where_in(self, column: str, values: Iterable[Any]) -> "Table":
        """Return rows whose ``column`` value is in ``values``."""
        allowed = set(values)
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        backing = self._data[column]
        if (
            isinstance(backing, ColumnArray)
            and numpy_enabled()
            and all(_fits(backing.dtype, v) for v in allowed)
        ):
            if not allowed:
                return self._subset([])
            candidates = _np.array(list(allowed), dtype=backing.dtype)
            mask = _np.isin(backing.array, candidates)
            return self._subset(self._mask_to_positions(mask))
        return self.filter(lambda row: row[column] in allowed)

    def where_between(self, column: str, low: Any, high: Any) -> "Table":
        """Return rows whose ``column`` value lies in the closed interval [low, high]."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        backing = self._data[column]
        if (
            isinstance(backing, ColumnArray)
            and numpy_enabled()
            and _fits(backing.dtype, low)
            and _fits(backing.dtype, high)
        ):
            arr = backing.array
            mask = (arr >= low) & (arr <= high)
            return self._subset(self._mask_to_positions(mask))
        return self.filter(lambda row: low <= row[column] <= high)

    def select(self, columns: Sequence[str]) -> "Table":
        """Project onto the given columns."""
        for column in columns:
            if column not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        return self._subset(list(self.live_positions()), columns=columns)

    def sort_by(self, column: str, reverse: bool = False) -> "Table":
        """Return a copy sorted by ``column``."""
        if column not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {column!r}")
        backing = self._data[column]
        live = list(self.live_positions())
        if (
            isinstance(backing, ColumnArray)
            and numpy_enabled()
            and not reverse
            and not (backing.dtype == "float64" and bool(_np.isnan(backing.array).any()))
        ):
            sub = backing.array[_np.asarray(live, dtype=_np.int64)]
            order = _np.argsort(sub, kind="stable").tolist()
            return self._subset([live[i] for i in order])
        order = sorted(live, key=lambda i: backing[i], reverse=reverse)
        return self._subset(order)

    def group_by(
        self,
        keys: Sequence[str],
        aggregations: Mapping[str, Callable[[list[dict[str, Any]]], Any]],
    ) -> "Table":
        """Group rows by ``keys`` and compute named aggregations per group.

        Each aggregation receives the list of row dictionaries of its group.
        The result table has the key columns followed by the aggregation names.
        """
        for key in keys:
            if key not in self._data:
                raise UnknownColumnError(f"table {self.name!r} has no column {key!r}")
        groups: dict[tuple[Any, ...], list[dict[str, Any]]] = {}
        for row in self.rows():
            group_key = tuple(row[key] for key in keys)
            groups.setdefault(group_key, []).append(row)
        result = Table(f"{self.name}_grouped", list(keys) + list(aggregations))
        for group_key, group_rows in groups.items():
            out: dict[str, Any] = dict(zip(keys, group_key))
            for agg_name, agg_fn in aggregations.items():
                out[agg_name] = agg_fn(group_rows)
            result.append(out)
        return result

    def join(
        self, other: "Table", on: str, other_on: str | None = None, prefix: str = ""
    ) -> "Table":
        """Left-join ``other`` on equality of the key columns.

        Columns of ``other`` (except its key) are added, optionally prefixed to
        avoid collisions.  Unmatched rows keep ``None`` in the joined columns.
        """
        other_key = other_on or on
        if on not in self._data:
            raise UnknownColumnError(f"table {self.name!r} has no column {on!r}")
        if other_key not in other._data:
            raise UnknownColumnError(f"table {other.name!r} has no column {other_key!r}")
        lookup: dict[Any, dict[str, Any]] = {}
        for row in other.rows():
            lookup.setdefault(row[other_key], row)
        joined_columns = [c for c in other.columns if c != other_key]
        new_columns = list(self.columns) + [f"{prefix}{c}" for c in joined_columns]
        result = Table(f"{self.name}_join_{other.name}", new_columns)
        for row in self.rows():
            match = lookup.get(row[on])
            extra = {
                f"{prefix}{c}": (match[c] if match is not None else None) for c in joined_columns
            }
            result.append({**row, **extra})
        return result

    # ------------------------------------------------------------------
    # CSV round trip
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize the table to CSV (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows():
            writer.writerow([row[column] for column in self.columns])
        return buffer.getvalue()

    @classmethod
    def from_csv(cls, name: str, text: str) -> "Table":
        """Rebuild a table from :meth:`to_csv` output (all values are strings)."""
        reader = csv.reader(io.StringIO(text))
        try:
            header = next(reader)
        except StopIteration as exc:
            raise WarehouseError("CSV text is empty") from exc
        table = cls(name, header)
        for values in reader:
            table.append(dict(zip(header, values)))
        return table

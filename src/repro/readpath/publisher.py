"""``ReadPath`` — one engine's snapshot manager + result cache, wired together.

A live-family session backend owns exactly one :class:`ReadPath`.  The
engine's commit hook calls :meth:`on_commit` (on whatever thread commits —
the caller for live/sharded, the worker for async), which delta-builds the
next :class:`~repro.readpath.snapshot.AggregateSnapshot`, publishes it and
advances the cache.  Readers call :meth:`read` against any retained version,
lock-free with respect to commits.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.obs import get_registry
from repro.readpath.cache import ResultCache
from repro.readpath.manager import SnapshotManager
from repro.readpath.snapshot import AggregateSnapshot, SnapshotReader
from repro.session.query import execute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.aggregation.parameters import AggregationParameters
    from repro.live.engine import CommitResult
    from repro.session.spec import QuerySpec, ResultSet
    from repro.timeseries.grid import TimeGrid

_OBS = get_registry()
_SNAPSHOT_BUILD_SECONDS = _OBS.histogram(
    "repro.readpath.snapshot.build.seconds", "per-commit snapshot build latency"
)
_CACHE_LOOKUP_SECONDS = _OBS.histogram(
    "repro.readpath.cache.lookup.seconds", "result-cache probe latency"
)
_SNAPSHOT_VERSION = _OBS.gauge(
    "repro.readpath.snapshot.version", "latest published snapshot version"
)


class ReadPath:
    """Versioned snapshots + result cache for one session backend."""

    def __init__(
        self,
        grid: "TimeGrid",
        name: str,
        parameters: "AggregationParameters",
        retain: int = 8,
        cache_entries: int = 256,
    ) -> None:
        self.grid = grid
        self.name = name
        self.parameters = parameters
        self.manager = SnapshotManager(retain=retain)
        self.cache = ResultCache(max_entries=cache_entries)

    # ------------------------------------------------------------------
    # The write side (runs on the committing thread)
    # ------------------------------------------------------------------
    def seed(self, engine, version: int | None = None) -> AggregateSnapshot:
        """Publish a full baseline snapshot of the engine's committed state.

        Used at backend construction (version 0 over an empty engine) and
        after a checkpoint restore, where ``engine.commit_count`` carries the
        checkpoint's commit sequence so later commits continue it.
        """
        snapshot = AggregateSnapshot.capture(engine, self.grid, self.name, version)
        self.manager.publish(snapshot)
        self.cache.rebase(snapshot.version)
        _SNAPSHOT_VERSION.set(snapshot.version)
        return snapshot

    def on_commit(self, engine, result: "CommitResult") -> AggregateSnapshot:
        """Publish the post-commit version (delta over the previous snapshot)."""
        recording = _OBS.enabled
        started = time.perf_counter() if recording else 0.0
        previous = self.manager.latest()
        if previous is None:
            snapshot = AggregateSnapshot.capture(
                engine, self.grid, self.name, result.sequence
            )
            self.manager.publish(snapshot)
            self.cache.rebase(snapshot.version)
        else:
            snapshot = AggregateSnapshot.advance(previous, engine, result)
            self.manager.publish(snapshot)
            self.cache.advance(previous, snapshot, result)
        if recording:
            _SNAPSHOT_BUILD_SECONDS.observe(time.perf_counter() - started)
        _SNAPSHOT_VERSION.set(snapshot.version)
        return snapshot

    # ------------------------------------------------------------------
    # The read side (any thread)
    # ------------------------------------------------------------------
    def read(self, snapshot: AggregateSnapshot, spec: "QuerySpec") -> "ResultSet":
        """Serve one spec from one snapshot version, through the cache."""
        recording = _OBS.enabled
        probe_started = time.perf_counter() if recording else 0.0
        cached = self.cache.get(spec, snapshot.version)
        if recording:
            _CACHE_LOOKUP_SECONDS.observe(time.perf_counter() - probe_started)
        if cached is not None:
            return cached
        reader = SnapshotReader(snapshot, self.name)
        result = execute(reader, self.grid, spec)
        result.version = snapshot.version
        self.cache.put(spec, snapshot.version, result, reader.selected_ids)
        return result

"""The black-box concurrent-read checker (the SI-paper proof obligation).

Reader threads race a committing engine, and every read records a
``(version observed, canonical result)`` pair.  Afterwards the history is
verified against the retained snapshots, the way the snapshot-isolation
checker in PAPERS.md treats a database as a black box:

* **Atomicity** — every observed result must be *bit-identical* to a
  from-scratch execution of the same spec against the snapshot of the
  version it claims to have read.  A reader that saw half a commit (some
  cells from version ``v``, some from ``v+1``) cannot pass this, because no
  single committed snapshot produces its result.
* **Monotonic reads** — the versions one thread observes never decrease; a
  reader never travels back in time across its own reads.

Violations come back as human-readable strings (empty list = the history is
clean), so test failures say exactly which read tore.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.errors import ReadPathError
from repro.readpath.snapshot import SnapshotReader
from repro.session.query import execute

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.spec import QuerySpec, ResultSet


@dataclass(frozen=True)
class ReadObservation:
    """One recorded read: who read, in what order, and what they saw."""

    thread: int
    sequence: int
    version: int | None
    spec: "QuerySpec"
    canonical: Counter


@dataclass
class ReadHistory:
    """A thread-safe recorder of concurrent read observations."""

    observations: list[ReadObservation] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(
        self, thread: int, sequence: int, spec: "QuerySpec", result: "ResultSet"
    ) -> None:
        observation = ReadObservation(
            thread=thread,
            sequence=sequence,
            version=result.version,
            spec=spec,
            canonical=result.canonical(),
        )
        with self._lock:
            self.observations.append(observation)

    def __len__(self) -> int:
        return len(self.observations)


def run_concurrent_readers(
    session,
    specs: Sequence["QuerySpec"],
    threads: int = 4,
    reads_per_thread: int = 25,
    consistency: str = "latest",
) -> ReadHistory:
    """Spawn reader threads over ``session`` and record what each one saw.

    Readers use ``consistency="latest"`` by default — the lock-free mode that
    does *not* flush, so they genuinely race whatever is committing
    underneath (the async worker, or a writer thread driving a sync engine).
    """
    history = ReadHistory()
    errors: list[BaseException] = []

    def reader(thread_id: int) -> None:
        try:
            for index in range(reads_per_thread):
                spec = specs[(thread_id + index) % len(specs)]
                result = session.query(spec, consistency=consistency)
                history.record(thread_id, index, spec, result)
        except BaseException as exc:  # pragma: no cover - surfaced by caller
            errors.append(exc)

    workers = [
        threading.Thread(target=reader, args=(thread_id,), name=f"reader-{thread_id}")
        for thread_id in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    if errors:
        raise errors[0]
    return history


def verify_history(history: ReadHistory, backend) -> list[str]:
    """Check a recorded history for torn reads and time travel.

    ``backend`` is the live-family session backend the readers queried; its
    retained snapshots are the ground truth.  Reads whose version has been
    evicted from the ring are skipped for the atomicity check (raise the
    manager's ``retain`` in tests that want full coverage) but still count
    for monotonicity.
    """
    violations: list[str] = []
    readpath = backend.readpath
    verified: dict[tuple[int, "QuerySpec"], Counter] = {}
    for observation in history.observations:
        if observation.version is None:
            violations.append(
                f"thread {observation.thread} read #{observation.sequence} "
                "carried no snapshot version"
            )
            continue
        key = (observation.version, observation.spec)
        expected = verified.get(key)
        if expected is None:
            try:
                snapshot = readpath.manager.get(observation.version)
            except ReadPathError:
                continue  # evicted: unverifiable, not a violation
            reader = SnapshotReader(snapshot, backend.name)
            expected = execute(reader, readpath.grid, observation.spec).canonical()
            verified[key] = expected
        if observation.canonical != expected:
            violations.append(
                f"torn read: thread {observation.thread} read #{observation.sequence} "
                f"at version {observation.version} does not match that committed "
                "snapshot"
            )
    by_thread: dict[int, list[ReadObservation]] = {}
    for observation in history.observations:
        by_thread.setdefault(observation.thread, []).append(observation)
    for thread_id, observations in by_thread.items():
        observations.sort(key=lambda observation: observation.sequence)
        last: int | None = None
        for observation in observations:
            if observation.version is None:
                continue
            if last is not None and observation.version < last:
                violations.append(
                    f"time travel: thread {thread_id} read #{observation.sequence} "
                    f"went from version {last} back to {observation.version}"
                )
            last = observation.version
    return violations

"""Immutable, versioned aggregate snapshots of a live engine's committed state.

An :class:`AggregateSnapshot` is the read-side twin of one committed engine
state: the surviving raw offers per grid cell, the committed aggregation
outputs per cell, the passthrough aggregates and the provenance map — all
plain tuples and dicts, never mutated after construction, so any number of
reader threads can serve queries from it while the engine commits the next
version underneath.

Two constructors mirror the two ways versions are born:

* :meth:`AggregateSnapshot.capture` walks the whole committed state — used to
  seed version 0 at engine construction and to re-seed from a restored
  checkpoint (the version then continues the checkpoint's commit sequence).
* :meth:`AggregateSnapshot.advance` **shares structure** with the previous
  snapshot: only the cells a commit actually dirtied are re-read from the
  engine; every clean cell keeps the previous version's tuples.  Snapshot
  cost therefore tracks dirtiness — the same contract the chunk ledger gives
  commits — not table size.

Reads are index-backed: the first query constraining a value field builds a
per-field inverted index over the raw offers (lazily, once per snapshot,
under a snapshot-local lock), so ``scanned_rows`` reflects candidate pruning
exactly like the warehouse repository's hash indexes do.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.aggregation.aggregate import AggregationResult
from repro.aggregation.aggregate import aggregate as batch_aggregate
from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOffer
from repro.session.spec import VALUE_FIELDS, QuerySpec

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.live.engine import CommitResult
    from repro.timeseries.grid import TimeGrid

#: Spec value field -> extractor over one in-memory offer (the same mapping
#: :meth:`QuerySpec.matches` applies, factored out for index building).
_FIELD_GETTERS: dict[str, Callable[[FlexOffer], Any]] = {
    "prosumer_ids": lambda offer: offer.prosumer_id,
    "regions": lambda offer: offer.region,
    "cities": lambda offer: offer.city,
    "districts": lambda offer: offer.district,
    "grid_nodes": lambda offer: offer.grid_node,
    "energy_types": lambda offer: offer.energy_type,
    "prosumer_types": lambda offer: offer.prosumer_type,
    "appliance_types": lambda offer: offer.appliance_type,
    "states": lambda offer: offer.state.value,
}


class AggregateSnapshot:
    """One immutable, versioned view of a live engine's committed state.

    The offer/output containers are tuples shared freely between versions;
    the only mutable state is the lazily built read index, guarded by its own
    lock and itself write-once per field.
    """

    __slots__ = (
        "version",
        "name",
        "parameters",
        "grid",
        "id_offset",
        "offers_by_cell",
        "outputs_by_cell",
        "passthrough",
        "constituents",
        "_index_lock",
        "_indexes",
        "_raw",
        "_population_ids",
    )

    def __init__(
        self,
        version: int,
        name: str,
        parameters: AggregationParameters,
        grid: "TimeGrid",
        id_offset: int,
        offers_by_cell: dict[Any, tuple[FlexOffer, ...]],
        outputs_by_cell: dict[Any, tuple[FlexOffer, ...]],
        passthrough: dict[int, FlexOffer],
        constituents: dict[int, tuple[FlexOffer, ...]],
    ) -> None:
        self.version = version
        self.name = name
        self.parameters = parameters
        self.grid = grid
        self.id_offset = id_offset
        self.offers_by_cell = offers_by_cell
        self.outputs_by_cell = outputs_by_cell
        self.passthrough = passthrough
        self.constituents = constituents
        self._index_lock = threading.Lock()
        self._indexes: dict[str, dict[Any, list[FlexOffer]]] = {}
        self._raw: tuple[FlexOffer, ...] | None = None
        self._population_ids: frozenset[int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, engine, grid: "TimeGrid", name: str, version: int | None = None):
        """Full build from a (live or sharded) engine's committed state.

        ``version`` defaults to the engine's own commit sequence, so a
        snapshot seeded from a restored checkpoint continues the sequence the
        checkpoint recorded.
        """
        offers_by_cell: dict[Any, tuple[FlexOffer, ...]] = {}
        outputs_by_cell: dict[Any, tuple[FlexOffer, ...]] = {}
        for cell in engine.cells():
            members = engine.cell_members(cell)
            if members:
                offers_by_cell[cell] = tuple(members)
            outputs = engine.outputs_of_cell(cell)
            if outputs:
                outputs_by_cell[cell] = tuple(outputs)
        return cls(
            version=engine.commit_count if version is None else version,
            name=name,
            parameters=engine.parameters,
            grid=grid,
            id_offset=engine.id_offset,
            offers_by_cell=offers_by_cell,
            outputs_by_cell=outputs_by_cell,
            passthrough={offer.id: offer for offer in engine.passthrough_offers()},
            constituents={
                aggregate_id: tuple(group)
                for aggregate_id, group in engine.constituent_map().items()
            },
        )

    @classmethod
    def advance(cls, previous: "AggregateSnapshot", engine, result: "CommitResult"):
        """Delta build over ``previous``: re-read only the dirty cells.

        Clean cells share the previous snapshot's tuples untouched, so the
        build cost is proportional to the commit's dirty membership.  The
        passthrough dict is rebuilt whole — passthrough populations are tiny
        (input aggregates fed back in) and carry no cell structure to diff.
        """
        offers_by_cell = dict(previous.offers_by_cell)
        outputs_by_cell = dict(previous.outputs_by_cell)
        constituents = dict(previous.constituents)
        for cell in result.dirty_cells:
            for stale in outputs_by_cell.pop(cell, ()):
                constituents.pop(stale.id, None)
            members = engine.cell_members(cell)
            if members:
                offers_by_cell[cell] = tuple(members)
            else:
                offers_by_cell.pop(cell, None)
            outputs = engine.outputs_of_cell(cell)
            if outputs:
                outputs_by_cell[cell] = tuple(outputs)
                for offer in outputs:
                    group = engine.constituents_of(offer.id)
                    if group:
                        constituents[offer.id] = tuple(group)
        return cls(
            version=result.sequence,
            name=previous.name,
            parameters=previous.parameters,
            grid=previous.grid,
            id_offset=previous.id_offset,
            offers_by_cell=offers_by_cell,
            outputs_by_cell=outputs_by_cell,
            passthrough={offer.id: offer for offer in engine.passthrough_offers()},
            constituents=constituents,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def raw_offers(self) -> tuple[FlexOffer, ...]:
        """The surviving raw (non-aggregate) offers, sorted by id (cached)."""
        raw = self._raw
        if raw is None:
            with self._index_lock:
                raw = self._raw
                if raw is None:
                    combined = [
                        offer
                        for members in self.offers_by_cell.values()
                        for offer in members
                    ]
                    combined.sort(key=lambda offer: offer.id)
                    raw = self._raw = tuple(combined)
        return raw

    def offers(self) -> list[FlexOffer]:
        """The surviving population (passthrough aggregates included), id order."""
        combined = list(self.raw_offers()) + list(self.passthrough.values())
        return sorted(combined, key=lambda offer: offer.id)

    def population_ids(self) -> frozenset[int]:
        """Ids of the whole surviving population (cached)."""
        ids = self._population_ids
        if ids is None:
            ids = self._population_ids = frozenset(
                offer.id for offer in self.raw_offers()
            ) | frozenset(self.passthrough)
        return ids

    def aggregated_offers(self) -> list[FlexOffer]:
        """The committed aggregation output in the batch pipeline's layout:
        cells in sorted key order, passthrough aggregates last."""
        output: list[FlexOffer] = []
        for cell in sorted(self.outputs_by_cell):
            output.extend(self.outputs_by_cell[cell])
        output.extend(
            self.passthrough[offer_id] for offer_id in sorted(self.passthrough)
        )
        return output

    # ------------------------------------------------------------------
    # The backend read surface (select / aggregate / name), as execute() uses
    # ------------------------------------------------------------------
    def _index_for(self, field: str) -> dict[Any, list[FlexOffer]]:
        """The inverted index of one value field (built on first use)."""
        index = self._indexes.get(field)
        if index is None:
            # Resolve the raw tuple *before* taking the lock: raw_offers()
            # acquires the same (non-reentrant) lock on its cold path.
            raw = self.raw_offers()
            with self._index_lock:
                index = self._indexes.get(field)
                if index is None:
                    getter = _FIELD_GETTERS[field]
                    index = {}
                    for offer in raw:
                        index.setdefault(getter(offer), []).append(offer)
                    self._indexes[field] = index
        return index

    def select(self, spec: QuerySpec) -> tuple[list[FlexOffer], int]:
        """Spec filter over this version, with index-backed candidate pruning.

        Mirrors the live backend's plan shape: the most selective constrained
        value field supplies the candidate list (``scanned_rows`` counts it),
        candidates are verified with the spec's full in-memory predicate, and
        passthrough aggregates are matched separately.
        """
        constrained = [
            (field, allowed)
            for field in VALUE_FIELDS
            if (allowed := getattr(spec, field)) is not None
        ]
        if constrained:
            best: list[FlexOffer] | None = None
            for field, allowed in constrained:
                index = self._index_for(field)
                hits: list[FlexOffer] = []
                for value in allowed:
                    hits.extend(index.get(value, ()))
                if best is None or len(hits) < len(best):
                    best = hits
            candidates = best or []
        else:
            candidates = list(self.raw_offers())
        scanned = len(candidates)
        offers = [offer for offer in candidates if spec.matches(offer, self.grid)]
        passthroughs = [
            self.passthrough[offer_id] for offer_id in sorted(self.passthrough)
        ]
        scanned += len(passthroughs)
        offers.extend(
            offer for offer in passthroughs if spec.matches(offer, self.grid)
        )
        return offers, scanned

    def aggregate(
        self, offers: list[FlexOffer], parameters: AggregationParameters
    ) -> AggregationResult:
        """Serve aggregation from the committed outputs when possible.

        Same fast path as the live backend: the engine's own parameters over
        the whole surviving population return the committed outputs without
        recomputation; anything else runs the shared batch pipeline over the
        selection (with the engine's id offset, so chunking is identical).
        """
        if parameters == self.parameters and {
            offer.id for offer in offers
        } == self.population_ids():
            result = AggregationResult()
            result.offers = self.aggregated_offers()
            result.constituents = {
                aggregate_id: list(group)
                for aggregate_id, group in self.constituents.items()
            }
            return result
        return batch_aggregate(offers, parameters, id_offset=self.id_offset)


class SnapshotReader:
    """A per-query backend adapter over one snapshot.

    Satisfies the three calls :func:`repro.session.query.execute` makes —
    ``select``, ``aggregate``, ``name`` — and records the matched offer ids
    on the way through, which is exactly what the result cache needs to know
    for dirty-driven invalidation.  One instance per query, so recording is
    thread-safe without locks.
    """

    __slots__ = ("snapshot", "name", "selected_ids")

    def __init__(self, snapshot: AggregateSnapshot, name: str | None = None) -> None:
        self.snapshot = snapshot
        self.name = name or snapshot.name
        self.selected_ids: frozenset[int] = frozenset()

    def select(self, spec: QuerySpec) -> tuple[list[FlexOffer], int]:
        offers, scanned = self.snapshot.select(spec)
        self.selected_ids = frozenset(offer.id for offer in offers)
        return offers, scanned

    def aggregate(
        self, offers: list[FlexOffer], parameters: AggregationParameters
    ) -> AggregationResult:
        return self.snapshot.aggregate(offers, parameters)

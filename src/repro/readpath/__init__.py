"""``repro.readpath`` — versioned snapshots, result cache, concurrent reads.

The read side of the live engines, split off from their mutable state: every
commit publishes an immutable :class:`AggregateSnapshot` (version = the
commit sequence, structure shared with the previous version where the commit
skipped), a :class:`SnapshotManager` retains a bounded, pinnable ring of
them, and a :class:`ResultCache` memoizes ``ResultSet``s keyed on frozen
spec + version with invalidation driven by the commits' own dirty-cell
bookkeeping.  ``FlexSession.query()`` routes through the latest snapshot by
default, making reads lock-free while live/sharded/async engines commit
underneath; :mod:`repro.readpath.checker` proves it — recorded concurrent
histories are verified for atomicity (no torn commits) and monotonic reads.
"""

from repro.readpath.cache import ResultCache
from repro.readpath.checker import (
    ReadHistory,
    ReadObservation,
    run_concurrent_readers,
    verify_history,
)
from repro.readpath.manager import SnapshotManager
from repro.readpath.publisher import ReadPath
from repro.readpath.snapshot import AggregateSnapshot, SnapshotReader

__all__ = [
    "AggregateSnapshot",
    "ReadHistory",
    "ReadObservation",
    "ReadPath",
    "ResultCache",
    "SnapshotManager",
    "SnapshotReader",
    "run_concurrent_readers",
    "verify_history",
]

"""The bounded, refcount-pinned ring of published snapshot versions.

``latest()`` is the hot read: a single attribute load (atomic under the GIL),
so reader threads never contend with publication.  Everything else —
publication, historical lookup, pinning, eviction — goes through one small
lock; all of it is O(ring size), and the ring is bounded.

Eviction keeps at most ``retain`` versions, oldest first, but never evicts
the latest version or one a reader has pinned.  A pin can therefore hold the
ring above ``retain`` temporarily; the excess is reclaimed when the pin is
released.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReadPathError
from repro.obs import get_registry, get_tracer
from repro.readpath.snapshot import AggregateSnapshot

_OBS = get_registry()
_TRACER = get_tracer()
_VERSIONS_RETAINED = _OBS.gauge(
    "repro.readpath.snapshot.versions", "snapshot versions currently retained"
)
_SNAPSHOT_PINS = _OBS.counter(
    "repro.readpath.snapshot.pins", "reader pins taken on retained snapshot versions"
)
_SNAPSHOT_EVICTIONS = _OBS.counter(
    "repro.readpath.snapshot.evictions", "snapshot versions evicted from the ring"
)
_PIN_SECONDS = _OBS.histogram(
    "repro.readpath.pin.seconds", "how long readers hold snapshot pins"
)


class SnapshotManager:
    """Publishes, retains and pins immutable snapshot versions."""

    def __init__(self, retain: int = 8) -> None:
        if retain < 1:
            raise ReadPathError("retain must be >= 1")
        self.retain = retain
        self._lock = threading.Lock()
        #: version -> snapshot, in publication (and therefore version) order.
        self._snapshots: "OrderedDict[int, AggregateSnapshot]" = OrderedDict()
        #: version -> reader refcount; pinned versions survive eviction.
        self._pins: dict[int, int] = {}
        self._latest: AggregateSnapshot | None = None

    # ------------------------------------------------------------------
    # The lock-free hot read
    # ------------------------------------------------------------------
    def latest(self) -> AggregateSnapshot | None:
        """The newest published snapshot — one attribute load, no lock."""
        return self._latest

    @property
    def latest_version(self) -> int | None:
        snapshot = self._latest
        return None if snapshot is None else snapshot.version

    # ------------------------------------------------------------------
    # Publication and retention
    # ------------------------------------------------------------------
    def publish(self, snapshot: AggregateSnapshot) -> None:
        """Install a new version; it becomes ``latest()`` atomically."""
        with self._lock:
            latest = self._latest
            if latest is not None and snapshot.version <= latest.version:
                raise ReadPathError(
                    f"snapshot versions must increase: got {snapshot.version} "
                    f"after {latest.version}"
                )
            self._snapshots[snapshot.version] = snapshot
            self._latest = snapshot
            self._evict_locked()
            _VERSIONS_RETAINED.set(len(self._snapshots))

    def _evict_locked(self) -> None:
        while len(self._snapshots) > self.retain:
            for version in self._snapshots:
                if version in self._pins:
                    continue
                latest = self._latest
                if latest is not None and version == latest.version:
                    continue
                del self._snapshots[version]
                _SNAPSHOT_EVICTIONS.inc()
                break
            else:
                # Everything old is pinned; the ring stays oversized until
                # the pins are released.
                break

    # ------------------------------------------------------------------
    # Historical access
    # ------------------------------------------------------------------
    def get(self, version: int) -> AggregateSnapshot:
        """The snapshot at ``version``; raises when unknown or evicted."""
        with self._lock:
            snapshot = self._snapshots.get(version)
        if snapshot is None:
            raise ReadPathError(
                f"snapshot version {version} is not retained "
                f"(have {self.versions()})"
            )
        return snapshot

    def versions(self) -> tuple[int, ...]:
        """Every retained version, oldest first."""
        with self._lock:
            return tuple(self._snapshots)

    @contextmanager
    def pin(self, version: int) -> Iterator[AggregateSnapshot]:
        """Hold ``version`` in the ring for the duration of the block."""
        with self._lock:
            snapshot = self._snapshots.get(version)
            if snapshot is None:
                raise ReadPathError(f"cannot pin unknown snapshot version {version}")
            self._pins[version] = self._pins.get(version, 0) + 1
        _SNAPSHOT_PINS.inc()
        started = time.perf_counter()
        try:
            # The span covers the reader's whole pinned section.  Safe despite
            # this being a generator: ``contextmanager`` enters and exits it
            # synchronously on the with-block's own thread.
            with _TRACER.span("readpath.pin"):
                yield snapshot
        finally:
            if _OBS.enabled:
                _PIN_SECONDS.observe(time.perf_counter() - started)
            with self._lock:
                remaining = self._pins.get(version, 1) - 1
                if remaining <= 0:
                    self._pins.pop(version, None)
                else:
                    self._pins[version] = remaining
                self._evict_locked()
                _VERSIONS_RETAINED.set(len(self._snapshots))

    def pin_count(self, version: int) -> int:
        """Active reader pins on one version (0 when unpinned)."""
        with self._lock:
            return self._pins.get(version, 0)

"""The spec-keyed result cache over the versioned snapshot sequence.

Entries are keyed on the frozen :class:`~repro.session.spec.QuerySpec` and
valid for exactly one snapshot version at a time.  On every published commit
the cache *advances*: entries provably untouched by the commit are carried to
the new version (they stay hits), everything else is invalidated.

Invalidation is driven by the same dirty bookkeeping the engines already
maintain — no second change-tracking system:

* a commit's ``dirty_cells`` name every grid cell whose membership or
  content changed; an entry whose matched ids intersect the *previous*
  members of a dirty cell saw an offer change or leave;
* a *new* member of a dirty cell that matches the entry's spec means an
  offer entered the entry's result;
* changed/removed passthrough aggregates are checked the same two ways.

Anything else cannot alter the entry's selection, and aggregation is a
deterministic function of the selection — so carrying the entry is sound.
An entry over untouched cells therefore survives arbitrarily many commits as
a cache hit, which is what makes the concurrent read path pay off.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.live.engine import CommitResult
    from repro.readpath.snapshot import AggregateSnapshot
    from repro.session.spec import QuerySpec, ResultSet

_OBS = get_registry()
_TRACER = get_tracer()
_CACHE_HITS = _OBS.counter("repro.readpath.cache.hits", "result-cache hits")
_CACHE_MISSES = _OBS.counter("repro.readpath.cache.misses", "result-cache misses")
_CACHE_INVALIDATIONS = _OBS.counter(
    "repro.readpath.cache.invalidations", "entries dropped by commit invalidation"
)
_CACHE_ENTRIES = _OBS.gauge("repro.readpath.cache.entries", "live result-cache entries")
_CACHE_ADVANCE_SECONDS = _OBS.histogram(
    "repro.readpath.cache.advance.seconds",
    "per-commit cache advance latency (the invalidation scan)",
)
_CACHE_ADVANCE_SCANNED = _OBS.histogram(
    "repro.readpath.cache.advance.scanned", "entries examined per advance", COUNT_BUCKETS
)


class _CacheEntry:
    __slots__ = ("version", "result", "ids")

    def __init__(self, version: int, result: "ResultSet", ids: frozenset[int]) -> None:
        self.version = version
        self.result = result
        #: Ids the spec matched (pre-limit, passthroughs included) — the
        #: entry's read set, intersected against commit dirt on advance.
        self.ids = ids


class ResultCache:
    """LRU-bounded memo of ``ResultSet``s keyed on (spec, snapshot version).

    The plain integer counters are always maintained (they cost one add under
    a lock already being held) so hit ratios are measurable with
    observability disabled; the :mod:`repro.obs` instruments mirror them when
    the registry is enabled.
    """

    def __init__(self, max_entries: int = 256) -> None:
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[QuerySpec, _CacheEntry]" = OrderedDict()
        #: The version the cache is coherent with; puts at any other version
        #: are dropped (they raced a publication and would poison advance()).
        self._version = 0
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0
        self.carried = 0

    @property
    def version(self) -> int:
        return self._version

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # The read side
    # ------------------------------------------------------------------
    def get(self, spec: "QuerySpec", version: int) -> "ResultSet | None":
        with self._lock:
            entry = self._entries.get(spec)
            if entry is not None and entry.version == version:
                self._entries.move_to_end(spec)
                self.hits += 1
                if _OBS.enabled:
                    _CACHE_HITS.inc()
                return entry.result
            self.misses += 1
        if _OBS.enabled:
            _CACHE_MISSES.inc()
        return None

    def put(
        self,
        spec: "QuerySpec",
        version: int,
        result: "ResultSet",
        ids: frozenset[int],
    ) -> None:
        with self._lock:
            if version != self._version:
                # The fill raced a commit: the result is for a superseded
                # version and must not be carried forward by advance().
                return
            self._entries[spec] = _CacheEntry(version, result, ids)
            self._entries.move_to_end(spec)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            _CACHE_ENTRIES.set(len(self._entries))

    # ------------------------------------------------------------------
    # The commit side
    # ------------------------------------------------------------------
    def rebase(self, version: int) -> None:
        """Drop everything and align with ``version`` (seed / restore)."""
        with self._lock:
            self._entries.clear()
            self._version = version
            _CACHE_ENTRIES.set(0)

    def advance(
        self,
        previous: "AggregateSnapshot",
        snapshot: "AggregateSnapshot",
        result: "CommitResult",
    ) -> None:
        """Move to ``snapshot.version``: carry untouched entries, drop the rest."""
        if not _OBS.enabled:
            self._advance(previous, snapshot, result)
            return
        started = time.perf_counter()
        with _TRACER.span("readpath.cache.advance"):
            scanned = self._advance(previous, snapshot, result)
        _CACHE_ADVANCE_SECONDS.observe(time.perf_counter() - started)
        _CACHE_ADVANCE_SCANNED.observe(scanned)

    def _advance(
        self,
        previous: "AggregateSnapshot",
        snapshot: "AggregateSnapshot",
        result: "CommitResult",
    ) -> int:
        """The scan itself; returns how many entries it examined."""
        with self._lock:
            self._version = snapshot.version
            if not self._entries:
                return 0
            scanned = len(self._entries)
            dirty_prev_ids: set[int] = set()
            dirty_new: list = []
            for cell in result.dirty_cells:
                for offer in previous.offers_by_cell.get(cell, ()):
                    dirty_prev_ids.add(offer.id)
                dirty_new.extend(snapshot.offers_by_cell.get(cell, ()))
            passthrough_changed = [
                offer for offer in result.changed if offer.id in snapshot.passthrough
            ]
            passthrough_removed_ids = [
                offer.id for offer in result.removed if offer.id in previous.passthrough
            ]
            grid = snapshot.grid
            survivors: "OrderedDict[QuerySpec, _CacheEntry]" = OrderedDict()
            dropped = 0
            for spec, entry in self._entries.items():
                invalid = (
                    not dirty_prev_ids.isdisjoint(entry.ids)
                    or any(spec.matches(offer, grid) for offer in dirty_new)
                    or any(
                        offer.id in entry.ids or spec.matches(offer, grid)
                        for offer in passthrough_changed
                    )
                    or any(
                        offer_id in entry.ids for offer_id in passthrough_removed_ids
                    )
                )
                if invalid:
                    dropped += 1
                    continue
                entry.version = snapshot.version
                # Re-stamp the carried result too: it is provably identical at
                # the new version, and readers' observed versions must never
                # go backwards (the monotonic-reads half of the checker).
                entry.result.version = snapshot.version
                survivors[spec] = entry
            self._entries = survivors
            self.invalidations += dropped
            self.carried += len(survivors)
            if _OBS.enabled and dropped:
                _CACHE_INVALIDATIONS.inc(dropped)
            _CACHE_ENTRIES.set(len(survivors))
            return scanned

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Plain counters (always maintained, observability on or off)."""
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "version": self._version,
                "hits": self.hits,
                "misses": self.misses,
                "invalidations": self.invalidations,
                "evictions": self.evictions,
                "carried": self.carried,
                "hit_ratio": self.hits / total if total else 0.0,
            }

"""Monitoring extension (the paper's future work): alerts and the control-platform drill-down."""

from repro.monitoring.alerts import (
    Alert,
    AlertKind,
    AlertMonitor,
    AlertSeverity,
    AlertThresholds,
)
from repro.monitoring.platform import MonitoringPlatform, MonitoringReport

__all__ = [
    "Alert",
    "AlertKind",
    "AlertSeverity",
    "AlertThresholds",
    "AlertMonitor",
    "MonitoringPlatform",
    "MonitoringReport",
]

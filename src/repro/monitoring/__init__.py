"""Monitoring extension (the paper's future work): alerts and the control-platform drill-down.

The platform layer is re-exported lazily (PEP 562): it pulls in the
enterprise planning pipeline, which is numpy-native, while the alert rules
themselves are pure Python.  Lazy loading keeps the live subsystem (which
subscribes alert monitors to commit hubs) importable in the no-numpy CI leg.
"""

from repro.monitoring.alerts import (
    Alert,
    AlertKind,
    AlertMonitor,
    AlertSeverity,
    AlertThresholds,
)

_LAZY = {
    "MonitoringPlatform": "repro.monitoring.platform",
    "MonitoringReport": "repro.monitoring.platform",
}

__all__ = [
    "Alert",
    "AlertKind",
    "AlertSeverity",
    "AlertThresholds",
    "AlertMonitor",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(__all__)

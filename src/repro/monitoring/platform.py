"""The integrated planning-and-control monitoring platform.

The paper's future-work section sketches a platform that couples SCADA/ERP,
planning and bidding data, surfaces qualitative alerts and lets the operator
drill down to the underlying flex-offers.  :class:`MonitoringPlatform` is that
layer for this reproduction: it runs all alert rules over a scenario (and,
optionally, a finished planning cycle), groups alerts per region, and converts
any alert into the drill-down artefacts the views understand — the affected
flex-offers, a warehouse filter and a ready-to-render basic view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.enterprise.planning import PlanningReport
from repro.flexoffer.model import FlexOffer
from repro.monitoring.alerts import Alert, AlertKind, AlertMonitor, AlertSeverity, AlertThresholds
from repro.views.basic import BasicView
from repro.warehouse.query import FlexOfferFilter

if TYPE_CHECKING:  # pragma: no cover - typing only (datagen is numpy-native;
    # the platform just reads the scenario's series and offers)
    from repro.datagen.scenarios import Scenario


@dataclass
class MonitoringReport:
    """All alerts of one monitoring pass, with convenience accessors."""

    alerts: list[Alert] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.alerts)

    def by_kind(self, kind: AlertKind) -> list[Alert]:
        """Alerts of one kind."""
        return [alert for alert in self.alerts if alert.kind is kind]

    def by_severity(self, severity: AlertSeverity) -> list[Alert]:
        """Alerts of one severity."""
        return [alert for alert in self.alerts if alert.severity is severity]

    def worst(self) -> Alert | None:
        """The most severe (then most energetic) alert, or ``None``."""
        if not self.alerts:
            return None
        order = {AlertSeverity.CRITICAL: 2, AlertSeverity.WARNING: 1, AlertSeverity.INFO: 0}
        return max(self.alerts, key=lambda alert: (order[alert.severity], alert.energy_kwh))

    def summary_lines(self) -> list[str]:
        """One line per alert, most severe first (the operator's alert list)."""
        order = {AlertSeverity.CRITICAL: 2, AlertSeverity.WARNING: 1, AlertSeverity.INFO: 0}
        ordered = sorted(self.alerts, key=lambda alert: (order[alert.severity], alert.energy_kwh), reverse=True)
        return [alert.describe() for alert in ordered]


class MonitoringPlatform:
    """Runs the alert rules over a scenario and offers drill-down into the views."""

    def __init__(self, scenario: Scenario, thresholds: AlertThresholds | None = None) -> None:
        self.scenario = scenario
        self.monitor = AlertMonitor(scenario.grid, thresholds)

    # ------------------------------------------------------------------
    # Monitoring passes
    # ------------------------------------------------------------------
    def scan(self, per_region: bool = False) -> MonitoringReport:
        """Scan the scenario's forecasted situation for shortages and over-capacities.

        With ``per_region`` the demand and RES series are split proportionally
        to the regional share of flex-offers, producing regional alerts an
        operator can drill into on the map view.
        """
        report = MonitoringReport()
        offers = self.scenario.flex_offers
        report.alerts.extend(
            self.monitor.shortage_alerts(self.scenario.base_demand, self.scenario.res_production, offers)
        )
        report.alerts.extend(
            self.monitor.over_capacity_alerts(self.scenario.base_demand, self.scenario.res_production, offers)
        )
        report.alerts.extend(self.monitor.low_flexibility_alerts(offers))

        if per_region:
            total = max(len(offers), 1)
            for region in sorted({offer.region for offer in offers if offer.region}):
                regional_offers = [offer for offer in offers if offer.region == region]
                share = len(regional_offers) / total
                regional_demand = self.scenario.base_demand * share
                regional_res = self.scenario.res_production * share
                report.alerts.extend(
                    self.monitor.shortage_alerts(regional_demand, regional_res, regional_offers, region=region)
                )
                report.alerts.extend(
                    self.monitor.over_capacity_alerts(regional_demand, regional_res, regional_offers, region=region)
                )
        return report

    def scan_plan(self, plan: PlanningReport) -> MonitoringReport:
        """Scan a finished planning cycle: residual imbalances plus settlement deviations."""
        report = MonitoringReport()
        offers = plan.all_offers
        report.alerts.extend(
            self.monitor.shortage_alerts(
                self.scenario.base_demand + plan.planned_load, self.scenario.res_production, offers
            )
        )
        report.alerts.extend(
            self.monitor.plan_deviation_alerts(
                plan.settlement.planned_series, plan.settlement.realized_series, offers
            )
        )
        return report

    # ------------------------------------------------------------------
    # Live operation
    # ------------------------------------------------------------------
    def attach_live(self, hub, engine) -> "LiveAlertFeed":
        """Subscribe this platform's alert rules to a live engine's commits.

        Returns the :class:`~repro.live.subscriptions.LiveAlertFeed` that
        re-evaluates the rules over the fresh aggregate state after every
        commit that changed something (no-op commits skip the scan); the
        operator reads ``feed.current_alerts`` instead of re-running
        :meth:`scan` over a reloaded scenario.

        The hub must be the one the engine publishes to; an engine without a
        hub is adopted onto ``hub`` so the feed cannot be silently dead.
        """
        from repro.errors import LiveEngineError
        from repro.live.subscriptions import LiveAlertFeed

        if engine.hub is None:
            engine.hub = hub
        elif engine.hub is not hub:
            raise LiveEngineError(
                "attach_live: hub is not the engine's publishing hub; "
                "the alert feed would never be notified"
            )
        feed = LiveAlertFeed(self.monitor, engine)
        hub.subscribe(feed, name="monitoring-platform")
        return feed

    # ------------------------------------------------------------------
    # Drill-down (the "find out the reason behind it" part of the future work)
    # ------------------------------------------------------------------
    def offers_for(self, alert: Alert) -> list[FlexOffer]:
        """The flex-offers attached to an alert, resolved to full objects."""
        wanted = set(alert.offer_ids)
        return [offer for offer in self.scenario.flex_offers if offer.id in wanted]

    def warehouse_filter_for(self, alert: Alert) -> FlexOfferFilter:
        """A warehouse filter reproducing the alert's scope (region + time window)."""
        return FlexOfferFilter(
            regions=(alert.region,) if alert.region else None,
            interval_start=alert.start,
            interval_end=alert.end,
        )

    def drill_down_view(self, alert: Alert) -> BasicView:
        """A basic view over the alert's flex-offers (what the operator opens first)."""
        return BasicView(self.offers_for(alert), self.scenario.grid)

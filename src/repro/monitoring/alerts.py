"""Alerting on expected shortages and over-capacities.

The paper's future work describes "the integrated energy planning and control
platform offering high level qualitative information such as alerts about
expected shortages or over-capacities and an option to drill down data to find
out a reason behind this".  This module implements that layer on top of the
existing substrates: alert rules scan the forecast demand, the RES production
and the flexibility the collected flex-offers provide, and every raised alert
carries a *drill-down* — the time window, the geographic scope and the
flex-offers involved — that the views can open directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import TYPE_CHECKING, Sequence

from repro.flexoffer.flexibility import flexibility_envelope
from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid

if TYPE_CHECKING:  # pragma: no cover - typing only (TimeSeries is
    # numpy-native; alert rules only read the series passed to them)
    from repro.timeseries.series import TimeSeries


class AlertSeverity(str, Enum):
    """How urgent an alert is."""

    INFO = "info"
    WARNING = "warning"
    CRITICAL = "critical"


class AlertKind(str, Enum):
    """The situations the monitoring layer recognises."""

    #: Demand (base + minimum flexible) exceeds RES + market headroom.
    SHORTAGE = "shortage"
    #: RES production exceeds demand even when all flexibility is used.
    OVER_CAPACITY = "over_capacity"
    #: The physical realization deviates from the plan beyond a tolerance.
    PLAN_DEVIATION = "plan_deviation"
    #: Too little flexibility has been collected to balance the expected swing.
    LOW_FLEXIBILITY = "low_flexibility"


@dataclass(frozen=True)
class Alert:
    """One raised alert with its drill-down context."""

    kind: AlertKind
    severity: AlertSeverity
    message: str
    start: datetime
    end: datetime
    #: Slot range the alert covers.
    first_slot: int
    last_slot: int
    #: Magnitude of the problem in kWh over the window (positive).
    energy_kwh: float
    #: Region the alert is scoped to ("" = whole grid).
    region: str = ""
    #: Identifiers of the flex-offers that can help (or caused) the situation.
    offer_ids: tuple[int, ...] = field(default_factory=tuple)

    def describe(self) -> str:
        """One display line for dashboards and logs."""
        scope = self.region or "all regions"
        return (
            f"[{self.severity.value.upper()}] {self.kind.value}: {self.message} "
            f"({self.start:%H:%M}-{self.end:%H:%M}, {scope}, {self.energy_kwh:.0f} kWh)"
        )


@dataclass(frozen=True)
class AlertThresholds:
    """Tunable thresholds of the monitoring rules."""

    #: A shortage/over-capacity must exceed this energy per slot to be reported (kWh).
    minimum_slot_imbalance_kwh: float = 1.0
    #: Windows shorter than this many slots are ignored (transients).
    minimum_window_slots: int = 2
    #: Severity boundaries as fractions of the window's demand.
    warning_fraction: float = 0.10
    critical_fraction: float = 0.25
    #: Plan deviation above this fraction of the planned energy raises an alert.
    plan_deviation_fraction: float = 0.10
    #: Balancing potential below this value raises a low-flexibility alert.
    minimum_balancing_potential: float = 0.15


def _windows(mask: Sequence[bool], minimum_length: int) -> list[tuple[int, int]]:
    """Return half-open index windows where ``mask`` is contiguously true."""
    windows: list[tuple[int, int]] = []
    start: int | None = None
    for index, flag in enumerate(mask):
        if flag and start is None:
            start = index
        elif not flag and start is not None:
            if index - start >= minimum_length:
                windows.append((start, index))
            start = None
    if start is not None and len(mask) - start >= minimum_length:
        windows.append((start, len(mask)))
    return windows


class AlertMonitor:
    """Scans forecasts, plans and flex-offers for alert conditions."""

    def __init__(self, grid: TimeGrid, thresholds: AlertThresholds | None = None) -> None:
        self.grid = grid
        self.thresholds = thresholds or AlertThresholds()

    # ------------------------------------------------------------------
    # Individual rules
    # ------------------------------------------------------------------
    def shortage_alerts(
        self,
        demand: TimeSeries,
        res_production: TimeSeries,
        offers: Sequence[FlexOffer],
        region: str = "",
    ) -> list[Alert]:
        """Expected shortages: demand exceeds RES production even after shifting.

        The rule compares the non-flexible demand against RES production; slots
        where the deficit exceeds the threshold and persists for the minimum
        window form one alert each.  Flex-offers whose feasible span overlaps
        the window are attached for drill-down (they are the shiftable loads an
        operator would move away from the shortage).
        """
        thresholds = self.thresholds
        deficit = demand - res_production
        mask = [value > thresholds.minimum_slot_imbalance_kwh for value in deficit.values]
        alerts = []
        for start_index, end_index in _windows(mask, thresholds.minimum_window_slots):
            first_slot = deficit.start_slot + start_index
            last_slot = deficit.start_slot + end_index
            energy = float(deficit.values[start_index:end_index].sum())
            window_demand = float(demand.slice_slots(first_slot, last_slot).total())
            severity = self._severity(energy, window_demand)
            involved = _overlapping_offers(offers, first_slot, last_slot)
            alerts.append(
                Alert(
                    kind=AlertKind.SHORTAGE,
                    severity=severity,
                    message="expected electricity shortage (demand exceeds RES production)",
                    start=self.grid.to_datetime(first_slot),
                    end=self.grid.to_datetime(last_slot),
                    first_slot=first_slot,
                    last_slot=last_slot,
                    energy_kwh=energy,
                    region=region,
                    offer_ids=involved,
                )
            )
        return alerts

    def over_capacity_alerts(
        self,
        demand: TimeSeries,
        res_production: TimeSeries,
        offers: Sequence[FlexOffer],
        region: str = "",
    ) -> list[Alert]:
        """Expected over-capacities: RES production exceeds even the maximum flexible demand."""
        thresholds = self.thresholds
        _, high_envelope = flexibility_envelope(list(offers), self.grid)
        absorbable = demand + high_envelope.slice_slots(demand.start_slot, demand.end_slot)
        surplus = res_production - absorbable
        mask = [value > thresholds.minimum_slot_imbalance_kwh for value in surplus.values]
        alerts = []
        for start_index, end_index in _windows(mask, thresholds.minimum_window_slots):
            first_slot = surplus.start_slot + start_index
            last_slot = surplus.start_slot + end_index
            energy = float(surplus.values[start_index:end_index].sum())
            window_res = float(res_production.slice_slots(first_slot, last_slot).total())
            severity = self._severity(energy, window_res)
            involved = _overlapping_offers(offers, first_slot, last_slot)
            alerts.append(
                Alert(
                    kind=AlertKind.OVER_CAPACITY,
                    severity=severity,
                    message="expected over-capacity (RES production exceeds absorbable demand)",
                    start=self.grid.to_datetime(first_slot),
                    end=self.grid.to_datetime(last_slot),
                    first_slot=first_slot,
                    last_slot=last_slot,
                    energy_kwh=energy,
                    region=region,
                    offer_ids=involved,
                )
            )
        return alerts

    def plan_deviation_alerts(
        self, planned: TimeSeries, realized: TimeSeries, offers: Sequence[FlexOffer] = ()
    ) -> list[Alert]:
        """Settlement-time alerts: the realization deviates substantially from the plan."""
        thresholds = self.thresholds
        deviation = (planned - realized).absolute()
        total_planned = planned.absolute().total()
        total_deviation = deviation.total()
        if total_planned <= 0 or total_deviation < thresholds.plan_deviation_fraction * total_planned:
            return []
        worst_index = int(deviation.values.argmax())
        worst_slot = deviation.start_slot + worst_index
        severity = (
            AlertSeverity.CRITICAL
            if total_deviation > 2 * thresholds.plan_deviation_fraction * total_planned
            else AlertSeverity.WARNING
        )
        return [
            Alert(
                kind=AlertKind.PLAN_DEVIATION,
                severity=severity,
                message=(
                    f"physical realization deviates from the plan by "
                    f"{100 * total_deviation / total_planned:.0f}%"
                ),
                start=self.grid.to_datetime(deviation.start_slot),
                end=self.grid.to_datetime(deviation.end_slot),
                first_slot=deviation.start_slot,
                last_slot=deviation.end_slot,
                energy_kwh=total_deviation,
                offer_ids=_overlapping_offers(offers, worst_slot, worst_slot + 1),
            )
        ]

    def low_flexibility_alerts(self, offers: Sequence[FlexOffer], region: str = "") -> list[Alert]:
        """Raised when the collected flex-offers provide too little balancing potential."""
        from repro.flexoffer.flexibility import balancing_potential

        if not offers:
            potential = 0.0
        else:
            potential = balancing_potential(list(offers))
        if potential >= self.thresholds.minimum_balancing_potential:
            return []
        first_slot = min((offer.earliest_start_slot for offer in offers), default=0)
        last_slot = max((offer.latest_end_slot for offer in offers), default=1)
        return [
            Alert(
                kind=AlertKind.LOW_FLEXIBILITY,
                severity=AlertSeverity.WARNING if offers else AlertSeverity.CRITICAL,
                message=f"balancing potential of the collected flex-offers is only {potential:.2f}",
                start=self.grid.to_datetime(first_slot),
                end=self.grid.to_datetime(last_slot),
                first_slot=first_slot,
                last_slot=last_slot,
                energy_kwh=float(sum(offer.energy_flexibility for offer in offers)),
                region=region,
                offer_ids=tuple(offer.id for offer in offers),
            )
        ]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _severity(self, imbalance_energy: float, reference_energy: float) -> AlertSeverity:
        if reference_energy <= 0:
            return AlertSeverity.WARNING
        fraction = imbalance_energy / reference_energy
        if fraction >= self.thresholds.critical_fraction:
            return AlertSeverity.CRITICAL
        if fraction >= self.thresholds.warning_fraction:
            return AlertSeverity.WARNING
        return AlertSeverity.INFO


def _overlapping_offers(offers: Sequence[FlexOffer], first_slot: int, last_slot: int) -> tuple[int, ...]:
    return tuple(
        offer.id
        for offer in offers
        if offer.earliest_start_slot < last_slot and offer.latest_end_slot > first_slot
    )

"""Descriptive statistics and error metrics over time series.

These helpers back the forecasting evaluation (MAE / MAPE / RMSE) and the
plan-deviation measure required by the paper's Req. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import TimeGridError
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-style summary of one time series."""

    count: int
    total: float
    mean: float
    minimum: float
    maximum: float
    std: float

    @classmethod
    def of(cls, series: TimeSeries) -> "SeriesSummary":
        """Compute the summary of ``series`` (zeros for an empty series)."""
        if len(series) == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        values = series.values
        return cls(
            count=len(values),
            total=float(values.sum()),
            mean=float(values.mean()),
            minimum=float(values.min()),
            maximum=float(values.max()),
            std=float(values.std()),
        )


def _paired(actual: TimeSeries, predicted: TimeSeries) -> tuple[np.ndarray, np.ndarray]:
    """Return value arrays of the two series over their overlapping slot range."""
    if not actual.grid.compatible_with(predicted.grid):
        raise TimeGridError("cannot compare series on incompatible grids")
    offset = actual.grid.slot_offset(predicted.grid)
    pred_start = predicted.start_slot + offset
    start = max(actual.start_slot, pred_start)
    end = min(actual.end_slot, pred_start + len(predicted))
    if end <= start:
        return np.array([]), np.array([])
    a = actual.values[start - actual.start_slot : end - actual.start_slot]
    p = predicted.values[start - pred_start : end - pred_start]
    return a, p


def mean_absolute_error(actual: TimeSeries, predicted: TimeSeries) -> float:
    """Mean absolute error over the overlapping range (0.0 when disjoint)."""
    a, p = _paired(actual, predicted)
    if len(a) == 0:
        return 0.0
    return float(np.abs(a - p).mean())


def root_mean_squared_error(actual: TimeSeries, predicted: TimeSeries) -> float:
    """Root mean squared error over the overlapping range (0.0 when disjoint)."""
    a, p = _paired(actual, predicted)
    if len(a) == 0:
        return 0.0
    return float(np.sqrt(((a - p) ** 2).mean()))


def mean_absolute_percentage_error(actual: TimeSeries, predicted: TimeSeries) -> float:
    """MAPE in percent, ignoring slots where the actual value is zero."""
    a, p = _paired(actual, predicted)
    mask = a != 0
    if not mask.any():
        return 0.0
    return float((np.abs((a[mask] - p[mask]) / a[mask])).mean() * 100.0)


def plan_deviation(planned: TimeSeries, realized: TimeSeries) -> TimeSeries:
    """Per-slot difference between the plan and the physical realization.

    This is the "Plan Deviations" measure from the paper's Req. 2: positive
    values mean the plan expected more energy than was physically used.
    """
    deviation = planned - realized
    deviation.name = "plan deviation"
    deviation.unit = planned.unit or realized.unit
    return deviation


def total_absolute_deviation(planned: TimeSeries, realized: TimeSeries) -> float:
    """Total absolute plan deviation (the quantity an imbalance fee is charged on)."""
    return plan_deviation(planned, realized).absolute().total()

"""Regular time-series substrate: grids, series, resampling and statistics."""

from repro.timeseries.grid import DEFAULT_ORIGIN, DEFAULT_RESOLUTION, TimeGrid, hours_between
from repro.timeseries.resample import ResampleKind, downsample, resample, upsample
from repro.timeseries.series import TimeSeries, accumulate
from repro.timeseries.statistics import (
    SeriesSummary,
    mean_absolute_error,
    mean_absolute_percentage_error,
    plan_deviation,
    root_mean_squared_error,
    total_absolute_deviation,
)

__all__ = [
    "DEFAULT_ORIGIN",
    "DEFAULT_RESOLUTION",
    "TimeGrid",
    "hours_between",
    "TimeSeries",
    "accumulate",
    "ResampleKind",
    "resample",
    "downsample",
    "upsample",
    "SeriesSummary",
    "mean_absolute_error",
    "mean_absolute_percentage_error",
    "root_mean_squared_error",
    "plan_deviation",
    "total_absolute_deviation",
]

"""Regular time-series substrate: grids, series, resampling and statistics.

Submodules are re-exported lazily (PEP 562): ``grid`` is pure stdlib, while
``series``, ``resample`` and ``statistics`` are numpy-native.  Lazy loading
keeps numpy-free consumers (flex-offer model, warehouse, store) importable in
the no-numpy CI leg — they only touch :class:`TimeGrid`.
"""

from repro.timeseries.grid import DEFAULT_ORIGIN, DEFAULT_RESOLUTION, TimeGrid, hours_between

_LAZY = {
    "TimeSeries": "repro.timeseries.series",
    "accumulate": "repro.timeseries.series",
    "ResampleKind": "repro.timeseries.resample",
    "resample": "repro.timeseries.resample",
    "downsample": "repro.timeseries.resample",
    "upsample": "repro.timeseries.resample",
    "SeriesSummary": "repro.timeseries.statistics",
    "mean_absolute_error": "repro.timeseries.statistics",
    "mean_absolute_percentage_error": "repro.timeseries.statistics",
    "root_mean_squared_error": "repro.timeseries.statistics",
    "plan_deviation": "repro.timeseries.statistics",
    "total_absolute_deviation": "repro.timeseries.statistics",
}

__all__ = [
    "DEFAULT_ORIGIN",
    "DEFAULT_RESOLUTION",
    "TimeGrid",
    "hours_between",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(__all__)

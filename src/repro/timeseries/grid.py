"""Discrete time grid used throughout the library.

The MIRABEL system plans energy in discrete *time slots* (typically 15
minutes).  Flex-offer profiles, time series, schedules and the balancing
problem are all defined on such a grid.  :class:`TimeGrid` anchors a slot
resolution to an absolute origin so that slot indices can be converted to and
from :class:`datetime.datetime` values.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.errors import TimeGridError

#: Default slot length used by the MIRABEL pilot (and by this reproduction).
DEFAULT_RESOLUTION = timedelta(minutes=15)

#: Default origin for synthetic scenarios.  Any fixed instant works; the
#: value mirrors the time window shown in the paper's Figure 6.
DEFAULT_ORIGIN = datetime(2012, 2, 1, 0, 0, 0)


@dataclass(frozen=True)
class TimeGrid:
    """An absolute, regularly spaced time grid.

    Parameters
    ----------
    origin:
        The absolute instant corresponding to slot index ``0``.
    resolution:
        The length of one slot.  Must be a positive ``timedelta``.
    """

    origin: datetime = DEFAULT_ORIGIN
    resolution: timedelta = DEFAULT_RESOLUTION

    def __post_init__(self) -> None:
        if self.resolution <= timedelta(0):
            raise TimeGridError(f"resolution must be positive, got {self.resolution!r}")

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def to_slot(self, instant: datetime) -> int:
        """Return the slot index containing ``instant`` (floor division)."""
        delta = instant - self.origin
        return int(delta // self.resolution)

    def to_datetime(self, slot: int) -> datetime:
        """Return the absolute start time of ``slot``."""
        return self.origin + slot * self.resolution

    def slot_bounds(self, slot: int) -> tuple[datetime, datetime]:
        """Return the ``(start, end)`` instants of ``slot``."""
        start = self.to_datetime(slot)
        return start, start + self.resolution

    def span_slots(self, start: datetime, end: datetime) -> range:
        """Return the range of slot indices covering ``[start, end)``.

        The end instant is exclusive: a span ending exactly on a slot boundary
        does not include the following slot.
        """
        if end < start:
            raise TimeGridError(f"span end {end!r} precedes start {start!r}")
        first = self.to_slot(start)
        last = self.to_slot(end)
        start_of_last, _ = self.slot_bounds(last)
        if end == start_of_last:
            return range(first, last)
        return range(first, last + 1)

    # ------------------------------------------------------------------
    # Unit helpers
    # ------------------------------------------------------------------
    @property
    def hours_per_slot(self) -> float:
        """Length of one slot expressed in hours (used for kW <-> kWh)."""
        return self.resolution.total_seconds() / 3600.0

    def slots_per_day(self) -> int:
        """Number of slots in 24 hours; raises if a day is not a whole number of slots."""
        day = timedelta(days=1)
        quotient = day.total_seconds() / self.resolution.total_seconds()
        slots = round(quotient)
        if abs(quotient - slots) > 1e-9:
            raise TimeGridError(
                f"resolution {self.resolution!r} does not evenly divide one day"
            )
        return slots

    def compatible_with(self, other: "TimeGrid") -> bool:
        """Whether two grids share resolution and slot phase (origins may differ by whole slots)."""
        if self.resolution != other.resolution:
            return False
        offset = (other.origin - self.origin).total_seconds()
        step = self.resolution.total_seconds()
        return abs(offset / step - round(offset / step)) < 1e-9

    def slot_offset(self, other: "TimeGrid") -> int:
        """Return the integer number of slots by which ``other.origin`` trails ``self.origin``."""
        if not self.compatible_with(other):
            raise TimeGridError("time grids are not compatible (resolution or phase differ)")
        offset = (other.origin - self.origin).total_seconds()
        return round(offset / self.resolution.total_seconds())


def hours_between(grid: TimeGrid, first_slot: int, last_slot: int) -> float:
    """Return the duration, in hours, of the half-open slot range ``[first, last)``."""
    if last_slot < first_slot:
        raise TimeGridError("last_slot precedes first_slot")
    return (last_slot - first_slot) * grid.hours_per_slot

"""Resampling of time series between grids of different resolutions.

The visual analysis framework must support "analysing data at different time
granularities" (Section 3 of the paper): the OLAP time dimension rolls 15-minute
slots up to hours, days and months.  Energy values are *extensive* quantities
(kWh per slot), so upsampling splits values evenly and downsampling sums them;
prices and power values are *intensive* and are averaged instead.
"""

from __future__ import annotations

from datetime import timedelta
from enum import Enum

import numpy as np

from repro.errors import TimeGridError
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


class ResampleKind(str, Enum):
    """How values combine when their slots are merged or split."""

    #: Extensive quantity (energy per slot): sum when merging, split when dividing.
    SUM = "sum"
    #: Intensive quantity (power, price): average when merging, repeat when dividing.
    MEAN = "mean"


def _ratio(coarse: timedelta, fine: timedelta) -> int:
    quotient = coarse.total_seconds() / fine.total_seconds()
    ratio = round(quotient)
    if ratio < 1 or abs(quotient - ratio) > 1e-9:
        raise TimeGridError(
            f"resolution {coarse!r} is not an integer multiple of {fine!r}"
        )
    return ratio


def downsample(series: TimeSeries, target: TimeGrid, kind: ResampleKind = ResampleKind.SUM) -> TimeSeries:
    """Aggregate ``series`` onto the coarser grid ``target``.

    The target resolution must be an integer multiple of the source resolution
    and both grids must share their origin phase.
    """
    ratio = _ratio(target.resolution, series.grid.resolution)
    if ratio == 1:
        return series.copy()
    origin_offset = (series.grid.origin - target.origin).total_seconds()
    fine_step = series.grid.resolution.total_seconds()
    if abs(origin_offset % fine_step) > 1e-9:
        raise TimeGridError("grids are phase-incompatible for resampling")
    # Absolute fine-slot index of the series start, expressed on a fine grid
    # anchored at the *target* origin, so that coarse boundaries align.
    fine_start = series.start_slot + round(origin_offset / fine_step)
    first_coarse = fine_start // ratio
    last_coarse = (fine_start + len(series) + ratio - 1) // ratio
    length = max(last_coarse - first_coarse, 0)
    values = np.zeros(length)
    counts = np.zeros(length)
    for i, value in enumerate(series.values):
        coarse = (fine_start + i) // ratio - first_coarse
        values[coarse] += value
        counts[coarse] += 1
    if kind is ResampleKind.MEAN:
        with np.errstate(invalid="ignore", divide="ignore"):
            values = np.where(counts > 0, values / np.maximum(counts, 1), 0.0)
    return TimeSeries(target, first_coarse, values, name=series.name, unit=series.unit)


def upsample(series: TimeSeries, target: TimeGrid, kind: ResampleKind = ResampleKind.SUM) -> TimeSeries:
    """Refine ``series`` onto the finer grid ``target``."""
    ratio = _ratio(series.grid.resolution, target.resolution)
    if ratio == 1:
        return series.copy()
    origin_offset = (series.grid.origin - target.origin).total_seconds()
    fine_step = target.resolution.total_seconds()
    if abs(origin_offset % fine_step) > 1e-9:
        raise TimeGridError("grids are phase-incompatible for resampling")
    fine_start = series.start_slot * ratio + round(origin_offset / fine_step)
    values = np.repeat(series.values, ratio)
    if kind is ResampleKind.SUM:
        values = values / ratio
    return TimeSeries(target, fine_start, values, name=series.name, unit=series.unit)


def resample(series: TimeSeries, target: TimeGrid, kind: ResampleKind = ResampleKind.SUM) -> TimeSeries:
    """Resample ``series`` onto ``target``, choosing up- or downsampling automatically."""
    if target.resolution == series.grid.resolution:
        if not series.grid.compatible_with(target):
            raise TimeGridError("grids share resolution but differ in phase")
        offset = target.slot_offset(series.grid)
        return TimeSeries(target, series.start_slot + offset, series.values, name=series.name, unit=series.unit)
    if target.resolution > series.grid.resolution:
        return downsample(series, target, kind)
    return upsample(series, target, kind)

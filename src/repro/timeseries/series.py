"""Regular-resolution time series.

The MIRABEL enterprise handles large volumes of metered energy readings,
forecast series, spot prices and plan series.  All of them are regularly
spaced, which lets this substrate store values in a dense ``numpy`` array
anchored to a :class:`~repro.timeseries.grid.TimeGrid`.
"""

from __future__ import annotations

from datetime import datetime
from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import TimeGridError
from repro.timeseries.grid import TimeGrid


class TimeSeries:
    """A dense time series of float values on a :class:`TimeGrid`.

    Parameters
    ----------
    grid:
        The time grid the series lives on.
    start_slot:
        Slot index (on ``grid``) of the first value.
    values:
        The values; stored as a float64 numpy array.
    name:
        Optional label used in plots and reports.
    unit:
        Physical unit of the values, e.g. ``"kWh"`` or ``"EUR/MWh"``.
    """

    __slots__ = ("grid", "start_slot", "values", "name", "unit")

    def __init__(
        self,
        grid: TimeGrid,
        start_slot: int,
        values: Sequence[float] | np.ndarray,
        name: str = "",
        unit: str = "",
    ) -> None:
        self.grid = grid
        self.start_slot = int(start_slot)
        self.values = np.asarray(values, dtype=float).copy()
        if self.values.ndim != 1:
            raise TimeGridError("time series values must be one-dimensional")
        self.name = name
        self.unit = unit

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls,
        grid: TimeGrid,
        start_slot: int,
        length: int,
        name: str = "",
        unit: str = "",
    ) -> "TimeSeries":
        """Create an all-zero series of ``length`` slots."""
        return cls(grid, start_slot, np.zeros(length), name=name, unit=unit)

    @classmethod
    def from_pairs(
        cls,
        grid: TimeGrid,
        pairs: Iterable[tuple[int, float]],
        name: str = "",
        unit: str = "",
    ) -> "TimeSeries":
        """Build a series from ``(slot, value)`` pairs; gaps are filled with zero."""
        items = sorted(pairs)
        if not items:
            return cls.zeros(grid, 0, 0, name=name, unit=unit)
        first = items[0][0]
        last = items[-1][0]
        values = np.zeros(last - first + 1)
        for slot, value in items:
            values[slot - first] += value
        return cls(grid, first, values, name=name, unit=unit)

    # ------------------------------------------------------------------
    # Basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[float]:
        return iter(self.values.tolist())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TimeSeries(name={self.name!r}, start_slot={self.start_slot}, "
            f"length={len(self)}, unit={self.unit!r})"
        )

    @property
    def end_slot(self) -> int:
        """Slot index one past the last value (half-open interval)."""
        return self.start_slot + len(self.values)

    @property
    def slots(self) -> range:
        """The half-open slot range covered by this series."""
        return range(self.start_slot, self.end_slot)

    def start_time(self) -> datetime:
        """Absolute instant of the first slot."""
        return self.grid.to_datetime(self.start_slot)

    def end_time(self) -> datetime:
        """Absolute instant just after the last slot."""
        return self.grid.to_datetime(self.end_slot)

    def value_at(self, slot: int, default: float = 0.0) -> float:
        """Return the value at ``slot`` or ``default`` when out of range."""
        index = slot - self.start_slot
        if 0 <= index < len(self.values):
            return float(self.values[index])
        return default

    def to_pairs(self) -> list[tuple[int, float]]:
        """Return the series as a list of ``(slot, value)`` pairs."""
        return [(self.start_slot + i, float(v)) for i, v in enumerate(self.values)]

    def copy(self, name: str | None = None) -> "TimeSeries":
        """Return a deep copy, optionally renamed."""
        return TimeSeries(
            self.grid,
            self.start_slot,
            self.values.copy(),
            name=self.name if name is None else name,
            unit=self.unit,
        )

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def _aligned(self, other: "TimeSeries") -> tuple[int, np.ndarray, np.ndarray]:
        """Align two series on a common slot range padded with zeros."""
        if not self.grid.compatible_with(other.grid):
            raise TimeGridError("cannot combine series on incompatible time grids")
        offset = self.grid.slot_offset(other.grid)
        other_start = other.start_slot + offset
        start = min(self.start_slot, other_start)
        end = max(self.end_slot, other.end_slot + offset)
        left = np.zeros(end - start)
        right = np.zeros(end - start)
        left[self.start_slot - start : self.end_slot - start] = self.values
        right[other_start - start : other_start - start + len(other.values)] = other.values
        return start, left, right

    def _combine(
        self, other: "TimeSeries | float", op: Callable[[np.ndarray, np.ndarray], np.ndarray]
    ) -> "TimeSeries":
        if isinstance(other, TimeSeries):
            start, left, right = self._aligned(other)
            return TimeSeries(self.grid, start, op(left, right), name=self.name, unit=self.unit)
        return TimeSeries(
            self.grid,
            self.start_slot,
            op(self.values, np.asarray(float(other))),
            name=self.name,
            unit=self.unit,
        )

    def __add__(self, other: "TimeSeries | float") -> "TimeSeries":
        return self._combine(other, np.add)

    def __sub__(self, other: "TimeSeries | float") -> "TimeSeries":
        return self._combine(other, np.subtract)

    def __mul__(self, factor: float) -> "TimeSeries":
        return self._combine(float(factor), np.multiply)

    def __rmul__(self, factor: float) -> "TimeSeries":
        return self.__mul__(factor)

    def __neg__(self) -> "TimeSeries":
        return TimeSeries(self.grid, self.start_slot, -self.values, name=self.name, unit=self.unit)

    def clip(self, minimum: float | None = None, maximum: float | None = None) -> "TimeSeries":
        """Return a copy with values clipped to ``[minimum, maximum]``."""
        return TimeSeries(
            self.grid,
            self.start_slot,
            np.clip(self.values, minimum, maximum),
            name=self.name,
            unit=self.unit,
        )

    # ------------------------------------------------------------------
    # Slicing
    # ------------------------------------------------------------------
    def slice_slots(self, first: int, last: int) -> "TimeSeries":
        """Return the sub-series covering the half-open slot range ``[first, last)``.

        Slots outside the stored range are filled with zeros so that the result
        always has ``last - first`` values.
        """
        if last < first:
            raise TimeGridError("slice end precedes slice start")
        values = np.zeros(last - first)
        lo = max(first, self.start_slot)
        hi = min(last, self.end_slot)
        if hi > lo:
            values[lo - first : hi - first] = self.values[lo - self.start_slot : hi - self.start_slot]
        return TimeSeries(self.grid, first, values, name=self.name, unit=self.unit)

    def slice_time(self, start: datetime, end: datetime) -> "TimeSeries":
        """Return the sub-series covering the absolute interval ``[start, end)``."""
        span = self.grid.span_slots(start, end)
        if len(span) == 0:
            return TimeSeries(self.grid, self.grid.to_slot(start), [], name=self.name, unit=self.unit)
        return self.slice_slots(span.start, span.stop)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def total(self) -> float:
        """Sum of all values."""
        return float(self.values.sum()) if len(self.values) else 0.0

    def mean(self) -> float:
        """Arithmetic mean (0.0 for an empty series)."""
        return float(self.values.mean()) if len(self.values) else 0.0

    def minimum(self) -> float:
        """Smallest value (0.0 for an empty series)."""
        return float(self.values.min()) if len(self.values) else 0.0

    def maximum(self) -> float:
        """Largest value (0.0 for an empty series)."""
        return float(self.values.max()) if len(self.values) else 0.0

    def absolute(self) -> "TimeSeries":
        """Return a copy with absolute values (useful for imbalance energy)."""
        return TimeSeries(
            self.grid, self.start_slot, np.abs(self.values), name=self.name, unit=self.unit
        )


def accumulate(series: Iterable[TimeSeries], grid: TimeGrid, name: str = "", unit: str = "") -> TimeSeries:
    """Sum an iterable of series into one, aligning them on ``grid``.

    Returns an empty series when the iterable is empty.
    """
    result: TimeSeries | None = None
    for item in series:
        result = item.copy() if result is None else result + item
    if result is None:
        return TimeSeries.zeros(grid, 0, 0, name=name, unit=unit)
    result.name = name or result.name
    result.unit = unit or result.unit
    return result

"""The unified session facade (``repro.session``) — one front door.

* :mod:`repro.session.spec` — :class:`QuerySpec`/:class:`ResultSet`, the
  typed request/response envelopes shared by every engine.
* :mod:`repro.session.engines` — the :class:`AggregationBackend` protocol
  with the :class:`BatchEngine` and :class:`LiveEngine` implementations.
* :mod:`repro.session.query` — the fluent, index-aware :class:`OfferQuery`
  builder.
* :mod:`repro.session.views` — the name → builder :data:`VIEW_REGISTRY`.
* :mod:`repro.session.materialize` — standing specs maintained from commit
  deltas (:class:`MaterializedView`).
* :mod:`repro.session.facade` — :class:`FlexSession`, tying it all together.
"""

from repro.session.engines import (
    AggregationBackend,
    AsyncEngine,
    BatchEngine,
    LiveEngine,
    ShardedEngine,
    subscribe_spec,
)
from repro.session.facade import ENGINE_FACTORIES, FlexSession
from repro.session.materialize import MaterializedDelta, MaterializedView
from repro.session.query import OfferQuery, execute
from repro.session.spec import FRAME_COLUMNS, QuerySpec, ResultSet
from repro.session.views import (
    VIEW_REGISTRY,
    build_view,
    register_view,
    registered_views,
)

__all__ = [
    "AggregationBackend",
    "AsyncEngine",
    "BatchEngine",
    "LiveEngine",
    "ShardedEngine",
    "subscribe_spec",
    "ENGINE_FACTORIES",
    "FlexSession",
    "MaterializedDelta",
    "MaterializedView",
    "OfferQuery",
    "execute",
    "FRAME_COLUMNS",
    "QuerySpec",
    "ResultSet",
    "VIEW_REGISTRY",
    "build_view",
    "register_view",
    "registered_views",
]

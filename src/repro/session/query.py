"""The fluent, index-aware offer query builder.

``session.offers()`` returns an :class:`OfferQuery`; each chained call
(``.where(...)``, ``.between(...)``, ``.aggregate(...)``) returns a *new*
builder with a refined :class:`~repro.session.spec.QuerySpec`, so partial
queries can be shared and reused.  Terminal operations (``.fetch()``,
``.to_frame()``, ``.to_view(...)``, ``.count()``, ``.subscribe(...)``) hand
the frozen spec to the session's active engine — batch or live — which plans
it against its hash indexes; the resulting
:class:`~repro.session.spec.ResultSet` is engine-agnostic.
"""

from __future__ import annotations

import time
from datetime import datetime
from typing import TYPE_CHECKING, Any, Callable

from repro.aggregation.parameters import AggregationParameters
from repro.errors import SessionError
from repro.flexoffer.model import FlexOffer
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS
from repro.session.spec import QuerySpec, ResultSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.engines import AggregationBackend
    from repro.session.facade import FlexSession
    from repro.live.subscriptions import Subscription
    from repro.views.base import FlexOfferView

# ----------------------------------------------------------------------
# Observability: the query path splits into *select* (index planning +
# scan inside the backend) and *aggregate* (the optional aggregation of
# the selection); both phases and the scan width get their own series.
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_QUERIES = _OBS.counter("repro.session.query.count", "queries executed")
_QUERY_SECONDS = _OBS.histogram(
    "repro.session.query.seconds", "end-to-end query latency"
)
_QUERY_SELECT_SECONDS = _OBS.histogram(
    "repro.session.query.select.seconds", "selection (plan + scan) latency"
)
_QUERY_AGGREGATE_SECONDS = _OBS.histogram(
    "repro.session.query.aggregate.seconds", "query-side aggregation latency"
)
_QUERY_ROWS_SCANNED = _OBS.histogram(
    "repro.session.query.rows_scanned", "rows scanned per query", COUNT_BUCKETS
)


def execute(backend: "AggregationBackend", grid, spec: QuerySpec) -> ResultSet:
    """Run one spec against one backend; the only execution path there is.

    The selection is sorted by offer id before limiting and aggregating so
    that both engines chunk groups identically — this is what makes result
    sets interchangeable down to aggregate profiles.
    """
    if not _OBS.enabled:
        return _execute(backend, grid, spec)
    started = time.perf_counter()
    with _TRACER.span("session.query"):
        result = _execute(backend, grid, spec)
    _QUERY_SECONDS.observe(time.perf_counter() - started)
    _QUERIES.inc()
    _QUERY_ROWS_SCANNED.observe(result.scanned_rows)
    return result


def _execute(backend: "AggregationBackend", grid, spec: QuerySpec) -> ResultSet:
    """The query body (see :func:`execute` for the instrumented entry point)."""
    recording = _OBS.enabled
    select_started = time.perf_counter() if recording else 0.0
    with _TRACER.span("session.query.select"):
        selected, scanned = backend.select(spec)
        selected = sorted(selected, key=lambda offer: offer.id)
    if recording:
        _QUERY_SELECT_SECONDS.observe(time.perf_counter() - select_started)
    matched = len(selected)
    if spec.limit is not None:
        selected = selected[: spec.limit]
    constituents: dict[int, list[FlexOffer]] = {}
    offers = selected
    if spec.parameters is not None:
        aggregate_started = time.perf_counter() if recording else 0.0
        with _TRACER.span("session.query.aggregate"):
            result = backend.aggregate(selected, spec.parameters)
        if recording:
            _QUERY_AGGREGATE_SECONDS.observe(time.perf_counter() - aggregate_started)
        offers = list(result.offers)
        constituents = {key: list(value) for key, value in result.constituents.items()}
    return ResultSet(
        offers=offers,
        spec=spec,
        engine=backend.name,
        scanned_rows=scanned,
        matched_rows=matched,
        constituents=constituents,
    )


class OfferQuery:
    """An immutable fluent builder over one session's offers."""

    def __init__(self, session: "FlexSession", spec: QuerySpec | None = None) -> None:
        self._session = session
        self._spec = spec or QuerySpec()

    @property
    def spec(self) -> QuerySpec:
        """The frozen spec the builder has accumulated so far."""
        return self._spec

    def _derive(self, spec: QuerySpec) -> "OfferQuery":
        return OfferQuery(self._session, spec)

    # ------------------------------------------------------------------
    # Refinement steps (each returns a new builder)
    # ------------------------------------------------------------------
    def where(self, **filters: Any) -> "OfferQuery":
        """Constrain by attribute values; scalars and iterables both work.

        Accepts the spec's plural fields (``states=("assigned", "accepted")``)
        and singular aliases (``state="assigned"``, ``region="Capital"``,
        ``grid_node=...``).  Later calls replace earlier values of the same
        field.
        """
        return self._derive(self._spec.merged(**filters))

    def between(self, start: datetime | None, end: datetime | None) -> "OfferQuery":
        """Constrain to offers whose feasible span overlaps [start, end)."""
        return self._derive(self._spec.merged(interval_start=start, interval_end=end))

    def only_aggregates(self, flag: bool = True) -> "OfferQuery":
        """Keep only aggregates (or, with ``flag=False``, only raw offers)."""
        return self._derive(self._spec.merged(only_aggregates=flag))

    def limit(self, count: int) -> "OfferQuery":
        """Cap the matched raw offers (id order, applied before aggregation)."""
        if count < 0:
            raise SessionError("limit must be >= 0")
        return self._derive(self._spec.merged(limit=count))

    def aggregate(
        self, parameters: AggregationParameters | None = None, **tolerances: Any
    ) -> "OfferQuery":
        """Turn the query into an aggregation with the given parameters.

        Pass an :class:`AggregationParameters` or its keyword fields
        (``est_tolerance_slots=8``).  With neither, the session's default
        parameters apply — on the live engine that selection is served from
        the committed incremental state, not recomputed.
        """
        if parameters is not None and tolerances:
            raise SessionError("pass AggregationParameters or keyword tolerances, not both")
        if parameters is None:
            parameters = (
                AggregationParameters(**tolerances)
                if tolerances
                else self._session.parameters
            )
        return self._derive(self._spec.merged(parameters=parameters))

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------
    def fetch(self) -> ResultSet:
        """Execute against the session's active engine."""
        return self._session.query(self._spec)

    def count(self) -> int:
        """Number of output offers the spec produces."""
        return len(self.fetch())

    def to_frame(self) -> list[dict[str, Any]]:
        """Execute and project to the shared tabular shape."""
        return self.fetch().to_frame()

    def to_view(self, name: str, **options: Any) -> "FlexOfferView":
        """Execute and open the result in a registered view."""
        return self._session.view(name, self.fetch(), **options)

    def subscribe(self, callback: Callable, name: str = "") -> "Subscription":
        """Register ``callback`` for future commits matching this spec."""
        return self._session.subscribe(self._spec, callback, name=name)

    def describe(self) -> str:
        """The accumulated spec as a one-liner."""
        return self._spec.describe() or "all flex-offers"

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"OfferQuery({self.describe()})"

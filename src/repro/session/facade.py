"""``FlexSession`` — the one front door to the flex-offer system.

A session owns a scenario, a warehouse, an engine and the view registry, and
exposes every workflow the scattered entry points used to cover:

>>> session = FlexSession.from_config(prosumers=120, seed=7)
>>> frame = session.offers().where(state="assigned", region="Capital").to_frame()
>>> view = session.offers().aggregate().to_view("pivot")
>>> live = session.use_engine("live")          # same scenario, event-driven
>>> session.subscribe(session.offers().where(region="Capital").spec, callback)

Engines are pluggable behind the
:class:`~repro.session.engines.AggregationBackend` protocol: ``"batch"`` is a
read-only snapshot of the scenario, ``"live"`` the event-driven incremental
subsystem, ``"sharded"`` its hash-partitioned variant and ``"async"`` the
bounded-queue background-commit variant (live-family engines are preloaded
with the scenario's offers so all engines start interchangeable).  Engines
are kept per session, so switching back and forth is free after first use;
downstream backends register through the same :data:`ENGINE_FACTORIES`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.aggregation.parameters import AggregationParameters
from repro.errors import SessionError
from repro.flexoffer.model import FlexOffer
from repro.live.events import EventLog, OfferEvent
from repro.live.replay import ReplayReport, replay, scenario_event_stream
from repro.session.engines import (
    AggregationBackend,
    AsyncEngine,
    BatchEngine,
    LiveEngine,
    ShardedEngine,
    subscribe_spec,
)
from repro.session.materialize import MaterializedView, views_gauge
from repro.session.query import OfferQuery, execute
from repro.session.spec import QuerySpec, ResultSet
from repro.session.views import build_view, registered_views

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.scenarios import Scenario
    from repro.live.engine import CommitResult
    from repro.live.subscriptions import Subscription
    from repro.olap.cube import FlexOfferCube
    from repro.views.base import FlexOfferView
    from repro.views.framework import VisualAnalysisFramework

#: Engine factories by name; sessions instantiate lazily and cache.  Factories
#: that subclass :class:`LiveEngine` receive the session's stream options
#: (``micro_batch_size``, ``preload``); anything else gets (scenario, parameters).
ENGINE_FACTORIES: dict[str, Callable[..., AggregationBackend]] = {
    "batch": BatchEngine,
    "live": LiveEngine,
    "sharded": ShardedEngine,
    "async": AsyncEngine,
}


class FlexSession:
    """The unified facade over scenario, warehouse, engines and views."""

    def __init__(
        self,
        scenario: "Scenario",
        engine: str = "batch",
        parameters: AggregationParameters | None = None,
        micro_batch_size: int = 0,
        live_preload: bool = True,
    ) -> None:
        self.scenario = scenario
        self.grid = scenario.grid
        self.parameters = parameters or AggregationParameters()
        self.micro_batch_size = micro_batch_size
        self.live_preload = live_preload
        self._engines: dict[str, AggregationBackend] = {}
        self._active = ""
        #: Standing state that must survive engine swaps: every subscription
        #: handed out by :meth:`subscribe` and every materialized view, both
        #: re-attached to the new backend's hub by :meth:`use_engine`.
        self._subscriptions: list["Subscription"] = []
        self._materialized: dict[str, MaterializedView] = {}
        self.use_engine(engine)

    @classmethod
    def from_config(
        cls,
        prosumers: int = 200,
        seed: int = 42,
        engine: str = "batch",
        **session_options: Any,
    ) -> "FlexSession":
        """Generate a synthetic scenario and open a session over it."""
        from repro.datagen.scenarios import ScenarioConfig, generate_scenario

        scenario = generate_scenario(ScenarioConfig(prosumer_count=prosumers, seed=seed))
        return cls(scenario, engine=engine, **session_options)

    # ------------------------------------------------------------------
    # Engine management
    # ------------------------------------------------------------------
    @property
    def engine(self) -> AggregationBackend:
        """The active backend."""
        return self._engines[self._active]

    @property
    def engine_name(self) -> str:
        return self._active

    def _create_backend(self, name: str) -> AggregationBackend:
        """Instantiate (or fetch the cached) backend without activating it."""
        if name not in ENGINE_FACTORIES:
            raise SessionError(
                f"unknown engine {name!r}; available: {sorted(ENGINE_FACTORIES)}"
            )
        if name not in self._engines:
            factory = ENGINE_FACTORIES[name]
            if isinstance(factory, type) and issubclass(factory, LiveEngine):
                backend = factory(
                    self.scenario,
                    self.parameters,
                    micro_batch_size=self.micro_batch_size,
                    preload=self.live_preload,
                )
            else:
                backend = factory(self.scenario, self.parameters)
            self._engines[name] = backend
        return self._engines[name]

    def use_engine(self, name: str) -> AggregationBackend:
        """Switch the active engine, creating it on first use.

        Each live-family backend owns its own :class:`SubscriptionHub`, so a
        swap re-attaches every standing subscription and materialized view to
        the new backend's hub (and detaches them from the other cached
        live-family hubs) — ``session.subscribe(...)`` callbacks and
        ``session.materialize(...)`` views keep firing across
        ``use_engine()`` / ``replay(engine=...)`` switches.
        """
        backend = self._create_backend(name)
        self._active = name
        if isinstance(backend, LiveEngine):
            self._attach_standing(backend)
        return backend

    def _attach_standing(self, backend: LiveEngine) -> None:
        """Move standing subscriptions and materialized views onto ``backend``."""
        others = [
            cached
            for cached in self._engines.values()
            if isinstance(cached, LiveEngine) and cached is not backend
        ]
        for subscription in self._subscriptions:
            for other in others:
                other.hub.unsubscribe(subscription)
            backend.hub.adopt(subscription)
        for view in self._materialized.values():
            view.attach(backend)

    def close(self) -> None:
        """Release every cached engine's resources (worker threads, pools).

        The sharded engine owns a commit thread pool and the async engine a
        worker thread; sessions that create them should be closed (or used as
        a context manager) instead of relying on process exit.  Closed
        engines stay cached — the live-family ones rebuild their inner engine
        on :meth:`~repro.session.engines.LiveEngine.reset`, but the usual
        pattern is one close at the end of the session's life.
        """
        for backend in self._engines.values():
            close_backend = getattr(backend, "close", None)
            if close_backend is not None:
                close_backend()

    def __enter__(self) -> "FlexSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def snapshot(self) -> BatchEngine:
        """Rebuild the batch snapshot from the active live engine's *surviving* offers.

        The batch backend is otherwise frozen at the scenario the session was
        opened over: events ingested through a live-family engine never reach
        it.  ``snapshot()`` re-reads the live population (passthrough
        aggregates included), rebuilds the batch engine over it and replaces
        the cached backend, so the next ``use_engine("batch")`` — and every
        batch query after it — sees exactly the offers that survived the
        stream.  Called with a batch-family engine active it simply rebuilds
        from the original scenario.  The active engine is not switched.
        """
        backend = self.engine
        if isinstance(backend, LiveEngine):
            backend.refresh()
            scenario = self.scenario.replace_offers(backend.offers())
        else:
            scenario = self.scenario
        fresh = BatchEngine(scenario, self.parameters)
        self._engines["batch"] = fresh
        return fresh

    @property
    def live(self) -> LiveEngine:
        """The live backend (created on demand), without switching to it.

        Deliberately does *not* re-attach standing subscriptions or
        materialized views — they follow the active engine, and this accessor
        must not move them onto a backend that is not committing.
        """
        backend = self._create_backend("live")
        assert isinstance(backend, LiveEngine)
        return backend

    # ------------------------------------------------------------------
    # The query front door
    # ------------------------------------------------------------------
    def offers(self) -> OfferQuery:
        """Start a fluent query over the active engine's offers."""
        return OfferQuery(self)

    def query(
        self,
        spec: QuerySpec,
        *,
        at_version: int | None = None,
        consistency: str = "snapshot",
    ) -> ResultSet:
        """Execute one explicit spec against the active engine.

        Live-family engines answer through the versioned read path (see
        :mod:`repro.readpath`): an immutable snapshot of the committed state,
        fronted by a spec-keyed result cache.  ``consistency`` picks the
        snapshot discipline:

        * ``"snapshot"`` (default) — flush pending writes, then read the
          newest snapshot: read-your-writes, same answers as before.
        * ``"latest"`` — read the newest *published* snapshot without
          flushing: lock-free, never blocks on the writer (concurrent
          readers' bread and butter).
        * ``"live"`` — bypass the read path and execute directly against the
          engine (the legacy path).

        ``at_version=`` pins the read to one retained historical snapshot
        (overrides ``consistency``); the batch engine is an unversioned
        snapshot, so it only supports the default direct path.
        """
        backend = self.engine
        readpath = getattr(backend, "readpath", None)
        if at_version is not None:
            if readpath is None:
                raise SessionError(
                    "at_version= needs a live-family engine; the batch engine "
                    "is an unversioned snapshot"
                )
            return readpath.read(readpath.manager.get(at_version), spec)
        if consistency not in ("snapshot", "latest", "live"):
            raise SessionError(
                f"unknown consistency {consistency!r}; expected 'snapshot', "
                "'latest' or 'live'"
            )
        if readpath is None or consistency == "live":
            return execute(backend, self.grid, spec)
        if consistency == "snapshot":
            backend.refresh()
        return readpath.read(readpath.manager.latest(), spec)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def view(
        self, name: str, result: ResultSet | Iterable[FlexOffer] | None = None, **options: Any
    ) -> "FlexOfferView":
        """Open a registered view over a result set (or the whole population)."""
        if result is None:
            offers: Iterable[FlexOffer] = self.engine.offers()
        elif isinstance(result, ResultSet):
            offers = result.offers
        else:
            offers = result
        return build_view(name, list(offers), self, **options)

    @property
    def view_names(self) -> tuple[str, ...]:
        """The names ``view``/``to_view`` accept."""
        return registered_views()

    def framework(self) -> "VisualAnalysisFramework":
        """The tabbed main-window facade, bound to this session."""
        from repro.views.framework import VisualAnalysisFramework

        return VisualAnalysisFramework(self)

    # ------------------------------------------------------------------
    # Event ingestion and subscriptions (live engine)
    # ------------------------------------------------------------------
    def ingest(self, event: OfferEvent) -> "CommitResult | None":
        """Feed one lifecycle event to the active engine."""
        return self.engine.ingest(event)

    def ingest_many(self, events: Iterable[OfferEvent]) -> list["CommitResult"]:
        """Feed many events; returns any micro-batch commit results."""
        results = []
        for event in events:
            result = self.ingest(event)
            if result is not None:
                results.append(result)
        return results

    def commit(self) -> "CommitResult":
        """Commit pending events on the live engine."""
        backend = self.engine
        if not isinstance(backend, LiveEngine):
            raise SessionError("only the live engine commits; use_engine('live') first")
        return backend.commit()

    def subscribe(
        self, spec: QuerySpec | OfferQuery, callback: Callable, name: str = ""
    ) -> "Subscription":
        """Route commits matching ``spec`` to ``callback`` via the hub.

        Requires the live engine to be active — the batch snapshot never
        commits, so a subscription against it could never fire.
        """
        if isinstance(spec, OfferQuery):
            spec = spec.spec
        backend = self.engine
        if not isinstance(backend, LiveEngine):
            raise SessionError(
                "subscriptions need the live engine; call use_engine('live') first"
            )
        subscription = subscribe_spec(backend, spec, callback, name=name)
        # Session-level registry: the swap logic in use_engine() re-attaches
        # this handle to whichever live-family backend becomes active next.
        self._subscriptions.append(subscription)
        return subscription

    def unsubscribe(self, subscription: "Subscription") -> bool:
        """Retire a subscription from every cached live-family hub.

        Returns whether any hub still held it.  Works regardless of which
        engine is active — the handle may have been moved by a swap since it
        was created.
        """
        removed = False
        for backend in self._engines.values():
            if isinstance(backend, LiveEngine):
                removed = backend.hub.unsubscribe(subscription) or removed
        if subscription in self._subscriptions:
            self._subscriptions.remove(subscription)
        return removed

    # ------------------------------------------------------------------
    # Materialized views (see repro.session.materialize)
    # ------------------------------------------------------------------
    def materialize(
        self, spec: QuerySpec | OfferQuery, name: str = ""
    ) -> MaterializedView:
        """Register a standing spec maintained incrementally from commit deltas.

        The returned :class:`MaterializedView` holds a live
        :class:`~repro.session.spec.ResultSet` that the session keeps
        equivalent to ``session.query(spec)`` by applying each commit's
        insert/update/withdraw deltas — not by re-running the query.  The
        view follows the active engine across ``use_engine()`` /
        ``replay(engine=...)`` swaps and its ``version`` tracks the read
        path's snapshot versions.  Requires a live-family engine (the batch
        snapshot never commits, so there would be no deltas to maintain from).
        """
        if isinstance(spec, OfferQuery):
            spec = spec.spec
        backend = self.engine
        if not isinstance(backend, LiveEngine):
            raise SessionError(
                "materialized views need a live-family engine; "
                "call use_engine('live') first"
            )
        name = name or f"view-{len(self._materialized) + 1}"
        if name in self._materialized:
            raise SessionError(f"materialized view {name!r} already registered")
        view = MaterializedView(spec, name=name, grid=self.grid)
        view.attach(backend)
        self._materialized[name] = view
        views_gauge(len(self._materialized))
        return view

    def materialized(self, name: str) -> MaterializedView:
        """Fetch one registered materialized view by name."""
        try:
            return self._materialized[name]
        except KeyError:
            raise SessionError(
                f"no materialized view {name!r}; registered: "
                f"{sorted(self._materialized)}"
            ) from None

    @property
    def materialized_views(self) -> tuple[MaterializedView, ...]:
        """Every registered materialized view, in registration order."""
        return tuple(self._materialized.values())

    def drop_materialized(self, name: str) -> MaterializedView:
        """Deregister a view and detach it from its hub; the result stays readable."""
        view = self.materialized(name)
        view.detach()
        del self._materialized[name]
        views_gauge(len(self._materialized))
        return view

    def replay(
        self,
        events: EventLog | Iterable[OfferEvent] | None = None,
        update_fraction: float = 0.0,
        withdraw_fraction: float = 0.0,
        seed: int = 0,
        reset: bool | None = None,
        engine: str | None = None,
        resume_from: int = 0,
    ) -> ReplayReport:
        """Replay an event stream through a live-family engine (and its warehouse).

        With ``events=None`` the session's scenario is reconstructed as a
        timestamped stream first (see
        :func:`~repro.live.replay.scenario_event_stream`).  ``reset``
        controls whether the live state is dropped first (hub subscriptions
        survive a reset); the default (``None``) resets exactly when the
        stream is the synthesized scenario one — it re-adds every offer, so
        replaying it over the preloaded state would collide.  An explicit
        ``events`` stream is treated as a *continuation* of the current live
        state; pass ``reset=True`` when it is a from-scratch log (e.g. the
        full scenario stream against a preloaded engine).  ``engine`` picks
        the replaying backend (``"live"``/``"sharded"``/``"async"``); the
        default keeps the active engine when it is a live-family one and
        falls back to ``"live"`` otherwise.  The chosen engine is created if
        needed and becomes the active engine.  ``resume_from`` skips that many
        events at the head of the ordered stream — the continuation entry
        point for engines restored from a checkpoint (see
        :meth:`FlexSession.restore`).
        """
        if engine is None:
            engine = self._active if isinstance(self.engine, LiveEngine) else "live"
        backend = self.use_engine(engine)
        if not isinstance(backend, LiveEngine):
            raise SessionError(f"engine {engine!r} cannot replay events; it never commits")
        should_reset = reset if reset is not None else events is None
        if should_reset and len(backend.engine.offers()):
            backend.reset()
            # A reset keeps the hub (subscriptions survive) but drops the
            # committed state the materialized mirrors were built from; a
            # full recompute re-bases each view on the emptied engine.
            for view in self._materialized.values():
                if view.attached:
                    view.refresh()
        if events is None:
            events = scenario_event_stream(
                self.scenario,
                update_fraction=update_fraction,
                withdraw_fraction=withdraw_fraction,
                seed=seed,
            )
        report = replay(events, backend, resume_from=resume_from)
        # The replay loop feeds the inner engine directly; keep the backend's
        # event-offset counter (what checkpoints record) in step.
        backend.note_ingested(report.events)
        return report

    # ------------------------------------------------------------------
    # Durability (the repro.store subsystem)
    # ------------------------------------------------------------------
    def checkpoint(self, path: str, offset: int | None = None):
        """Write a checkpoint of the active live-family engine to ``path``.

        Serializes the committed engine state (grouping grid + aggregate-id
        allocator), the live warehouse's star schema and the event-log offset
        (``offset`` or the backend's own ingested-event counter) into a
        versioned checkpoint directory.  Returns the loaded-back
        :class:`~repro.store.snapshot.Checkpoint`.
        """
        from repro.store.recovery import RecoveryManager

        return RecoveryManager(path).checkpoint(self, offset=offset)

    @classmethod
    def restore(
        cls,
        path: str,
        engine: str | None = None,
        scenario: "Scenario | None" = None,
        **session_options: Any,
    ) -> "FlexSession":
        """Rebuild a session from a checkpoint directory plus its log tail.

        ``engine`` picks any live-family backend (default: the family that
        wrote the checkpoint); events recorded past the checkpoint's offset
        are replayed through it, so the restored session is observably
        equivalent to one that consumed the whole stream (the recovery
        contract, enforced by ``tests/test_store_recovery.py`` and
        ``flexviz restore --smoke``).
        """
        from repro.store.recovery import RecoveryManager

        return RecoveryManager(path).restore(
            engine=engine, scenario=scenario, **session_options
        )

    # ------------------------------------------------------------------
    # Shared read-side conveniences
    # ------------------------------------------------------------------
    @property
    def schema(self):
        """The active engine's star schema."""
        return self.engine.schema

    @property
    def repository(self):
        """The active engine's index-backed repository."""
        return self.engine.repository

    def cube(self) -> "FlexOfferCube":
        """An OLAP cube over the active engine's current offers."""
        from repro.olap.cube import FlexOfferCube

        return FlexOfferCube(
            self.engine.offers(), self.grid, topology=self.scenario.topology
        )

    def summary(self) -> dict[str, Any]:
        """Warehouse row counts and state distribution, plus session facts.

        Live-family backends also contribute their backlog depth — pending
        events, dirty cells/chunks, and on the sharded/async engines the
        dirty-shard count and ingest queue depth.  The figures are pushed
        through the :mod:`repro.obs` gauges on the way out, so this summary
        and a metrics scrape can never disagree.
        """
        summary = self.repository.summary()
        summary["engine"] = self.engine_name
        summary["views"] = list(self.view_names)
        if isinstance(self.engine, LiveEngine):
            # Chunk-granularity instrumentation of the live-family backends:
            # how much work the dirty ledger actually did vs skipped.  Summed
            # over *every* live-family backend this session created, so
            # ``use_engine()``/``replay(engine=...)`` swaps never silently
            # reset the session-level totals.
            live_backends = [
                backend
                for backend in self._engines.values()
                if isinstance(backend, LiveEngine)
            ]
            summary["events_ingested"] = sum(
                backend.events_ingested for backend in live_backends
            )
            summary["chunks_reaggregated"] = sum(
                backend.chunk_stats["chunks_reaggregated"] for backend in live_backends
            )
            summary["chunks_skipped"] = sum(
                backend.chunk_stats["chunks_skipped"] for backend in live_backends
            )
        readpath = getattr(self.engine, "readpath", None)
        if readpath is not None:
            summary["snapshot_version"] = readpath.manager.latest_version
            summary["result_cache"] = readpath.cache.stats()
        if self._materialized:
            summary["materialized_views"] = [
                view.stats() for view in self._materialized.values()
            ]
        depth_stats = getattr(self.engine, "depth_stats", None)
        if depth_stats is not None:
            summary.update(depth_stats())
        return summary

    # ------------------------------------------------------------------
    # Observability (the repro.obs subsystem)
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, dict[str, Any]]:
        """Snapshot of the process-global metrics registry (see :mod:`repro.obs`).

        Always readable; while observability is disabled the instruments are
        registered but unmoving (counters at zero, histograms empty).  Call
        ``repro.obs.enable()`` before the work you want measured.
        """
        from repro.obs import get_registry

        return get_registry().snapshot()

    def trace(self, limit: int | None = None, name: str | None = None):
        """The most recent finished tracing spans, oldest first.

        ``name`` filters to one stage (``"live.commit.drain"``); ``limit``
        keeps the newest N after filtering.  Spans only accumulate while
        observability is enabled.
        """
        from repro.obs import get_tracer

        return get_tracer().finished(limit=limit, name=name)

    def describe(self) -> str:
        """One-line session description."""
        return (
            f"FlexSession(engine={self.engine_name}, "
            f"offers={len(self.engine.offers())}, views={len(self.view_names)})"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return self.describe()

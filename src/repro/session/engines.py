"""The pluggable aggregation backends behind the session facade.

Both engines answer the same two questions — *which offers match a spec* and
*what is their aggregation* — behind the :class:`AggregationBackend`
protocol, so the query builder, the views and the CLI never care which one is
active:

* :class:`BatchEngine` is the seed's pipeline: a star schema loaded once from
  the scenario, read through the index-backed
  :class:`~repro.warehouse.query.FlexOfferRepository`, aggregated on demand
  with the batch :func:`~repro.aggregation.aggregate.aggregate`.
* :class:`LiveEngine` wraps PR 1's event-driven subsystem: a
  :class:`~repro.live.engine.LiveAggregationEngine` with its persistent
  grouping grid, a :class:`~repro.live.warehouse.LiveWarehouse` kept fresh
  under the same events, and a :class:`~repro.live.subscriptions.SubscriptionHub`
  for commit fan-out.
* :class:`ShardedEngine` swaps the inner engine for the hash-partitioned
  :class:`~repro.live.sharded.ShardedAggregationEngine` — same events, same
  warehouse mirror, commits fanned out over independent shards and merged
  into one logical commit.
* :class:`AsyncEngine` layers the bounded-queue
  :class:`~repro.live.asynccommit.AsyncCommitEngine` worker over sharded
  state: ``ingest`` only enqueues; the worker applies, mirrors the warehouse
  and commits in the background; reads flush first, so queries stay
  deterministic.

The interchangeability contract: one :class:`~repro.session.spec.QuerySpec`
executed against any engine over the same offer population yields equivalent
:class:`~repro.session.spec.ResultSet` envelopes — bit-identical aggregate
profiles, ids modulo :func:`~repro.live.engine.canonical_form`
(property-tested across all four engines in
``tests/test_session_equivalence.py``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Protocol, runtime_checkable

from repro.aggregation.aggregate import AggregationResult, aggregate
from repro.aggregation.parameters import AggregationParameters
from repro.errors import SessionError
from repro.flexoffer.model import FlexOffer
from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import CommitResult, LiveAggregationEngine
from repro.live.events import OfferAdded, OfferEvent
from repro.live.sharded import ShardedAggregationEngine
from repro.live.subscriptions import CommitNotification, Subscription, SubscriptionHub
from repro.live.warehouse import LiveWarehouse
from repro.obs import get_registry
from repro.warehouse.loader import load_scenario
from repro.warehouse.query import FlexOfferRepository
from repro.warehouse.schema import StarSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.scenarios import Scenario
    from repro.readpath import ReadPath
    from repro.session.spec import QuerySpec

# The engine modules above registered these gauges at import time; fetching
# them again by name returns the same instruments.  ``depth_stats`` refreshes
# them with the unconditional ``set`` so the figures a summary reports are
# truthful even while observability is disabled.
_OBS = get_registry()
_ASYNC_QUEUE_DEPTH = _OBS.gauge("repro.live.async.queue_depth")
_SHARDED_DIRTY_SHARDS = _OBS.gauge("repro.live.sharded.dirty_shards")


@runtime_checkable
class AggregationBackend(Protocol):
    """What a session engine must provide.

    ``select`` may use whatever access path it owns (hash indexes, the
    persistent grouping grid) but must return exactly the offers matching the
    spec's filter; ``aggregate`` must be batch-equivalent.  Engines that
    cannot ingest events raise :class:`~repro.errors.SessionError` from
    :meth:`ingest`.
    """

    name: str
    parameters: AggregationParameters

    @property
    def schema(self) -> StarSchema: ...  # pragma: no cover - protocol

    @property
    def repository(self) -> FlexOfferRepository: ...  # pragma: no cover - protocol

    def offers(self) -> list[FlexOffer]: ...  # pragma: no cover - protocol

    def select(self, spec: "QuerySpec") -> tuple[list[FlexOffer], int]: ...  # pragma: no cover

    def aggregate(
        self, offers: list[FlexOffer], parameters: AggregationParameters
    ) -> AggregationResult: ...  # pragma: no cover - protocol

    def ingest(self, event: OfferEvent) -> CommitResult | None: ...  # pragma: no cover


class BatchEngine:
    """The read-only snapshot backend over the classic batch pipeline."""

    name = "batch"

    def __init__(self, scenario: "Scenario", parameters: AggregationParameters | None = None) -> None:
        self.scenario = scenario
        self.grid = scenario.grid
        self.parameters = parameters or AggregationParameters()
        self._schema = load_scenario(scenario)
        self._repository = FlexOfferRepository(self._schema, self.grid)

    @property
    def schema(self) -> StarSchema:
        return self._schema

    @property
    def repository(self) -> FlexOfferRepository:
        return self._repository

    def offers(self) -> list[FlexOffer]:
        """The whole stored population, in id order."""
        return sorted(self._repository.load().offers, key=lambda offer: offer.id)

    def select(self, spec: "QuerySpec") -> tuple[list[FlexOffer], int]:
        """Index-backed read of the offers matching the spec's filter."""
        result = self._repository.load(spec.to_filter())
        return result.offers, result.scanned_rows

    def aggregate(
        self, offers: list[FlexOffer], parameters: AggregationParameters
    ) -> AggregationResult:
        """The batch grouping/aggregation pipeline, unchanged."""
        return aggregate(offers, parameters)

    def ingest(self, event: OfferEvent) -> CommitResult | None:
        raise SessionError(
            "the batch engine is a read-only snapshot; switch the session to the "
            "live engine (use_engine('live')) to ingest events"
        )


class LiveEngine:
    """The event-driven backend: incremental engine + live warehouse + hub.

    The inner :class:`LiveAggregationEngine` is the ground truth for the
    surviving population; the :class:`LiveWarehouse` mirrors it into the star
    schema so spec filters run through the same index-backed repository the
    batch engine uses.  Reads auto-commit pending events first, so a query
    always sees the latest ingested state.
    """

    name = "live"

    def __init__(
        self,
        scenario: "Scenario",
        parameters: AggregationParameters | None = None,
        micro_batch_size: int = 0,
        preload: bool = True,
    ) -> None:
        self.scenario = scenario
        self.grid = scenario.grid
        self.parameters = parameters or AggregationParameters()
        self.micro_batch_size = micro_batch_size
        self.hub = SubscriptionHub()
        #: Events this backend consumed since construction/reset — the
        #: event-log offset checkpoints record (see :mod:`repro.store`).
        self._events_ingested = 0
        #: Cumulative chunk-granularity counters over every commit this
        #: backend observed (the async backend feeds them from its worker).
        self._chunks_reaggregated = 0
        self._chunks_skipped = 0
        # The warehouse first: engine builders (the async worker's mirroring
        # hooks) may need it.
        self.warehouse = LiveWarehouse(
            load_scenario(scenario.replace_offers([])), self.grid, self.parameters
        )
        self.engine = self._build_engine()
        #: The versioned read path (snapshot ring + result cache) fed by the
        #: inner engine's commit listener; rebuilt by :meth:`reseed_readpath`.
        self.readpath: "ReadPath | None" = None
        self.reseed_readpath()
        if preload:
            self.ingest_many(
                OfferAdded(offer.creation_time, offer)
                for offer in scenario.offers_in_arrival_order()
            )
            self.commit()

    def _build_engine(self):
        """The inner incremental engine; subclasses swap the implementation."""
        return LiveAggregationEngine(
            self.parameters, micro_batch_size=self.micro_batch_size, hub=self.hub
        )

    @property
    def schema(self) -> StarSchema:
        return self.warehouse.schema

    @property
    def repository(self) -> FlexOfferRepository:
        return self.warehouse.repository

    def offers(self) -> list[FlexOffer]:
        """The surviving raw offers (passthrough aggregates included), id order."""
        return self.engine.offers()

    # ------------------------------------------------------------------
    # Event write path (engine first — it is the stricter validator)
    # ------------------------------------------------------------------
    @property
    def events_ingested(self) -> int:
        """Events consumed since construction (or the last :meth:`reset`)."""
        return self._events_ingested

    def note_ingested(self, count: int) -> None:
        """Advance the ingested-event counter for events applied out of band.

        :func:`repro.live.replay.replay` feeds the inner engine directly for
        its commit-cadence bookkeeping; callers that route streams through it
        (the session facade, the recovery manager) report the consumed count
        here so checkpoints record the right log offset.
        """
        self._events_ingested += count

    @property
    def dirty_chunk_count(self) -> int:
        """Chunks the next commit would re-aggregate (0 when clean)."""
        return getattr(self.engine, "dirty_chunk_count", 0)

    @property
    def chunk_stats(self) -> dict[str, int]:
        """Cumulative ``chunks_reaggregated`` / ``chunks_skipped`` totals."""
        return {
            "chunks_reaggregated": self._chunks_reaggregated,
            "chunks_skipped": self._chunks_skipped,
        }

    def depth_stats(self) -> dict[str, int]:
        """Backlog figures of this backend (pending events, dirty cells/chunks).

        Subclasses extend with their own depth — the async queue, the sharded
        dirty-shard count — and refresh the matching :mod:`repro.obs` gauges
        on the way out, so ``session.summary()`` and a metrics scrape agree.
        """
        return {
            "pending_events": self.engine.pending_events,
            "dirty_cells": self.engine.dirty_cell_count,
            "dirty_chunks": self.engine.dirty_chunk_count,
        }

    @property
    def _state_engine(self):
        """The engine holding grouped state (the async wrapper's inner)."""
        return getattr(self.engine, "inner", self.engine)

    def reseed_readpath(self) -> None:
        """(Re)build the versioned read path from the engine's current state.

        Attaches the commit listener on the *state* engine — the one whose
        ``commit()`` every path (session writes, replay-driven commits, the
        async worker) ultimately reaches — then publishes a baseline snapshot
        at the engine's current commit sequence.  Called at construction,
        after :meth:`reset`, and by the recovery manager once a checkpoint's
        state has been restored.
        """
        # Imported here: repro.readpath reads specs through the session layer,
        # so a module-level import would be circular.
        from repro.readpath import ReadPath

        engine = self._state_engine
        self.readpath = ReadPath(self.grid, self.name, self.parameters)
        engine.commit_listener = self._on_engine_commit
        # The async wrapper commits on its worker thread under its own lock;
        # take it so the baseline capture cannot interleave with a commit.
        lock = getattr(self.engine, "_lock", None)
        if lock is not None:
            with lock:
                self.readpath.seed(engine)
        else:
            self.readpath.seed(engine)

    def _on_engine_commit(self, result: CommitResult) -> None:
        """Commit listener: cumulative chunk totals + snapshot publication.

        Runs on whichever thread committed (the caller for the synchronous
        engines, the worker for the async engine — under the async lock, so
        the delta capture reads a quiescent engine).
        """
        self._chunks_reaggregated += result.chunks_reaggregated
        self._chunks_skipped += result.chunks_skipped
        if self.readpath is not None:
            self.readpath.on_commit(self._state_engine, result)

    def ingest(self, event: OfferEvent) -> CommitResult | None:
        """Apply one event to the engine and mirror it into the warehouse."""
        result = self.engine.apply(event)
        self.warehouse.apply(event)
        self._events_ingested += 1
        if result is not None:
            self.warehouse.apply_commit(result)
        return result

    def ingest_many(self, events: Iterable[OfferEvent]) -> list[CommitResult]:
        """Apply many events; returns any micro-batch commit results."""
        results = []
        for event in events:
            result = self.ingest(event)
            if result is not None:
                results.append(result)
        return results

    def commit(self) -> CommitResult:
        """Commit pending events and mirror the aggregate changes."""
        result = self.engine.commit()
        self.warehouse.apply_commit(result)
        return result

    def refresh(self) -> None:
        """Commit if anything is pending, so reads see the latest state."""
        if self.engine.pending_events or self.engine.has_pending_changes:
            self.commit()

    def reset(self) -> None:
        """Drop the live state (engine + warehouse) for a from-scratch replay.

        The hub — and with it every registered subscription — survives, so
        standing queries keep firing on the commits of the new stream.
        """
        self.close()
        self.warehouse = LiveWarehouse(
            load_scenario(self.scenario.replace_offers([])), self.grid, self.parameters
        )
        self.engine = self._build_engine()
        self._events_ingested = 0
        self._chunks_reaggregated = 0
        self._chunks_skipped = 0
        self.reseed_readpath()

    def close(self) -> None:
        """Release engine-owned resources (worker threads, commit pools)."""
        close_engine = getattr(self.engine, "close", None)
        if close_engine is not None:
            close_engine()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def select(self, spec: "QuerySpec") -> tuple[list[FlexOffer], int]:
        """Spec filter over the live population.

        Raw offers are read through the live warehouse's repository (same
        index-backed planning as the batch engine); passthrough aggregates
        live outside ``fact_flexoffer`` and are matched in memory.
        """
        self.refresh()
        result = self.repository.load(spec.to_filter())
        offers = list(result.offers)
        scanned = result.scanned_rows
        passthroughs = [offer for offer in self.engine.offers() if offer.is_aggregate]
        scanned += len(passthroughs)
        offers.extend(
            offer for offer in passthroughs if spec.matches(offer, self.grid)
        )
        return offers, scanned

    def aggregate(
        self, offers: list[FlexOffer], parameters: AggregationParameters
    ) -> AggregationResult:
        """Serve aggregation from the committed incremental state when possible.

        The fast path applies when the requested parameters are the engine's
        own and the selection covers the whole surviving population — then the
        committed dirty-cell outputs are returned without recomputation.  Any
        other selection or parameterization falls back to the shared batch
        pipeline over the selected offers.
        """
        self.refresh()
        if parameters == self.parameters and {offer.id for offer in offers} == {
            offer.id for offer in self.engine.offers()
        }:
            return self.engine.result()
        return aggregate(offers, parameters, id_offset=self.engine.id_offset)


class ShardedEngine(LiveEngine):
    """The live backend over the hash-partitioned sharded engine.

    Identical session semantics to :class:`LiveEngine` — same event vocabulary,
    warehouse mirror and subscriptions — with commits fanned out over
    ``shard_count`` independent shards and merged into one logical commit
    (published to the hub exactly once).
    """

    name = "sharded"

    def __init__(
        self,
        scenario: "Scenario",
        parameters: AggregationParameters | None = None,
        micro_batch_size: int = 0,
        preload: bool = True,
        shard_count: int = 8,
    ) -> None:
        self.shard_count = shard_count
        super().__init__(
            scenario, parameters, micro_batch_size=micro_batch_size, preload=preload
        )

    def _build_engine(self):
        return ShardedAggregationEngine(
            self.parameters,
            shard_count=self.shard_count,
            micro_batch_size=self.micro_batch_size,
            hub=self.hub,
        )

    def depth_stats(self) -> dict[str, int]:
        stats = super().depth_stats()
        stats["dirty_shards"] = self.engine.dirty_shard_count
        _SHARDED_DIRTY_SHARDS.set(stats["dirty_shards"])
        return stats


class AsyncEngine(LiveEngine):
    """The live backend with ingestion decoupled from commits.

    ``ingest`` only enqueues onto the async worker's bounded queue; the worker
    applies events to the sharded state, mirrors the live warehouse and
    commits in the background.  Every read path flushes first (the
    :meth:`refresh` barrier), so queries observe exactly the synchronous
    engines' state — the interchangeability contract is unchanged, only the
    thread that pays for commits moves.
    """

    name = "async"

    def __init__(
        self,
        scenario: "Scenario",
        parameters: AggregationParameters | None = None,
        micro_batch_size: int = 0,
        preload: bool = True,
        shard_count: int = 8,
        queue_size: int = 1024,
    ) -> None:
        self.shard_count = shard_count
        self.queue_size = queue_size
        super().__init__(
            scenario, parameters, micro_batch_size=micro_batch_size, preload=preload
        )

    def _build_engine(self):
        inner = ShardedAggregationEngine(
            self.parameters, shard_count=self.shard_count, hub=self.hub
        )
        return AsyncCommitEngine(
            inner,
            queue_size=self.queue_size,
            # micro_batch_size maps onto the worker's drain batch: the latency
            # bound between commits under sustained load.
            drain_batch=self.micro_batch_size or 64,
            on_event=self._mirror_event,
            on_commit=self._mirror_commit,
        )

    # The warehouse is mirrored by the worker (these hooks run on its thread);
    # the synchronous LiveEngine write path must not mirror a second time.
    def _mirror_event(self, event: OfferEvent) -> None:
        self.warehouse.apply(event)

    def _mirror_commit(self, result: CommitResult) -> None:
        self.warehouse.apply_commit(result)

    def ingest(self, event: OfferEvent) -> CommitResult | None:
        """Enqueue one event; the worker applies, mirrors and commits it."""
        result = self.engine.apply(event)
        self._events_ingested += 1
        return result

    def commit(self) -> CommitResult:
        """Barrier commit: drain the queue and return the newest logical commit."""
        return self.engine.commit()

    def refresh(self) -> None:
        """The flush barrier: reads wait for the worker to drain and commit."""
        self.engine.flush()

    def depth_stats(self) -> dict[str, int]:
        stats = super().depth_stats()
        # The inner engine is sharded; surface its shard backlog here too.
        stats["dirty_shards"] = self.engine.inner.dirty_shard_count
        stats["queue_depth"] = self.engine.queued_events
        _SHARDED_DIRTY_SHARDS.set(stats["dirty_shards"])
        _ASYNC_QUEUE_DEPTH.set(stats["queue_depth"])
        return stats


def subscribe_spec(
    backend: LiveEngine,
    spec: "QuerySpec",
    callback: Callable[[CommitNotification], None],
    name: str = "",
) -> Subscription:
    """Register ``callback`` for commits matching ``spec`` on a live backend.

    The spec's predicate becomes the subscription's interest filter, so the
    hub's own slicing (changed/exited/removed mirror bookkeeping) applies —
    an output that changes *out of* the spec, or is retired, is delivered as
    a removal exactly when the callback was previously handed it.
    """
    if not isinstance(backend, LiveEngine):
        raise SessionError(
            "subscriptions need the live engine; the batch engine never commits"
        )
    grid = backend.grid
    return backend.hub.subscribe(
        callback,
        name=name or f"spec:{spec.describe() or 'all'}",
        predicate=lambda offer: spec.matches(offer, grid),
        deliver_empty=False,
    )

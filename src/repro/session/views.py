"""The session's view registry: one name → builder table for every paper view.

Instead of each caller hand-wiring view constructors (the CLI's if/elif
chain, the framework's :class:`ViewKind` dispatch), views register themselves
here under a stable name and the query builder's ``.to_view("pivot")``
terminal looks them up.  New views — including ones added by downstream code
— plug in with :func:`register_view` and become reachable from the fluent
API, the CLI's ``render`` command and the framework without touching any of
them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import SessionError
from repro.flexoffer.model import FlexOffer
from repro.views.base import FlexOfferView
from repro.views.basic import BasicView
from repro.views.dashboard import DashboardView
from repro.views.map_view import MapView
from repro.views.pivot_view import PivotView
from repro.views.profile_view import ProfileView
from repro.views.schematic import SchematicView

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.facade import FlexSession

#: A builder takes the offers to show plus the owning session (for master
#: data such as geography/topology and the time grid) and keyword options
#: forwarded to the view constructor.
ViewBuilder = Callable[..., FlexOfferView]

VIEW_REGISTRY: dict[str, ViewBuilder] = {}


def register_view(name: str) -> Callable[[ViewBuilder], ViewBuilder]:
    """Class/function decorator registering a view builder under ``name``."""

    def decorator(builder: ViewBuilder) -> ViewBuilder:
        VIEW_REGISTRY[name] = builder
        return builder

    return decorator


def registered_views() -> tuple[str, ...]:
    """The names the registry currently knows, sorted."""
    return tuple(sorted(VIEW_REGISTRY))


def build_view(
    name: str, offers: Sequence[FlexOffer], session: "FlexSession", **options
) -> FlexOfferView:
    """Instantiate the registered view ``name`` over ``offers``."""
    try:
        builder = VIEW_REGISTRY[name]
    except KeyError as exc:
        raise SessionError(
            f"unknown view {name!r}; registered views: {list(registered_views())}"
        ) from exc
    return builder(list(offers), session, **options)


@register_view("basic")
def _build_basic(offers, session, **options):
    return BasicView(offers, session.grid, **options)


@register_view("profile")
def _build_profile(offers, session, **options):
    return ProfileView(offers, session.grid, **options)


@register_view("map")
def _build_map(offers, session, **options):
    return MapView(offers, session.scenario.geography, session.grid, **options)


@register_view("schematic")
def _build_schematic(offers, session, **options):
    return SchematicView(offers, session.scenario.topology, session.grid, **options)


@register_view("pivot")
def _build_pivot(offers, session, **options):
    return PivotView(offers, session.grid, **options)


@register_view("dashboard")
def _build_dashboard(offers, session, **options):
    return DashboardView(offers, session.grid, **options)

"""Typed query envelopes shared by every engine behind the session facade.

The batch pipeline and the live engine used to speak different dialects:
repository keyword filters on one side, engine state plus commit results on
the other.  :class:`QuerySpec` is the single request shape both understand —
a frozen, hashable description of *which* offers to read and *how* (if at
all) to aggregate them — and :class:`ResultSet` is the single response shape
both produce.  Because a spec is plain data it can be executed against the
:class:`~repro.session.engines.BatchEngine`, executed against the
:class:`~repro.session.engines.LiveEngine`, or registered as a standing
subscription, with contractually interchangeable results.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field, replace
from datetime import datetime
from typing import Any, Iterator

from repro.aggregation.parameters import AggregationParameters
from repro.errors import SessionError
from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.live.engine import canonical_form
from repro.timeseries.grid import TimeGrid
from repro.warehouse.query import FlexOfferFilter

#: Singular keyword aliases the fluent builder accepts (``state="assigned"``)
#: mapped to the underlying plural spec field.
FIELD_ALIASES = {
    "prosumer_id": "prosumer_ids",
    "region": "regions",
    "city": "cities",
    "district": "districts",
    "grid_node": "grid_nodes",
    "energy_type": "energy_types",
    "prosumer_type": "prosumer_types",
    "appliance_type": "appliance_types",
    "state": "states",
}

#: The value-set fields of a spec, in description order.
VALUE_FIELDS = (
    "prosumer_ids",
    "regions",
    "cities",
    "districts",
    "grid_nodes",
    "energy_types",
    "prosumer_types",
    "appliance_types",
    "states",
)


def _normalize(field_name: str, value: Any) -> tuple | None:
    """Coerce a scalar or iterable filter value into a sorted tuple.

    An *empty* iterable stays an empty tuple — "match nothing", exactly as
    :class:`~repro.warehouse.query.FlexOfferFilter` treats it — rather than
    collapsing to ``None`` ("unconstrained"), so a data-driven filter that
    ends up empty cannot silently return the whole population.
    """
    if value is None:
        return None
    if isinstance(value, FlexOfferState):
        value = value.value
    if isinstance(value, (str, int)):
        value = (value,)
    items = []
    for item in value:
        if isinstance(item, FlexOfferState):
            item = item.value
        items.append(item)
    return tuple(sorted(set(items)))


@dataclass(frozen=True)
class QuerySpec:
    """One offer query both engines understand: filter + optional aggregation.

    All value-set fields are conjunctive and ``None`` means "do not
    constrain", mirroring :class:`~repro.warehouse.query.FlexOfferFilter`.
    ``parameters`` switches the query from a raw read to an aggregation
    (grouping/aggregating the matching offers with those parameters), and
    ``limit`` caps the matched raw offers (applied in id order, before
    aggregation, so both engines cap identically).
    """

    prosumer_ids: tuple[int, ...] | None = None
    regions: tuple[str, ...] | None = None
    cities: tuple[str, ...] | None = None
    districts: tuple[str, ...] | None = None
    grid_nodes: tuple[str, ...] | None = None
    energy_types: tuple[str, ...] | None = None
    prosumer_types: tuple[str, ...] | None = None
    appliance_types: tuple[str, ...] | None = None
    states: tuple[str, ...] | None = None
    interval_start: datetime | None = None
    interval_end: datetime | None = None
    only_aggregates: bool | None = None
    parameters: AggregationParameters | None = None
    limit: int | None = None

    @classmethod
    def build(cls, **filters: Any) -> "QuerySpec":
        """Build a spec from loose keyword filters.

        Accepts both the plural field names and their singular aliases
        (``state=...`` for ``states=...``); scalar values are wrapped into
        one-element tuples and :class:`FlexOfferState` members are converted
        to their string values.
        """
        known = set(VALUE_FIELDS) | {
            "interval_start",
            "interval_end",
            "only_aggregates",
            "parameters",
            "limit",
        }
        resolved: dict[str, Any] = {}
        for key, value in filters.items():
            target = FIELD_ALIASES.get(key, key)
            if target not in known:
                raise SessionError(
                    f"unknown query filter {key!r}; known filters: "
                    f"{sorted(known | set(FIELD_ALIASES))}"
                )
            if target in resolved:
                raise SessionError(f"query filter {target!r} given twice")
            resolved[target] = _normalize(target, value) if target in VALUE_FIELDS else value
        return cls(**resolved)

    def merged(self, **filters: Any) -> "QuerySpec":
        """A copy with additional filters applied (later values replace)."""
        fresh = QuerySpec.build(**filters)
        updates = {
            name: getattr(fresh, name)
            for name in fresh.__dataclass_fields__
            if getattr(fresh, name) != getattr(QuerySpec(), name)
        }
        return replace(self, **updates)

    # ------------------------------------------------------------------
    # Interop with the warehouse repository
    # ------------------------------------------------------------------
    def to_filter(self) -> FlexOfferFilter:
        """The repository-level filter of this spec (index-backed planning)."""
        return FlexOfferFilter(
            prosumer_ids=self.prosumer_ids,
            regions=self.regions,
            cities=self.cities,
            districts=self.districts,
            grid_nodes=self.grid_nodes,
            energy_types=self.energy_types,
            prosumer_types=self.prosumer_types,
            appliance_types=self.appliance_types,
            states=self.states,
            interval_start=self.interval_start,
            interval_end=self.interval_end,
            only_aggregates=self.only_aggregates,
        )

    # ------------------------------------------------------------------
    # In-memory predicate (subscriptions, passthrough aggregates)
    # ------------------------------------------------------------------
    def matches(self, offer: FlexOffer, grid: TimeGrid) -> bool:
        """Whether one in-memory offer satisfies the filter part of the spec.

        Mirrors the repository's row semantics: conjunctive value sets and
        feasible-span overlap for the time interval.
        """

        def in_or_none(value: Any, allowed: tuple | None) -> bool:
            return allowed is None or value in allowed

        if not (
            in_or_none(offer.prosumer_id, self.prosumer_ids)
            and in_or_none(offer.region, self.regions)
            and in_or_none(offer.city, self.cities)
            and in_or_none(offer.district, self.districts)
            and in_or_none(offer.grid_node, self.grid_nodes)
            and in_or_none(offer.energy_type, self.energy_types)
            and in_or_none(offer.prosumer_type, self.prosumer_types)
            and in_or_none(offer.appliance_type, self.appliance_types)
            and in_or_none(offer.state.value, self.states)
        ):
            return False
        if self.only_aggregates is not None and offer.is_aggregate != self.only_aggregates:
            return False
        if self.interval_start is not None or self.interval_end is not None:
            earliest = grid.to_datetime(offer.earliest_start_slot)
            latest_end = grid.to_datetime(offer.latest_end_slot)
            if self.interval_end is not None and earliest >= self.interval_end:
                return False
            if self.interval_start is not None and latest_end <= self.interval_start:
                return False
        return True

    def describe(self) -> str:
        """Human-readable one-liner (view tab titles, subscription names)."""
        parts = []
        base = self.to_filter().describe()
        if base != "all flex-offers" or self.parameters is None:
            parts.append(base)
        if self.parameters is not None:
            parts.append(
                "aggregate(est_tol={0.est_tolerance_slots}, tft_tol="
                "{0.time_flexibility_tolerance_slots})".format(self.parameters)
            )
        if self.limit is not None:
            parts.append(f"limit={self.limit}")
        return ", ".join(parts)


#: Columns of the tabular projection :meth:`ResultSet.to_frame` emits.
FRAME_COLUMNS = (
    "id",
    "prosumer_id",
    "state",
    "direction",
    "region",
    "city",
    "district",
    "grid_node",
    "energy_type",
    "prosumer_type",
    "appliance_type",
    "earliest_start_slot",
    "latest_start_slot",
    "time_flexibility_slots",
    "min_total_energy",
    "max_total_energy",
    "scheduled_energy",
    "is_aggregate",
)


@dataclass
class ResultSet:
    """The single response envelope every engine produces for a spec.

    ``offers`` is the final output (raw offers, or aggregation outputs when
    the spec carried parameters); ``matched_rows`` counts the raw offers the
    filter matched before aggregation and ``scanned_rows`` how many candidate
    rows the engine examined (index-backed plans scan fewer).
    """

    offers: list[FlexOffer]
    spec: QuerySpec
    engine: str
    scanned_rows: int
    matched_rows: int
    constituents: dict[int, list[FlexOffer]] = field(default_factory=dict)
    #: The snapshot version this result was served from (``None`` for direct
    #: live/batch reads that bypassed the versioned read path).
    version: int | None = None

    def __len__(self) -> int:
        return len(self.offers)

    def __iter__(self) -> Iterator[FlexOffer]:
        return iter(self.offers)

    def __getitem__(self, index: int) -> FlexOffer:
        return self.offers[index]

    @property
    def aggregates(self) -> list[FlexOffer]:
        """Only the true aggregates among the output offers."""
        return [offer for offer in self.offers if offer.is_aggregate]

    @property
    def raw_offers(self) -> list[FlexOffer]:
        """Only the non-aggregate output offers."""
        return [offer for offer in self.offers if not offer.is_aggregate]

    def constituents_of(self, aggregate_id: int) -> list[FlexOffer]:
        """Provenance of one output aggregate (empty when unknown)."""
        return list(self.constituents.get(aggregate_id, ()))

    def to_frame(self) -> list[dict[str, Any]]:
        """A tabular projection: one plain dict per offer, :data:`FRAME_COLUMNS` each.

        This replaces the per-module result shapes (repository rows, engine
        offer lists) with one frame any consumer — CLI tables, tests,
        external tooling — can take without knowing which engine answered.
        """
        frame = []
        for offer in self.offers:
            frame.append(
                {
                    "id": offer.id,
                    "prosumer_id": offer.prosumer_id,
                    "state": offer.state.value,
                    "direction": offer.direction.value,
                    "region": offer.region,
                    "city": offer.city,
                    "district": offer.district,
                    "grid_node": offer.grid_node,
                    "energy_type": offer.energy_type,
                    "prosumer_type": offer.prosumer_type,
                    "appliance_type": offer.appliance_type,
                    "earliest_start_slot": offer.earliest_start_slot,
                    "latest_start_slot": offer.latest_start_slot,
                    "time_flexibility_slots": offer.time_flexibility_slots,
                    "min_total_energy": offer.min_total_energy,
                    "max_total_energy": offer.max_total_energy,
                    "scheduled_energy": offer.scheduled_energy,
                    "is_aggregate": offer.is_aggregate,
                }
            )
        return frame

    def canonical(self) -> Counter:
        """Id-insensitive multiset of the outputs (the equivalence normal form).

        Aggregate ids are allocator details (the live engine hands out stable
        per-cell ids, the batch pipeline sequential ones); everything else —
        profiles bit-for-bit included — must agree between engines.
        """
        return Counter(canonical_form(offer) for offer in self.offers)

    def matches(self, other: "ResultSet") -> bool:
        """Whether two result sets are equivalent under :meth:`canonical`."""
        return self.canonical() == other.canonical()

    def describe(self) -> str:
        """One-line summary: engine, matched/scanned counts, output size."""
        return (
            f"[{self.engine}] {self.spec.describe() or 'all flex-offers'} -> "
            f"{len(self.offers)} offers ({self.matched_rows} matched, "
            f"{self.scanned_rows} scanned)"
        )

"""Materialized views: standing ``QuerySpec``s maintained from commit deltas.

``session.materialize(spec, name=...)`` registers a spec whose result the
session keeps *fresh* instead of re-running it: the view subscribes to the
live backend's :class:`~repro.live.subscriptions.SubscriptionHub` (the same
spec-filtered subscription ``session.subscribe`` uses, with
``deliver_empty=True`` so no commit can slip past unnoticed) and applies each
commit's insert/update/withdraw deltas to its held rows and aggregate
profiles.  The cost of keeping a view current therefore tracks the commit's
dirty membership — the paper's incremental-visualization claim — not the
population size.

Maintenance is driven by the same dirty bookkeeping the read path trusts
(see :mod:`repro.readpath.cache`): a commit's ``dirty_cells`` name every
grid cell whose membership changed, so the view re-reads exactly those
cells' surviving members from the committed engine state, diffs them against
its mirror, and re-aggregates only the spec-level groups whose membership
moved.  Commits that touch none of the view's rows only advance its
``version`` — the analogue of a cache carry.

Version stamping is consistent with the read path: an applied commit stamps
the view (and its :class:`~repro.session.spec.ResultSet`) with the commit's
``sequence``, which is exactly the snapshot version
:mod:`repro.readpath` publishes for the same commit — so a materialized
view and a ``session.query(spec)`` at the same version describe the same
state.

The differential contract (``tests/test_materialize.py``): at every commit
point, on every live-family engine, a materialized view's result is
equivalent to a from-scratch ``session.query(spec)`` — raw ids exactly,
aggregate profiles bit-for-bit modulo
:func:`~repro.live.engine.canonical_form`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.aggregation.aggregate import aggregate_group
from repro.aggregation.grouping import GroupKey, chunk_group, group_key
from repro.errors import SessionError
from repro.obs import get_registry, get_tracer
from repro.session.spec import QuerySpec, ResultSet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.flexoffer.model import FlexOffer
    from repro.live.engine import CommitResult
    from repro.live.subscriptions import CommitNotification, Subscription
    from repro.session.engines import LiveEngine

# ----------------------------------------------------------------------
# Observability: staleness and maintenance cost of the standing views.
# Totals over every view — per-view figures ride MaterializedView.stats().
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_DELTAS = _OBS.counter(
    "repro.session.materialize.deltas", "commit deltas applied to materialized views"
)
_SKIPPED = _OBS.counter(
    "repro.session.materialize.skipped", "commits that touched no materialized row"
)
_REFRESHES = _OBS.counter(
    "repro.session.materialize.refreshes", "full recomputes (refresh / re-attach)"
)
_APPLY_SECONDS = _OBS.histogram(
    "repro.session.materialize.apply.seconds", "per-commit delta maintenance latency"
)
_STALENESS = _OBS.gauge(
    "repro.session.materialize.staleness",
    "commits the engine is ahead of the most recently maintained view",
)
_VIEWS = _OBS.gauge(
    "repro.session.materialize.views", "materialized views currently registered"
)


@dataclass(frozen=True)
class MaterializedDelta:
    """What one applied commit changed in a view's output offers."""

    version: int
    changed_ids: tuple[int, ...]
    removed_ids: tuple[int, ...]

    def __len__(self) -> int:
        return len(self.changed_ids) + len(self.removed_ids)


class MaterializedView:
    """One standing spec with a live, delta-maintained :class:`ResultSet`.

    Created through :meth:`~repro.session.facade.FlexSession.materialize`;
    not useful free-standing (it needs a live-family backend's hub and
    committed state to attach to).  Thread-safe: the async backend applies
    deltas on its worker thread while readers take :attr:`result` on theirs.
    """

    def __init__(self, spec: QuerySpec, name: str, grid) -> None:
        self.spec = spec
        self.name = name
        self.grid = grid
        self._lock = threading.Lock()
        self._backend: "LiveEngine | None" = None
        self._subscription: "Subscription | None" = None
        #: Matching raw rows by id — the view's held selection (pre-limit).
        self._rows: dict[int, "FlexOffer"] = {}
        #: Matching row ids per engine grid cell (the delta-application index).
        self._cell_rows: dict[Any, set[int]] = {}
        #: Matching passthrough aggregates by id (reconciled wholesale; tiny).
        self._passthrough: dict[int, "FlexOffer"] = {}
        #: For aggregation specs: matching row ids per *spec* group key, the
        #: committed output offers per group and their provenance.
        self._groups: dict[GroupKey, set[int]] = {}
        self._outputs: dict[GroupKey, list["FlexOffer"]] = {}
        self._constituents: dict[GroupKey, dict[int, list["FlexOffer"]]] = {}
        #: Stable aggregate id per (group, chunk) — same discipline as the
        #: live engine, so an unchanged chunk keeps its output identity.
        self._chunk_ids: dict[tuple[GroupKey, int], int] = {}
        self._next_id = 1_000_000
        self._result: ResultSet | None = None
        self.version = 0
        self.last_delta: MaterializedDelta | None = None
        # Plain counters (always maintained, observability on or off).
        self.deltas_applied = 0
        self.commits_skipped = 0
        self.refreshes = 0
        self.maintenance_seconds = 0.0

    # ------------------------------------------------------------------
    # Attachment (the facade drives this on materialize / engine swap)
    # ------------------------------------------------------------------
    @property
    def attached(self) -> bool:
        return self._backend is not None

    def attach(self, backend: "LiveEngine") -> None:
        """(Re)wire the view to ``backend``'s hub and rebuild from its state.

        Re-attaching to the already-attached backend is a no-op when the
        subscription is still registered there; anything else (an engine
        swap, a reset that rebuilt the state) detaches from the old hub,
        subscribes on the new one and reseeds the mirror — atomically with
        respect to commits (the async backend's commit lock is taken).
        """
        if (
            backend is self._backend
            and self._subscription is not None
            and backend.hub.unsubscribe(self._subscription)
        ):
            # Still attached; re-adopt the handle we just popped for the check.
            backend.hub.adopt(self._subscription)
            return
        self.detach()
        backend.refresh()
        lock = getattr(backend.engine, "_lock", None)
        if lock is not None:
            with lock:
                self._wire(backend)
        else:
            self._wire(backend)

    def _wire(self, backend: "LiveEngine") -> None:
        self._backend = backend
        grid = self.grid
        spec = self.spec
        self._subscription = backend.hub.subscribe(
            self._on_commit,
            name=f"materialize:{self.name}",
            predicate=lambda offer: spec.matches(offer, grid),
            deliver_empty=True,
        )
        self._reseed()

    def detach(self) -> None:
        """Drop the hub subscription; the held result stays readable."""
        if self._backend is not None and self._subscription is not None:
            self._backend.hub.unsubscribe(self._subscription)
        self._backend = None
        self._subscription = None

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    @property
    def result(self) -> ResultSet:
        """The current materialized result (never ``None`` once attached)."""
        result = self._result
        if result is None:
            raise SessionError(f"materialized view {self.name!r} was never attached")
        return result

    @property
    def rows(self) -> int:
        """Held matching rows (raw + passthrough, pre-limit)."""
        return len(self._rows) + len(self._passthrough)

    @property
    def staleness(self) -> int:
        """Commits the attached engine is ahead of this view (0 when fresh)."""
        if self._backend is None:
            return 0
        return max(0, self._backend._state_engine.commit_count - self.version)

    def stats(self) -> dict[str, Any]:
        """Maintenance counters (always maintained, like the result cache's)."""
        return {
            "name": self.name,
            "spec": self.spec.describe() or "all flex-offers",
            "version": self.version,
            "rows": self.rows,
            "deltas_applied": self.deltas_applied,
            "commits_skipped": self.commits_skipped,
            "refreshes": self.refreshes,
            "maintenance_seconds": self.maintenance_seconds,
            "staleness": self.staleness,
        }

    def describe(self) -> str:
        return (
            f"{self.name}: {self.spec.describe() or 'all flex-offers'} @v{self.version} "
            f"({self.rows} rows, {self.deltas_applied} deltas applied, "
            f"{self.commits_skipped} skipped)"
        )

    # ------------------------------------------------------------------
    # Full recompute
    # ------------------------------------------------------------------
    def refresh(self) -> ResultSet:
        """Force a full recompute from the engine's committed state.

        The escape hatch the differential tests compare against — delta
        maintenance must make this call unnecessary, never wrong.
        """
        backend = self._backend
        if backend is None:
            raise SessionError(
                f"materialized view {self.name!r} is detached; re-materialize it "
                "on a live-family engine first"
            )
        backend.refresh()
        lock = getattr(backend.engine, "_lock", None)
        if lock is not None:
            with lock:
                self._reseed()
        else:
            self._reseed()
        self.refreshes += 1
        if _OBS.enabled:
            _REFRESHES.inc()
        return self.result

    def _reseed(self) -> None:
        """Rebuild the mirror from the attached engine's committed state."""
        backend = self._backend
        assert backend is not None
        state = backend._state_engine
        spec = self.spec
        grid = self.grid
        with self._lock:
            self._rows.clear()
            self._cell_rows.clear()
            self._groups.clear()
            self._outputs.clear()
            self._constituents.clear()
            for cell in state.cells():
                matching = [
                    offer
                    for offer in state.cell_members(cell)
                    if spec.matches(offer, grid)
                ]
                if not matching:
                    continue
                self._cell_rows[cell] = {offer.id for offer in matching}
                for offer in matching:
                    self._rows[offer.id] = offer
            self._passthrough = {
                offer.id: offer
                for offer in state.passthrough_offers()
                if spec.matches(offer, grid)
            }
            if self._maintains_groups():
                for offer in self._rows.values():
                    self._groups.setdefault(
                        group_key(offer, spec.parameters), set()
                    ).add(offer.id)
                for key in list(self._groups):
                    self._recompute_group(key)
            self._finish(state.commit_count, engine_name=backend.name)

    # ------------------------------------------------------------------
    # Delta maintenance (runs on whichever thread committed)
    # ------------------------------------------------------------------
    def _on_commit(self, notification: "CommitNotification") -> None:
        started = time.perf_counter()
        with _TRACER.span("session.materialize.apply"):
            mutated = self._apply(notification.commit)
        elapsed = time.perf_counter() - started
        self.maintenance_seconds += elapsed
        if mutated:
            self.deltas_applied += 1
        else:
            self.commits_skipped += 1
        if _OBS.enabled:
            _APPLY_SECONDS.observe(elapsed)
            (_DELTAS if mutated else _SKIPPED).inc()
            _STALENESS.set(self.staleness)

    def _apply(self, commit: "CommitResult") -> bool:
        """Apply one commit's deltas to the held rows; returns whether any row moved."""
        backend = self._backend
        if backend is None:  # a racing detach; nothing to maintain
            return False
        state = backend._state_engine
        spec = self.spec
        grid = self.grid
        with self._lock:
            changed_groups: set[GroupKey] = set()
            inserted: list[int] = []
            removed: list[int] = []
            for cell in commit.dirty_cells:
                old_ids = self._cell_rows.pop(cell, set())
                matching = {
                    offer.id: offer
                    for offer in state.cell_members(cell)
                    if spec.matches(offer, grid)
                }
                if matching:
                    self._cell_rows[cell] = set(matching)
                for offer_id in old_ids - matching.keys():
                    old = self._rows.pop(offer_id)
                    removed.append(offer_id)
                    self._drop_from_group(old)
                    changed_groups.update(self._group_of(old))
                for offer_id, offer in matching.items():
                    old = self._rows.get(offer_id)
                    if old is offer:
                        continue  # untouched member of a dirty cell
                    self._rows[offer_id] = offer
                    inserted.append(offer_id)
                    if old is not None:
                        self._drop_from_group(old)
                        changed_groups.update(self._group_of(old))
                    self._add_to_group(offer)
                    changed_groups.update(self._group_of(offer))
            # Passthrough aggregates carry no cell structure: reconcile the
            # (tiny) population wholesale, exactly like the snapshot builder.
            current = {
                offer.id: offer
                for offer in state.passthrough_offers()
                if spec.matches(offer, grid)
            }
            passthrough_moved = current.keys() != self._passthrough.keys() or any(
                current[offer_id] is not self._passthrough[offer_id]
                for offer_id in current
            )
            pass_removed = [i for i in self._passthrough if i not in current]
            pass_changed = [
                i
                for i, offer in current.items()
                if self._passthrough.get(i) is not offer
            ]
            if passthrough_moved:
                self._passthrough = current
            if not (inserted or removed or passthrough_moved):
                # Provably untouched: only the version moves (a cache carry).
                self.version = commit.sequence
                if self._result is not None:
                    self._result.version = commit.sequence
                return False
            output_changed: list[int] = []
            output_removed: list[int] = []
            if self._maintains_groups():
                for key in changed_groups:
                    old_out, new_out = self._recompute_group(key)
                    new_by_id = {offer.id: offer for offer in new_out}
                    for offer in old_out:
                        if offer.id not in new_by_id:
                            output_removed.append(offer.id)
                    for offer_id, offer in new_by_id.items():
                        previous = next(
                            (o for o in old_out if o.id == offer_id), None
                        )
                        if previous is None or previous != offer:
                            output_changed.append(offer_id)
                output_changed.extend(pass_changed)
                output_removed.extend(pass_removed)
            else:
                output_changed = inserted + pass_changed
                output_removed = removed + pass_removed
            self._finish(commit.sequence, engine_name=backend.name)
            self.last_delta = MaterializedDelta(
                version=commit.sequence,
                changed_ids=tuple(output_changed),
                removed_ids=tuple(output_removed),
            )
            return True

    # ------------------------------------------------------------------
    # Group bookkeeping (aggregation specs without a limit)
    # ------------------------------------------------------------------
    def _maintains_groups(self) -> bool:
        return self.spec.parameters is not None and self.spec.limit is None

    def _group_of(self, offer: "FlexOffer") -> tuple[GroupKey, ...]:
        if not self._maintains_groups():
            return ()
        return (group_key(offer, self.spec.parameters),)

    def _add_to_group(self, offer: "FlexOffer") -> None:
        if self._maintains_groups():
            self._groups.setdefault(
                group_key(offer, self.spec.parameters), set()
            ).add(offer.id)

    def _drop_from_group(self, offer: "FlexOffer") -> None:
        if self._maintains_groups():
            key = group_key(offer, self.spec.parameters)
            members = self._groups.get(key)
            if members is not None:
                members.discard(offer.id)
                if not members:
                    del self._groups[key]

    def _recompute_group(
        self, key: GroupKey
    ) -> tuple[list["FlexOffer"], list["FlexOffer"]]:
        """Re-aggregate one spec-level group; returns (old outputs, new outputs).

        Chunking and singleton passthrough follow the batch pipeline exactly
        (:func:`~repro.aggregation.aggregate.aggregate`), so concatenating
        per-group outputs is bit-identical to a from-scratch aggregation of
        the whole selection — profiles included, ids modulo canonical form.
        """
        parameters = self.spec.parameters
        assert parameters is not None
        old = self._outputs.pop(key, [])
        self._constituents.pop(key, None)
        member_ids = self._groups.get(key, ())
        members = sorted(
            (self._rows[offer_id] for offer_id in member_ids),
            key=lambda offer: offer.id,
        )
        if not members:
            return old, []
        outputs: list["FlexOffer"] = []
        constituents: dict[int, list["FlexOffer"]] = {}
        for index, chunk in enumerate(chunk_group(members, parameters.max_group_size)):
            if len(chunk) == 1:
                outputs.append(chunk[0])
                continue
            aggregate_id = self._chunk_ids.get((key, index))
            if aggregate_id is None:
                aggregate_id = self._next_id
                self._next_id += 1
                self._chunk_ids[(key, index)] = aggregate_id
            combined = aggregate_group(chunk, aggregate_id)
            outputs.append(combined)
            constituents[aggregate_id] = list(chunk)
        self._outputs[key] = outputs
        if constituents:
            self._constituents[key] = constituents
        return old, outputs

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def _finish(self, version: int, engine_name: str) -> None:
        """Rebuild the :class:`ResultSet` envelope from the mirror."""
        spec = self.spec
        passthrough = [self._passthrough[i] for i in sorted(self._passthrough)]
        selected = sorted(
            list(self._rows.values()) + passthrough, key=lambda offer: offer.id
        )
        matched = len(selected)
        constituents: dict[int, list["FlexOffer"]] = {}
        if spec.parameters is None:
            offers = selected[: spec.limit] if spec.limit is not None else selected
        elif spec.limit is not None:
            # Limit + aggregation: the cap is global over the sorted selection,
            # so group-local maintenance cannot apply — re-aggregate the capped
            # mirror (still no scan: the selection itself is delta-maintained).
            from repro.aggregation.aggregate import aggregate as batch_aggregate

            computed = batch_aggregate(
                selected[: spec.limit], spec.parameters, id_offset=self._next_id
            )
            offers = list(computed.offers)
            constituents = {
                aggregate_id: list(group)
                for aggregate_id, group in computed.constituents.items()
            }
        else:
            offers = []
            for key in sorted(self._outputs):
                offers.extend(self._outputs[key])
            offers.extend(passthrough)
            for per_group in self._constituents.values():
                for aggregate_id, group in per_group.items():
                    constituents[aggregate_id] = list(group)
        self._result = ResultSet(
            offers=offers,
            spec=spec,
            engine=engine_name,
            scanned_rows=0,  # maintained from deltas, never scanned
            matched_rows=matched,
            constituents=constituents,
            version=version,
        )
        self.version = version


def views_gauge(count: int) -> None:
    """Refresh the registered-views gauge (unconditional; registration is rare)."""
    _VIEWS.set(count)

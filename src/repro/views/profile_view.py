"""The profile view of flex-offers (Figure 9).

The profile view is the paper's detailed representation and its main visual
contribution: "the variation of the histogram plot where 2-dimensional (time
and energy) subspaces are stacked onto each other" — dimensional stacking of
one small time-energy chart per flex-offer lane.  It shows, for every profile
slice, the minimum and maximum energy bounds plus the scheduled amount (red
line), and all ordinate axes share one synchronised scale so energy bars can
be compared across flex-offers.

The paper recommends it "for a smaller flex-offer set with less than few
thousands of flex-offers"; the CLAIM-2 bench measures that boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.flexoffer.model import FlexOffer
from repro.render.axes import PlotArea, legend, time_axis
from repro.render.color import Palette
from repro.render.scales import LinearScale, SlotTimeScale, pretty_ticks
from repro.render.scene import Group, Line, Rect, Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions
from repro.views.lanes import LaneStrategy, assign_lanes, lane_count


@dataclass(frozen=True)
class ProfileViewOptions(ViewOptions):
    """Options specific to the profile view."""

    max_lane_height: float = 80.0
    min_lane_height: float = 14.0
    #: Vertical padding inside each lane (fraction of the lane height).
    lane_padding_fraction: float = 0.12
    lane_strategy: LaneStrategy = LaneStrategy.FIRST_FIT
    show_legend: bool = True
    #: Whether to draw the small per-lane energy tick labels.
    show_lane_scale: bool = True


class ProfileView(FlexOfferView):
    """Figure 9: stacked time x energy subspaces with synchronised scales."""

    view_name = "profile view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        options: ProfileViewOptions | None = None,
    ) -> None:
        super().__init__(options or ProfileViewOptions())
        self.offers = list(offers)
        self.grid = grid
        self._lanes = assign_lanes(self.offers, self.options.lane_strategy)

    # ------------------------------------------------------------------
    # Shared scales
    # ------------------------------------------------------------------
    def _slot_bounds(self) -> tuple[int, int]:
        if not self.offers:
            return 0, 1
        first = min(offer.earliest_start_slot for offer in self.offers)
        last = max(offer.latest_end_slot for offer in self.offers)
        return first, max(last, first + 1)

    def max_slice_energy(self) -> float:
        """The synchronised ordinate maximum: the largest per-slot maximum energy."""
        peak = 0.0
        for offer in self.offers:
            for piece in offer.profile:
                peak = max(peak, piece.max_energy / piece.duration_slots)
        return peak if peak > 0 else 1.0

    def _lane_height(self, area: PlotArea) -> float:
        lanes = max(lane_count(self._lanes), 1)
        height = area.height / lanes
        return min(max(height, self.options.min_lane_height), self.options.max_lane_height)

    def _time_scale(self, area: PlotArea) -> SlotTimeScale:
        first, last = self._slot_bounds()
        return SlotTimeScale.build(self.grid, first, last, area.left, area.right)

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        area = options.plot_area
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)
        scale = self._time_scale(area)
        lane_height = self._lane_height(area)
        padding = lane_height * options.lane_padding_fraction
        energy_peak = self.max_slice_energy()
        # One "pretty" upper bound shared by every lane (synchronised scales).
        energy_top = pretty_ticks(0.0, energy_peak, max_ticks=4)[-1]
        if energy_top < energy_peak:
            energy_top = energy_peak

        scene.add(time_axis(area, scale))
        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=(
                    f"{len(self.offers)} flex-offers, {lane_count(self._lanes)} lanes, "
                    f"shared energy scale 0..{energy_top:g} kWh/slot"
                ),
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="view-caption",
            )
        )

        marks = Group(name="marks")
        scene.add(marks)
        for offer in self.offers:
            lane = self._lanes[offer.id]
            lane_top = area.top + lane * lane_height
            energy_scale = LinearScale(
                0.0, energy_top, lane_top + lane_height - padding, lane_top + padding
            )
            marks.add(self._offer_group(offer, scale, energy_scale, lane_top, lane_height))

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [
                        ("energy band (min..max)", Palette.ENERGY_BAND),
                        ("minimum energy", Palette.ENERGY_MIN),
                        ("scheduled energy", Palette.SCHEDULE),
                        ("time flexibility", Palette.TIME_FLEXIBILITY),
                    ],
                )
            )
        return scene

    def _offer_group(
        self,
        offer: FlexOffer,
        scale: SlotTimeScale,
        energy_scale: LinearScale,
        lane_top: float,
        lane_height: float,
    ) -> Group:
        group = Group(name=f"offer-{offer.id}", element_id=f"fo:{offer.id}")
        baseline = energy_scale.project(0.0)

        # Lane separator and the grey time-flexibility band behind the bars.
        group.add(
            Line(
                x1=self.options.plot_area.left,
                y1=lane_top + lane_height,
                x2=self.options.plot_area.right,
                y2=lane_top + lane_height,
                style=Style(stroke=Palette.AXIS.with_alpha(0.2), stroke_width=0.5),
                css_class="lane-separator",
            )
        )
        span_left = scale.project(offer.earliest_start_slot)
        span_right = scale.project(offer.latest_end_slot)
        group.add(
            Rect(
                x=span_left,
                y=lane_top + 1,
                width=max(span_right - span_left, 1.0),
                height=lane_height - 2,
                style=Style(fill=Palette.TIME_FLEXIBILITY.with_alpha(0.35)),
                element_id=f"fo:{offer.id}",
                css_class="time-flexibility",
            )
        )

        start_slot = offer.schedule.start_slot if offer.schedule is not None else offer.earliest_start_slot
        position = start_slot
        for index, piece in enumerate(offer.profile):
            for extra in range(piece.duration_slots):
                slot = position + extra
                left = scale.project(slot)
                right = scale.project(slot + 1)
                width = max(right - left - 0.5, 0.8)
                low = piece.min_energy / piece.duration_slots
                high = piece.max_energy / piece.duration_slots
                y_low = energy_scale.project(low)
                y_high = energy_scale.project(high)
                # Band between min and max energy.
                group.add(
                    Rect(
                        x=left,
                        y=y_high,
                        width=width,
                        height=max(y_low - y_high, 0.5),
                        style=Style(fill=Palette.ENERGY_BAND.with_alpha(0.85)),
                        element_id=f"fo:{offer.id}",
                        css_class="energy-band",
                        tooltip=(
                            f"flex-offer {offer.id} slice {index}: "
                            f"{piece.min_energy:.2f}-{piece.max_energy:.2f} kWh"
                        ),
                    )
                )
                # Solid bar up to the minimum energy.
                group.add(
                    Rect(
                        x=left,
                        y=y_low,
                        width=width,
                        height=max(baseline - y_low, 0.5),
                        style=Style(fill=Palette.ENERGY_MIN.with_alpha(0.9)),
                        element_id=f"fo:{offer.id}",
                        css_class="energy-min",
                    )
                )
            # Scheduled amount: a red horizontal line across the slice.
            if offer.schedule is not None:
                amount = offer.schedule.energy_per_slice[index] / piece.duration_slots
                y_sched = energy_scale.project(amount)
                group.add(
                    Line(
                        x1=scale.project(position),
                        y1=y_sched,
                        x2=scale.project(position + piece.duration_slots),
                        y2=y_sched,
                        style=Style(stroke=Palette.SCHEDULE, stroke_width=1.6),
                        element_id=f"fo:{offer.id}",
                        css_class="scheduled-energy",
                    )
                )
            position += piece.duration_slots

        if self.options.show_lane_scale:
            group.add(
                Text(
                    x=self.options.plot_area.left - 6,
                    y=lane_top + lane_height / 2 + 3,
                    text=f"#{offer.id}",
                    style=Style(fill=Palette.AXIS, font_size=8.0),
                    anchor="end",
                    css_class="lane-label",
                )
            )
        return group

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def offers_in_rectangle(self, left: float, top: float, right: float, bottom: float) -> list[int]:
        """Ids of offers whose lane band intersects the pixel rectangle."""
        area = self.options.plot_area
        scale = self._time_scale(area)
        lane_height = self._lane_height(area)
        found: list[int] = []
        for offer in self.offers:
            lane = self._lanes[offer.id]
            lane_top = area.top + lane * lane_height
            lane_bottom = lane_top + lane_height
            box_left = scale.project(offer.earliest_start_slot)
            box_right = scale.project(offer.latest_end_slot)
            if box_left <= right and box_right >= left and lane_top <= bottom and lane_bottom >= top:
                found.append(offer.id)
        return found

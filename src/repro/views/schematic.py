"""The schematic (grid-topology) view of flex-offers (Figure 4).

Figure 4 shows the electrical structure of the grid as a node-link diagram
with, at each node, a pie chart of the accepted / assigned / rejected shares
of the flex-offers electrically attached below that node.  The reproduction
lays the synthetic topology out with the nodes' geographic coordinates
(falling back to a networkx spring layout when coordinates are missing) and
aggregates states with the OLAP cube's grid dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import networkx as nx

from repro.datagen.grid import GridTopology, NodeKind
from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.olap.cube import FlexOfferCube, GroupBy
from repro.render.axes import legend
from repro.render.color import Palette
from repro.render.scales import LinearScale
from repro.render.scene import Circle, Group, Line, Scene, Style, Text, Wedge
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions

_STATE_ORDER = (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)


@dataclass(frozen=True)
class SchematicViewOptions(ViewOptions):
    """Options specific to the schematic view."""

    #: Topology level whose nodes get pie charts: "transmission", "distribution" or "feeder".
    level: str = "distribution"
    pie_radius: float = 18.0
    show_legend: bool = True
    show_labels: bool = True


class SchematicView(FlexOfferView):
    """Figure 4: grid topology with per-node state pies."""

    view_name = "schematic view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        topology: GridTopology,
        grid: TimeGrid,
        options: SchematicViewOptions | None = None,
    ) -> None:
        super().__init__(options or SchematicViewOptions())
        self.offers = list(offers)
        self.topology = topology
        self.grid = grid
        self.cube = FlexOfferCube(self.offers, grid, topology=topology)

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def node_positions(self) -> dict[str, tuple[float, float]]:
        """Pixel position of every topology node shown in the diagram."""
        area = self.options.plot_area
        shown = self._shown_nodes()
        coords = {
            node.name: (node.longitude, node.latitude)
            for node in shown
            if node.latitude or node.longitude
        }
        if len(coords) < len(shown):
            layout = nx.spring_layout(self.topology.graph.subgraph([n.name for n in shown]), seed=4)
            coords = {name: (float(x), float(y)) for name, (x, y) in layout.items()}
        xs = [x for x, _ in coords.values()]
        ys = [y for _, y in coords.values()]
        x_scale = LinearScale(min(xs) - 0.2, max(xs) + 0.2, area.left + 40, area.right - 40)
        y_scale = LinearScale(min(ys) - 0.2, max(ys) + 0.2, area.bottom - 30, area.top + 30)
        return {name: (x_scale.project(x), y_scale.project(y)) for name, (x, y) in coords.items()}

    def _shown_nodes(self):
        level_kinds = {
            "transmission": (NodeKind.TRANSMISSION,),
            "distribution": (NodeKind.TRANSMISSION, NodeKind.DISTRIBUTION),
            "feeder": (NodeKind.TRANSMISSION, NodeKind.DISTRIBUTION, NodeKind.FEEDER),
        }[self.options.level]
        return [node for node in self.topology.nodes.values() if node.kind in level_kinds]

    def state_shares(self) -> dict[str, dict[str, float]]:
        """Per shown node: counts of flex-offers per state (rolled up the topology)."""
        level = {
            "transmission": "transmission",
            "distribution": "distribution",
            "feeder": "feeder",
        }[self.options.level]
        cell_set = self.cube.aggregate(
            [GroupBy("Grid", level), GroupBy("State", "state")], ["flex_offer_count"]
        )
        shares: dict[str, dict[str, float]] = {}
        for cell in cell_set.cells:
            node, state = cell.coordinates
            shares.setdefault(node, {})[state] = cell.values["flex_offer_count"]
        return shares

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        area = options.plot_area
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)
        positions = self.node_positions()
        shares = self.state_shares()
        shown_names = set(positions)

        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=f"grid topology ({options.level} level), state share per node",
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="view-caption",
            )
        )

        edges = Group(name="edges")
        scene.add(edges)
        for line in self.topology.lines:
            if line.source not in shown_names or line.target not in shown_names:
                continue
            x1, y1 = positions[line.source]
            x2, y2 = positions[line.target]
            width = 2.5 if line.voltage_kv >= 400 else 1.5 if line.voltage_kv >= 150 else 0.8
            edges.add(
                Line(
                    x1=x1,
                    y1=y1,
                    x2=x2,
                    y2=y2,
                    style=Style(stroke=Palette.AXIS.with_alpha(0.5), stroke_width=width),
                    element_id=f"line:{line.source}->{line.target}",
                    css_class=f"grid-line kv{line.voltage_kv:.0f}",
                )
            )

        marks = Group(name="marks")
        scene.add(marks)
        for name, (x, y) in sorted(positions.items()):
            node = self.topology.nodes[name]
            node_shares = shares.get(name, {})
            total = sum(node_shares.values())
            glyph = Group(name=f"node-{name}", element_id=f"node:{name}")
            if total <= 0:
                glyph.add(
                    Circle(
                        cx=x,
                        cy=y,
                        radius=5.0,
                        style=Style(fill=Palette.AXIS.with_alpha(0.4)),
                        element_id=f"node:{name}",
                        css_class="grid-node empty",
                        tooltip=f"{name}: no flex-offers",
                    )
                )
            else:
                angle = 0.0
                for state in _STATE_ORDER:
                    value = node_shares.get(state.value, 0.0)
                    if value <= 0:
                        continue
                    sweep = 360.0 * value / total
                    glyph.add(
                        Wedge(
                            cx=x,
                            cy=y,
                            radius=options.pie_radius,
                            start_angle=angle,
                            end_angle=angle + sweep,
                            style=Style(fill=Palette.state_color(state.value), stroke=Palette.PANEL, stroke_width=0.5),
                            element_id=f"node:{name}:{state.value}",
                            css_class=f"state-wedge {state.value}",
                            tooltip=f"{name} {state.value}: {value:.0f} ({100 * value / total:.0f}%)",
                        )
                    )
                    angle += sweep
            if options.show_labels and node.kind is not NodeKind.FEEDER:
                glyph.add(
                    Text(
                        x=x,
                        y=y + options.pie_radius + 12,
                        text=name,
                        style=Style(fill=Palette.AXIS, font_size=9.0),
                        anchor="middle",
                        css_class="node-label",
                    )
                )
            marks.add(glyph)

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [(state.value, Palette.state_color(state.value)) for state in _STATE_ORDER],
                )
            )
        return scene

    # ------------------------------------------------------------------
    # Interaction: drill from a node into a topological filter
    # ------------------------------------------------------------------
    def offers_under_node(self, node_name: str) -> list[FlexOffer]:
        """All offers served (directly or downstream) by ``node_name``."""
        graph = self.topology.graph
        if node_name not in graph:
            return []
        reachable = {node_name}
        # Downstream = neighbours with strictly lower voltage kind ordering.
        order = {NodeKind.TRANSMISSION: 0, NodeKind.DISTRIBUTION: 1, NodeKind.FEEDER: 2}
        frontier = [node_name]
        while frontier:
            current = frontier.pop()
            current_kind = self.topology.nodes[current].kind
            for neighbour in graph.neighbors(current):
                neighbour_kind = self.topology.nodes[neighbour].kind
                if order[neighbour_kind] > order[current_kind] and neighbour not in reachable:
                    reachable.add(neighbour)
                    frontier.append(neighbour)
        return [offer for offer in self.offers if offer.grid_node in reachable]

"""The flex-offer loading workflow (Figure 7).

Figure 7 shows the loading tab of the main window: the analyst connects to the
data warehouse, chooses a *legal entity* (prosumer) and an *absolute time
interval*, and reading the matching flex-offers opens a new view tab.  The
headless counterpart wraps the warehouse repository and returns
:class:`LoadedDataset` objects that the framework turns into tabs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any

from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid
from repro.warehouse.query import FlexOfferFilter, FlexOfferRepository


@dataclass
class LoadedDataset:
    """One successful read operation, ready to be shown on a view tab."""

    title: str
    offers: list[FlexOffer]
    filter: FlexOfferFilter
    scanned_rows: int
    grid: TimeGrid

    def __len__(self) -> int:
        return len(self.offers)


@dataclass
class LoadingWorkflow:
    """The loading tab's state: connection, entity choice and time interval."""

    repository: FlexOfferRepository
    grid: TimeGrid
    history: list[LoadedDataset] = field(default_factory=list)

    # ------------------------------------------------------------------
    # What the combo boxes of the loading tab offer
    # ------------------------------------------------------------------
    def available_entities(self) -> list[dict[str, Any]]:
        """Legal entities the analyst can choose from."""
        return self.repository.legal_entities()

    def available_states(self) -> list[str]:
        """Distinct flex-offer states stored in the warehouse."""
        return [str(value) for value in self.repository.known_values("state")]

    def warehouse_summary(self) -> dict[str, Any]:
        """Row counts etc. shown next to the connection settings."""
        return self.repository.summary()

    # ------------------------------------------------------------------
    # The read operations
    # ------------------------------------------------------------------
    def load_entity(
        self,
        entity_id: int,
        interval_start: datetime | None = None,
        interval_end: datetime | None = None,
    ) -> LoadedDataset:
        """Read the flex-offers of one legal entity within an absolute interval."""
        known = {entity["entity_id"] for entity in self.available_entities()}
        if entity_id not in known:
            raise ViewError(f"unknown legal entity {entity_id}")
        result = self.repository.load_for_entity(entity_id, interval_start, interval_end)
        title = f"entity {entity_id}"
        if interval_start or interval_end:
            title += f" [{interval_start:%Y-%m-%d %H:%M} .. {interval_end:%Y-%m-%d %H:%M}]" if interval_start and interval_end else " (interval)"
        dataset = LoadedDataset(
            title=title,
            offers=result.offers,
            filter=result.filter,
            scanned_rows=result.scanned_rows,
            grid=self.grid,
        )
        self.history.append(dataset)
        return dataset

    def load_filtered(self, query: FlexOfferFilter, title: str | None = None) -> LoadedDataset:
        """Read flex-offers matching an arbitrary attribute filter."""
        result = self.repository.load(query)
        dataset = LoadedDataset(
            title=title or query.describe(),
            offers=result.offers,
            filter=query,
            scanned_rows=result.scanned_rows,
            grid=self.grid,
        )
        self.history.append(dataset)
        return dataset

    def load_all(self) -> LoadedDataset:
        """Read every flex-offer in the warehouse."""
        return self.load_filtered(FlexOfferFilter(), title="all flex-offers")

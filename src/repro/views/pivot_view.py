"""The pivot view of flex-offers (Figure 5).

The pivot view is the OLAP navigation surface of the framework: the analyst
picks a dimension hierarchy (e.g. prosumer type), navigates its members from
the most summarised ("All prosumers") to the most detailed (e.g. "household"),
and sees one *swimlane* per member with the chosen measure plotted over time.
An MDX query window is part of the view: the rendered scene embeds the query
text, and :meth:`PivotView.run_mdx` executes a manual query against the same
cube.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer
from repro.olap.cube import FlexOfferCube, GroupBy, MemberFilter
from repro.olap.mdx import execute as execute_mdx
from repro.olap.pivot import PivotTable, pivot
from repro.render.axes import PlotArea
from repro.render.color import Palette
from repro.render.scales import LinearScale
from repro.render.scene import Group, Line, Rect, Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions


@dataclass(frozen=True)
class PivotViewOptions(ViewOptions):
    """Options specific to the pivot view."""

    #: Dimension shown on the swimlanes (rows).
    row_dimension: str = "Prosumer"
    row_level: str = "prosumer_type"
    #: Dimension shown along the abscissa (columns) — time by default.
    column_dimension: str = "Time"
    column_level: str = "hour"
    #: Measure plotted inside each swimlane.
    measure: str = "flex_offer_count"
    #: Height of one swimlane in pixels.
    lane_height: float = 70.0
    #: Extra filters applied before pivoting.
    filters: tuple[MemberFilter, ...] = field(default_factory=tuple)
    #: Query text shown in the MDX window area of the view.
    mdx_text: str = ""


class PivotView(FlexOfferView):
    """Figure 5: OLAP pivot with per-member swimlanes over time."""

    view_name = "pivot view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        options: PivotViewOptions | None = None,
        cube: FlexOfferCube | None = None,
    ) -> None:
        super().__init__(options or PivotViewOptions())
        self.offers = list(offers)
        self.grid = grid
        self.cube = cube if cube is not None else FlexOfferCube(self.offers, grid)

    # ------------------------------------------------------------------
    # OLAP plumbing
    # ------------------------------------------------------------------
    def pivot_table(self) -> PivotTable:
        """The pivot table behind the swimlanes."""
        options = self.options
        return pivot(
            self.cube,
            GroupBy(options.row_dimension, options.row_level),
            GroupBy(options.column_dimension, options.column_level),
            [options.measure],
            filters=options.filters,
        )

    def drill_down(self) -> "PivotView":
        """Return a new view one level deeper on the row dimension (no-op at the leaf)."""
        dimension = self.cube.dimension(self.options.row_dimension)
        finer = dimension.drill_down_level(self.options.row_level)
        if finer is None:
            return self
        options = replace(self.options, row_level=finer.name)
        return PivotView(self.offers, self.grid, options=options, cube=self.cube)

    def drill_up(self) -> "PivotView":
        """Return a new view one level higher on the row dimension (no-op at the root)."""
        dimension = self.cube.dimension(self.options.row_dimension)
        coarser = dimension.drill_up_level(self.options.row_level)
        if coarser is None:
            return self
        options = replace(self.options, row_level=coarser.name)
        return PivotView(self.offers, self.grid, options=options, cube=self.cube)

    def run_mdx(self, query_text: str) -> PivotTable:
        """Execute a manual MDX query (the Figure 5 query window) against the cube."""
        if not query_text.strip():
            raise ViewError("MDX query text is empty")
        return execute_mdx(self.cube, query_text)

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        table = self.pivot_table()
        rows = table.row_members or ["(no data)"]
        lane_count = len(rows)
        header_height = 46.0
        needed_height = options.margin_top + header_height + lane_count * options.lane_height + options.margin_bottom
        height = max(options.height, needed_height)
        scene = Scene(width=options.width, height=height, title=self.view_name, background=Palette.PANEL)
        area = PlotArea(
            left=options.margin_left + 110,
            top=options.margin_top + header_height,
            width=options.width - options.margin_left - 110 - options.margin_right,
            height=lane_count * options.lane_height,
        )

        # MDX query window (header area).
        mdx_text = options.mdx_text or self.default_mdx()
        scene.add(
            Rect(
                x=options.margin_left,
                y=options.margin_top,
                width=options.width - options.margin_left - options.margin_right,
                height=header_height - 10,
                style=Style(fill=Palette.PANEL.lighten(0.5), stroke=Palette.AXIS.with_alpha(0.5)),
                css_class="mdx-window",
            )
        )
        scene.add(
            Text(
                x=options.margin_left + 6,
                y=options.margin_top + 15,
                text="MDX query window",
                style=Style(fill=Palette.AXIS, font_size=9.0),
                css_class="mdx-caption",
            )
        )
        scene.add(
            Text(
                x=options.margin_left + 6,
                y=options.margin_top + 29,
                text=mdx_text[:160],
                style=Style(fill=Palette.AXIS, font_size=9.0),
                css_class="mdx-text",
            )
        )

        columns = table.column_members
        if not columns:
            return scene
        column_scale = LinearScale(0, len(columns), area.left, area.right)
        peak = max(
            (max(row) for row in table.values[options.measure] if row), default=1.0
        )
        peak = max(peak, 1.0)

        marks = Group(name="marks")
        scene.add(marks)
        for row_index, member in enumerate(rows):
            lane_top = area.top + row_index * options.lane_height
            lane = Group(name=f"swimlane-{member}", element_id=f"member:{member}")
            lane.add(
                Rect(
                    x=area.left,
                    y=lane_top,
                    width=area.width,
                    height=options.lane_height - 4,
                    style=Style(
                        fill=Palette.PANEL.lighten(0.4) if row_index % 2 else Palette.PANEL,
                        stroke=Palette.AXIS.with_alpha(0.3),
                        stroke_width=0.5,
                    ),
                    css_class="swimlane",
                    element_id=f"member:{member}",
                )
            )
            lane.add(
                Text(
                    x=area.left - 8,
                    y=lane_top + options.lane_height / 2,
                    text=str(member),
                    style=Style(fill=Palette.AXIS, font_size=10.0),
                    anchor="end",
                    css_class="swimlane-label",
                )
            )
            value_scale = LinearScale(0.0, peak, lane_top + options.lane_height - 6, lane_top + 6)
            color = Palette.categorical(row_index)
            if table.row_members:
                row_values = table.values[options.measure][row_index]
            else:
                row_values = []
            for column_index, value in enumerate(row_values):
                x_left = column_scale.project(column_index) + 1
                x_right = column_scale.project(column_index + 1) - 1
                y_value = value_scale.project(value)
                baseline = value_scale.project(0.0)
                lane.add(
                    Rect(
                        x=x_left,
                        y=y_value,
                        width=max(x_right - x_left, 1.0),
                        height=max(baseline - y_value, 0.0),
                        style=Style(fill=color.with_alpha(0.85)),
                        element_id=f"cell:{member}:{columns[column_index]}",
                        css_class="swimlane-bar",
                        tooltip=f"{member} @ {columns[column_index]}: {value:g} {options.measure}",
                    )
                )
            marks.add(lane)

        # Column labels along the bottom.
        label_every = max(len(columns) // 12, 1)
        for column_index, column in enumerate(columns):
            if column_index % label_every:
                continue
            x = column_scale.project(column_index + 0.5)
            scene.add(
                Text(
                    x=x,
                    y=area.bottom + 14,
                    text=str(column)[-5:],
                    style=Style(fill=Palette.AXIS, font_size=8.0),
                    anchor="middle",
                    css_class="column-label",
                )
            )
        scene.add(
            Line(
                x1=area.left,
                y1=area.bottom,
                x2=area.right,
                y2=area.bottom,
                style=Style(stroke=Palette.AXIS, stroke_width=1.0),
            )
        )
        scene.add(
            Text(
                x=area.left,
                y=area.top - 6,
                text=f"measure: {options.measure}  rows: {options.row_dimension}.{options.row_level}  "
                f"columns: {options.column_dimension}.{options.column_level}",
                style=Style(fill=Palette.AXIS, font_size=10.0),
                css_class="view-caption",
            )
        )
        return scene

    def default_mdx(self) -> str:
        """The MDX text equivalent to the view's current configuration."""
        return (
            f"SELECT {{[Measures].[{self.options.measure}]}} ON COLUMNS, "
            f"{{[{self.options.row_dimension}].[{self.options.row_level}].Members}} ON ROWS "
            f"FROM [FlexOffers]"
        )

"""Selection model: the headless counterpart of the tool's mouse selection.

"The mouse action can be changed to allow interactive selection of flex-offers.
Flex-offers can be selected one-by-one or by drawing a rectangle … The selected
flex-offers can be shown on a different tab, removed from the current view, or
processed with the tools from the main menu." (Section 4)

The model keeps a set of selected offer ids over a fixed offer collection and
supports point selection, rectangle selection (in either pixel space against a
rendered view, or domain space as slot/lane ranges), toggling and the three
follow-up actions quoted above.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer


@dataclass(frozen=True)
class SelectionRectangle:
    """A rectangle in view pixel coordinates (as drawn with the mouse)."""

    x1: float
    y1: float
    x2: float
    y2: float

    def normalized(self) -> tuple[float, float, float, float]:
        """Return (left, top, right, bottom) regardless of drag direction."""
        return (
            min(self.x1, self.x2),
            min(self.y1, self.y2),
            max(self.x1, self.x2),
            max(self.y1, self.y2),
        )


class SelectionModel:
    """Tracks which flex-offers of a collection are currently selected."""

    def __init__(self, offers: Sequence[FlexOffer]) -> None:
        self._offers = {offer.id: offer for offer in offers}
        self._selected: set[int] = set()

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def selected_ids(self) -> set[int]:
        """Identifiers of the currently selected flex-offers."""
        return set(self._selected)

    def selected_offers(self) -> list[FlexOffer]:
        """The selected flex-offers, in id order."""
        return [self._offers[offer_id] for offer_id in sorted(self._selected)]

    def is_selected(self, offer_id: int) -> bool:
        """Whether ``offer_id`` is selected."""
        return offer_id in self._selected

    def __len__(self) -> int:
        return len(self._selected)

    # ------------------------------------------------------------------
    # Selection operations
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Deselect everything."""
        self._selected.clear()

    def select(self, offer_ids: Iterable[int], extend: bool = False) -> None:
        """Select the given ids (replacing the selection unless ``extend``)."""
        ids = {offer_id for offer_id in offer_ids if offer_id in self._offers}
        if extend:
            self._selected |= ids
        else:
            self._selected = ids

    def toggle(self, offer_id: int) -> None:
        """Toggle a single offer in or out of the selection (one-by-one clicking)."""
        if offer_id not in self._offers:
            raise ViewError(f"unknown flex-offer id {offer_id}")
        if offer_id in self._selected:
            self._selected.remove(offer_id)
        else:
            self._selected.add(offer_id)

    def select_rectangle(self, view: "object", rectangle: SelectionRectangle, extend: bool = False) -> set[int]:
        """Select every offer whose box intersects a pixel rectangle of ``view``.

        ``view`` must expose ``offers_in_rectangle(left, top, right, bottom)``
        (the basic and profile views do); the method returns the ids it added.
        """
        finder = getattr(view, "offers_in_rectangle", None)
        if finder is None:
            raise ViewError(f"{type(view).__name__} does not support rectangle selection")
        left, top, right, bottom = rectangle.normalized()
        found = set(finder(left, top, right, bottom))
        self.select(found, extend=extend)
        return found

    def select_slot_range(self, first_slot: int, last_slot: int, extend: bool = False) -> set[int]:
        """Select offers whose feasible span overlaps the slot range ``[first, last)``."""
        found = {
            offer.id
            for offer in self._offers.values()
            if offer.earliest_start_slot < last_slot and offer.latest_end_slot > first_slot
        }
        self.select(found, extend=extend)
        return found

    # ------------------------------------------------------------------
    # Follow-up actions (Section 4)
    # ------------------------------------------------------------------
    def extract_to_new_tab(self) -> list[FlexOffer]:
        """Return the selected offers (to be shown on a different tab)."""
        return self.selected_offers()

    def remove_from_view(self) -> list[FlexOffer]:
        """Return the *remaining* offers after removing the selected ones."""
        return [offer for offer_id, offer in sorted(self._offers.items()) if offer_id not in self._selected]

    def process_with(self, tool) -> object:
        """Apply a processing tool (a callable taking a list of offers) to the selection."""
        return tool(self.selected_offers())

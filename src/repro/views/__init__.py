"""The flex-offer visualization views (the paper's core contribution)."""

from repro.views.aggregation_panel import (
    AggregationPanel,
    AggregationPanelView,
    AggregationPanelViewOptions,
    SweepPoint,
)
from repro.views.base import FlexOfferView, ViewOptions
from repro.views.basic import BasicView, BasicViewOptions
from repro.views.dashboard import BalanceView, BalanceViewOptions, DashboardOptions, DashboardView
from repro.views.framework import (
    MaterializedViewTab,
    ViewKind,
    ViewTab,
    VisualAnalysisFramework,
)
from repro.views.integrated_pivot import IntegratedPivotOptions, IntegratedPivotView
from repro.views.lanes import LaneStrategy, assign_lanes, lane_count, lanes_are_valid, offer_interval
from repro.views.loading import LoadedDataset, LoadingWorkflow
from repro.views.map_view import MapView, MapViewOptions
from repro.views.pivot_view import PivotView, PivotViewOptions
from repro.views.profile_view import ProfileView, ProfileViewOptions
from repro.views.schematic import SchematicView, SchematicViewOptions
from repro.views.selection import SelectionModel, SelectionRectangle
from repro.views.tooltip import FlexOfferDetails, describe, describe_many, overlay

__all__ = [
    "FlexOfferView",
    "ViewOptions",
    "BasicView",
    "BasicViewOptions",
    "ProfileView",
    "ProfileViewOptions",
    "MapView",
    "MapViewOptions",
    "SchematicView",
    "SchematicViewOptions",
    "PivotView",
    "PivotViewOptions",
    "IntegratedPivotView",
    "IntegratedPivotOptions",
    "DashboardView",
    "DashboardOptions",
    "BalanceView",
    "BalanceViewOptions",
    "AggregationPanel",
    "AggregationPanelView",
    "AggregationPanelViewOptions",
    "SweepPoint",
    "LaneStrategy",
    "assign_lanes",
    "lane_count",
    "lanes_are_valid",
    "offer_interval",
    "SelectionModel",
    "SelectionRectangle",
    "FlexOfferDetails",
    "describe",
    "describe_many",
    "overlay",
    "LoadedDataset",
    "LoadingWorkflow",
    "MaterializedViewTab",
    "ViewKind",
    "ViewTab",
    "VisualAnalysisFramework",
]

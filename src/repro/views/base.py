"""Common infrastructure of the flex-offer views.

Every view is headless: it builds a :class:`~repro.render.scene.Scene` from
its domain inputs and can serialise it to SVG or ASCII.  Views memoise the
built scene so that repeated exports (or hit-tests) do not rebuild it; any
mutation of the view's inputs must go through :meth:`FlexOfferView.invalidate`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ViewError
from repro.render.ascii_backend import render_ascii
from repro.render.axes import PlotArea
from repro.render.scene import Scene
from repro.render.svg import render_svg, save_svg


@dataclass(frozen=True)
class ViewOptions:
    """Canvas geometry shared by all views."""

    width: float = 960.0
    height: float = 540.0
    margin_left: float = 70.0
    margin_right: float = 30.0
    margin_top: float = 40.0
    margin_bottom: float = 60.0

    def __post_init__(self) -> None:
        if self.width <= self.margin_left + self.margin_right:
            raise ViewError("view width is smaller than its horizontal margins")
        if self.height <= self.margin_top + self.margin_bottom:
            raise ViewError("view height is smaller than its vertical margins")

    @property
    def plot_area(self) -> PlotArea:
        """The data region inside the margins."""
        return PlotArea(
            left=self.margin_left,
            top=self.margin_top,
            width=self.width - self.margin_left - self.margin_right,
            height=self.height - self.margin_top - self.margin_bottom,
        )


class FlexOfferView:
    """Base class of every view in the framework."""

    #: Human-readable name shown as the tab title.
    view_name = "view"

    def __init__(self, options: ViewOptions | None = None) -> None:
        self.options = options or ViewOptions()
        self._scene: Scene | None = None

    # ------------------------------------------------------------------
    # Scene lifecycle
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        """Build the scene graph (implemented by concrete views)."""
        raise NotImplementedError

    def scene(self) -> Scene:
        """The (memoised) scene of the view."""
        if self._scene is None:
            self._scene = self.build_scene()
        return self._scene

    def invalidate(self) -> None:
        """Drop the memoised scene so the next access rebuilds it."""
        self._scene = None

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_svg(self) -> str:
        """The view rendered as an SVG document string."""
        return render_svg(self.scene())

    def save_svg(self, path: str) -> str:
        """Render to SVG and write it to ``path``."""
        return save_svg(self.scene(), path)

    def to_ascii(self, columns: int = 100) -> str:
        """The view rendered as ASCII art."""
        return render_ascii(self.scene(), columns=columns)

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def elements_at(self, x: float, y: float) -> list[str]:
        """Element identifiers under the pixel (x, y) — the mouse-pointer query."""
        return [node.element_id for node in self.scene().hit_test(x, y) if node.element_id]

"""The visual analysis framework facade.

Section 4 describes the tool's main window: a loading tab plus one tab per
read operation, where each tab shows a set of flex-offers in the basic or the
profile view and offers the aggregation tools, selection and on-the-fly
details.  :class:`VisualAnalysisFramework` is the headless facade over all of
that: it owns the warehouse connection, opens tabs, switches views, applies
aggregation and exports any open view to SVG/ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from enum import Enum
from typing import TYPE_CHECKING, Sequence

from repro.aggregation.parameters import AggregationParameters
from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid
from repro.views.aggregation_panel import AggregationPanel
from repro.views.base import FlexOfferView
from repro.views.basic import BasicView
from repro.views.dashboard import DashboardView
from repro.views.loading import LoadedDataset, LoadingWorkflow
from repro.views.map_view import MapView
from repro.views.pivot_view import PivotView
from repro.views.profile_view import ProfileView
from repro.views.schematic import SchematicView
from repro.views.selection import SelectionModel
from repro.views.tooltip import FlexOfferDetails, describe

if TYPE_CHECKING:  # pragma: no cover - typing only (datagen is numpy-native;
    # the framework just holds a scenario reference for its tabs)
    from repro.datagen.scenarios import Scenario


class ViewKind(str, Enum):
    """The view types a tab can show."""

    BASIC = "basic"
    PROFILE = "profile"
    MAP = "map"
    SCHEMATIC = "schematic"
    PIVOT = "pivot"
    DASHBOARD = "dashboard"


@dataclass
class ViewTab:
    """One tab of the main window: a dataset plus its current view and selection."""

    title: str
    offers: list[FlexOffer]
    grid: TimeGrid
    kind: ViewKind = ViewKind.BASIC
    selection: SelectionModel = field(init=False)
    _scenario: Scenario | None = None

    def __post_init__(self) -> None:
        self.selection = SelectionModel(self.offers)

    def view(self, **options) -> FlexOfferView:
        """Build the tab's current view object."""
        if self.kind is ViewKind.BASIC:
            return BasicView(self.offers, self.grid, options=options.get("basic"))
        if self.kind is ViewKind.PROFILE:
            return ProfileView(self.offers, self.grid, options=options.get("profile"))
        if self.kind is ViewKind.DASHBOARD:
            return DashboardView(self.offers, self.grid, options=options.get("dashboard"))
        if self.kind is ViewKind.PIVOT:
            return PivotView(self.offers, self.grid, options=options.get("pivot"))
        if self._scenario is None:
            raise ViewError(f"{self.kind.value} view needs scenario master data (geography/topology)")
        if self.kind is ViewKind.MAP:
            return MapView(self.offers, self._scenario.geography, self.grid, options=options.get("map"))
        if self.kind is ViewKind.SCHEMATIC:
            return SchematicView(self.offers, self._scenario.topology, self.grid, options=options.get("schematic"))
        raise ViewError(f"unsupported view kind {self.kind}")

    def switch_view(self, kind: ViewKind) -> None:
        """Change which view the tab shows."""
        self.kind = kind

    def details_of(self, offer_id: int) -> FlexOfferDetails:
        """The on-the-fly details of one offer in the tab (Figure 10)."""
        for offer in self.offers:
            if offer.id == offer_id:
                return describe(offer, self.grid)
        raise ViewError(f"tab {self.title!r} has no flex-offer {offer_id}")

    def aggregation_panel(self, parameters: AggregationParameters | None = None) -> AggregationPanel:
        """The Figure 11 aggregation tools bound to this tab's offers."""
        return AggregationPanel(self.offers, self.grid, parameters)

    def apply_aggregation(self, parameters: AggregationParameters | None = None) -> "ViewTab":
        """Replace the tab's offers with their aggregation (what the Apply button does)."""
        panel = self.aggregation_panel(parameters)
        self.offers = panel.aggregated_offers()
        self.selection = SelectionModel(self.offers)
        return self

    def extract_selection(self, title: str | None = None) -> "ViewTab":
        """Open the current selection as a new tab (the "show on different tab" action)."""
        selected = self.selection.extract_to_new_tab()
        tab = ViewTab(
            title=title or f"{self.title} (selection)",
            offers=selected,
            grid=self.grid,
            kind=self.kind,
            _scenario=self._scenario,
        )
        return tab

    def remove_selection(self) -> None:
        """Remove the selected offers from the tab (the "remove from view" action)."""
        self.offers = self.selection.remove_from_view()
        self.selection = SelectionModel(self.offers)


@dataclass
class MaterializedViewTab(ViewTab):
    """A tab backed by a materialized view: redraws only changed aggregates.

    The paper's incremental-rendering claim, closed end to end: the session
    maintains the standing spec from commit deltas (see
    :mod:`repro.session.materialize`), and :meth:`sync` diffs the view's
    current result against the tab's mirror *by object identity* — offers the
    deltas never touched are the same objects, so only aggregates that
    actually changed come back for redraw.  ``self.offers`` is refreshed in
    place, so the ordinary :meth:`ViewTab.view` renders the current state.
    """

    #: The delta-maintained view this tab mirrors (None only transiently
    #: during dataclass init; set by open_materialized_tab).
    source: "object | None" = None

    def sync(self) -> tuple[list[FlexOffer], list[int]]:
        """Pull the view's current result; returns (changed offers, removed ids).

        Cheap when nothing moved: the maintained result holds the *same*
        offer objects for untouched aggregates, so the identity diff returns
        two empty lists and the renderer has nothing to redraw.
        """
        if self.source is None:
            raise ViewError(f"tab {self.title!r} has no materialized view attached")
        mirror = {offer.id: offer for offer in self.offers}
        current = self.source.result.offers
        changed = [
            offer for offer in current if mirror.get(offer.id) is not offer
        ]
        current_ids = {offer.id for offer in current}
        removed = [offer_id for offer_id in mirror if offer_id not in current_ids]
        if changed or removed:
            self.offers = list(current)
            self.selection = SelectionModel(self.offers)
        return changed, removed

    @property
    def version(self) -> int:
        """The view's maintained version (the read path's snapshot version)."""
        if self.source is None:
            raise ViewError(f"tab {self.title!r} has no materialized view attached")
        return self.source.version


class VisualAnalysisFramework:
    """The main-window facade: warehouse connection plus view tabs.

    Since the ``repro.session`` redesign the framework is a thin shell over a
    :class:`~repro.session.facade.FlexSession` — the session owns the schema,
    the repository and the engines; the framework adds the tab workflow on
    top.  Constructing it from a bare :class:`Scenario` still works (a batch
    session is opened internally), so pre-session callers are unaffected.
    """

    def __init__(self, source) -> None:
        from repro.session.facade import FlexSession

        if isinstance(source, FlexSession):
            self.session = source
        else:
            self.session = FlexSession(source)
        self.scenario = self.session.scenario
        self.loading = LoadingWorkflow(self.session.repository, self.scenario.grid)
        self.tabs: list[ViewTab] = []

    @classmethod
    def from_session(cls, session) -> "VisualAnalysisFramework":
        """Open the main window over an existing session."""
        return cls(session)

    @property
    def schema(self):
        """The session's star schema (kept for pre-session callers)."""
        return self.session.schema

    @property
    def repository(self):
        """The session's index-backed repository (kept for pre-session callers)."""
        return self.session.repository

    # ------------------------------------------------------------------
    # Tab management (the Figure 7/8 workflow)
    # ------------------------------------------------------------------
    def open_tab_for_entity(
        self,
        entity_id: int,
        interval_start: datetime | None = None,
        interval_end: datetime | None = None,
        kind: ViewKind = ViewKind.BASIC,
    ) -> ViewTab:
        """Read one legal entity's flex-offers and open them in a new tab."""
        dataset = self.loading.load_entity(entity_id, interval_start, interval_end)
        return self._open_tab(dataset, kind)

    def open_tab_for_all(self, kind: ViewKind = ViewKind.BASIC) -> ViewTab:
        """Read every flex-offer and open one tab over them."""
        dataset = self.loading.load_all()
        return self._open_tab(dataset, kind)

    def open_tab_for_query(self, query, kind: ViewKind = ViewKind.BASIC, title: str | None = None) -> ViewTab:
        """Execute a fluent query (or bare spec) and open the result as a tab.

        ``query`` is an :class:`~repro.session.query.OfferQuery` or a
        :class:`~repro.session.spec.QuerySpec`; the tab title defaults to the
        spec's one-line description — the same text the loading tab shows.
        """
        from repro.session.query import OfferQuery
        from repro.session.spec import QuerySpec

        if isinstance(query, QuerySpec):
            query = OfferQuery(self.session, query)
        result = query.fetch()
        return self.open_tab_for_offers(
            result.offers, title=title or (result.spec.describe() or "all flex-offers"), kind=kind
        )

    def open_materialized_tab(
        self,
        query,
        kind: ViewKind = ViewKind.DASHBOARD,
        title: str | None = None,
        name: str = "",
    ) -> MaterializedViewTab:
        """Open a tab over a delta-maintained materialized view of ``query``.

        ``query`` is an :class:`~repro.session.query.OfferQuery`, a
        :class:`~repro.session.spec.QuerySpec`, or an already-registered
        :class:`~repro.session.materialize.MaterializedView`.  The tab's
        :meth:`~MaterializedViewTab.sync` then redraws only the aggregates
        each commit actually changed — no warehouse reload, no re-query.
        """
        from repro.session.materialize import MaterializedView

        if isinstance(query, MaterializedView):
            view = query
        else:
            view = self.session.materialize(query, name=name)
        tab = MaterializedViewTab(
            title=title or f"{view.name} (materialized)",
            offers=list(view.result.offers),
            grid=self.scenario.grid,
            kind=kind,
            _scenario=self.scenario,
            source=view,
        )
        self.tabs.append(tab)
        return tab

    def open_tab_for_offers(
        self, offers: Sequence[FlexOffer], title: str, kind: ViewKind = ViewKind.BASIC
    ) -> ViewTab:
        """Open a tab over an explicit offer list (e.g. a selection or an aggregation result)."""
        tab = ViewTab(title=title, offers=list(offers), grid=self.scenario.grid, kind=kind, _scenario=self.scenario)
        self.tabs.append(tab)
        return tab

    def _open_tab(self, dataset: LoadedDataset, kind: ViewKind) -> ViewTab:
        tab = ViewTab(
            title=dataset.title,
            offers=dataset.offers,
            grid=dataset.grid,
            kind=kind,
            _scenario=self.scenario,
        )
        self.tabs.append(tab)
        return tab

    def close_tab(self, tab: ViewTab) -> None:
        """Close a tab."""
        if tab in self.tabs:
            self.tabs.remove(tab)

    @property
    def tab_titles(self) -> list[str]:
        """Titles of the open tabs (what the tab bar shows)."""
        return [tab.title for tab in self.tabs]

"""The aggregation tools panel (Figure 11).

The tool "integrates the flex-offer aggregation and disaggregation
functionalities.  This allows, for example, reducing the count of flex-offers
shown on a screen by aggregation, as well as allows interactive tuning values
of the aggregation parameters."  The panel object is the headless counterpart:
it holds the current parameters, applies aggregation to a working set,
reports the reduction metrics, can sweep parameters (the interactive tuning),
and produces a side-by-side before/after basic view.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.aggregation.aggregate import AggregationResult, aggregate
from repro.aggregation.disaggregate import disaggregate
from repro.aggregation.metrics import AggregationMetrics, evaluate
from repro.aggregation.parameters import AggregationParameters
from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer
from repro.render.color import Palette
from repro.render.scene import Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions
from repro.views.basic import BasicView, BasicViewOptions


@dataclass(frozen=True)
class SweepPoint:
    """Result of one parameter combination in an interactive sweep."""

    parameters: AggregationParameters
    metrics: AggregationMetrics


class AggregationPanel:
    """Headless model of the Figure 11 aggregation tools."""

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        parameters: AggregationParameters | None = None,
    ) -> None:
        self.original_offers = list(offers)
        self.grid = grid
        self.parameters = parameters or AggregationParameters()
        self._result: AggregationResult | None = None

    # ------------------------------------------------------------------
    # Parameter tuning
    # ------------------------------------------------------------------
    def set_parameters(self, parameters: AggregationParameters) -> None:
        """Replace the parameters and drop the cached aggregation result."""
        self.parameters = parameters
        self._result = None

    def tune(self, **changes) -> AggregationParameters:
        """Adjust individual parameters (the panel's spin boxes) and return the new set."""
        self.set_parameters(replace(self.parameters, **changes))
        return self.parameters

    # ------------------------------------------------------------------
    # Aggregation / disaggregation
    # ------------------------------------------------------------------
    def result(self) -> AggregationResult:
        """The aggregation result under the current parameters (cached)."""
        if self._result is None:
            self._result = aggregate(self.original_offers, self.parameters)
        return self._result

    def aggregated_offers(self) -> list[FlexOffer]:
        """The offers to display after aggregation."""
        return list(self.result().offers)

    def metrics(self) -> AggregationMetrics:
        """Reduction and flexibility-loss metrics under the current parameters."""
        return evaluate(self.original_offers, self.result())

    def disaggregate_all(self) -> list[FlexOffer]:
        """Disaggregate every scheduled aggregate back to individual assignments."""
        result = self.result()
        offers: list[FlexOffer] = []
        for offer in result.offers:
            if offer.is_aggregate and offer.schedule is not None:
                offers.extend(disaggregate(offer, result.constituents_of(offer.id)))
            else:
                offers.append(offer)
        return offers

    def sweep(
        self,
        est_tolerances: Sequence[int],
        time_flexibility_tolerances: Sequence[int],
    ) -> list[SweepPoint]:
        """Evaluate every combination of the given tolerances (interactive tuning)."""
        if not est_tolerances or not time_flexibility_tolerances:
            raise ViewError("sweep needs at least one value per tolerance")
        points = []
        for est in est_tolerances:
            for tft in time_flexibility_tolerances:
                parameters = replace(
                    self.parameters,
                    est_tolerance_slots=est,
                    time_flexibility_tolerance_slots=tft,
                )
                result = aggregate(self.original_offers, parameters)
                points.append(SweepPoint(parameters=parameters, metrics=evaluate(self.original_offers, result)))
        return points

    # ------------------------------------------------------------------
    # Visual output: before/after basic views
    # ------------------------------------------------------------------
    def before_view(self, options: BasicViewOptions | None = None) -> BasicView:
        """Basic view of the original (non-aggregated) offers."""
        return BasicView(self.original_offers, self.grid, options=options)

    def after_view(self, options: BasicViewOptions | None = None) -> BasicView:
        """Basic view of the aggregated offers."""
        return BasicView(self.aggregated_offers(), self.grid, options=options)


@dataclass(frozen=True)
class AggregationPanelViewOptions(ViewOptions):
    """Canvas options for the combined before/after rendering."""

    height: float = 760.0


class AggregationPanelView(FlexOfferView):
    """A single scene stacking the before and after basic views (Figure 11)."""

    view_name = "aggregation tools"

    def __init__(self, panel: AggregationPanel, options: AggregationPanelViewOptions | None = None) -> None:
        super().__init__(options or AggregationPanelViewOptions())
        self.panel = panel

    def build_scene(self) -> Scene:
        options = self.options
        half_height = options.height / 2.0
        sub_options = BasicViewOptions(
            width=options.width,
            height=half_height,
            margin_left=options.margin_left,
            margin_right=options.margin_right,
            margin_top=options.margin_top,
            margin_bottom=options.margin_bottom,
        )
        before = self.panel.before_view(sub_options).scene()
        after = self.panel.after_view(sub_options).scene()
        metrics = self.panel.metrics()

        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)
        from repro.render.scene import Group

        top_group = Group(name="before")
        top_group.extend(before.root.children)
        scene.add(top_group)

        bottom_group = Group(name="after")
        # Shift the after-view's nodes down by half the canvas height.
        shifted = Group(name="after-shifted")
        for node in after.root.children:
            shifted.add(_shift_node(node, 0.0, half_height))
        bottom_group.add(shifted)
        scene.add(bottom_group)

        scene.add(
            Text(
                x=options.margin_left,
                y=half_height - 6,
                text=(
                    f"aggregation: {metrics.original_count} -> {metrics.aggregated_count} offers "
                    f"(x{metrics.reduction_ratio:.1f} reduction, "
                    f"{100 * metrics.time_flexibility_loss_ratio:.0f}% time-flexibility loss) "
                    f"EST tol={self.panel.parameters.est_tolerance_slots}, "
                    f"TFT tol={self.panel.parameters.time_flexibility_tolerance_slots}"
                ),
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="aggregation-caption",
            )
        )
        return scene


def _shift_node(node, dx: float, dy: float):
    """Return a shifted shallow copy of a scene node (groups recurse)."""
    from dataclasses import replace as dc_replace

    from repro.render.scene import Circle, Group, Line, Polygon, Polyline, Rect, Text, Wedge

    if isinstance(node, Group):
        clone = Group(name=node.name, element_id=node.element_id, css_class=node.css_class)
        for child in node.children:
            clone.add(_shift_node(child, dx, dy))
        return clone
    if isinstance(node, Rect):
        return dc_replace(node, x=node.x + dx, y=node.y + dy)
    if isinstance(node, Line):
        return dc_replace(node, x1=node.x1 + dx, y1=node.y1 + dy, x2=node.x2 + dx, y2=node.y2 + dy)
    if isinstance(node, (Polyline, Polygon)):
        return dc_replace(node, points=tuple((x + dx, y + dy) for x, y in node.points))
    if isinstance(node, Circle):
        return dc_replace(node, cx=node.cx + dx, cy=node.cy + dy)
    if isinstance(node, Wedge):
        return dc_replace(node, cx=node.cx + dx, cy=node.cy + dy)
    if isinstance(node, Text):
        return dc_replace(node, x=node.x + dx, y=node.y + dy)
    return node

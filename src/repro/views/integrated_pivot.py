"""The integrated pivot view: basic-view swimlanes inside the pivot (the paper's next step).

Section 4: "As the next immediate enhancement, the basic and the detailed
views will be integrated into the pivot view, where the flex-offer aggregation
will be applied to produce inputs for the flex-offer visualization on
swimlanes."  This module implements that enhancement: every swimlane of the
pivot (one per member of the chosen hierarchy level) shows the member's
flex-offers — aggregated first so a lane stays readable — rendered with the
basic view's visual encoding (time-flexibility rectangle, profile box,
scheduled-start line) instead of plain bars.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.aggregation.aggregate import aggregate
from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOffer
from repro.olap.cube import FlexOfferCube, MemberFilter
from repro.render.axes import PlotArea, legend, time_axis
from repro.render.color import Palette
from repro.render.scales import SlotTimeScale
from repro.render.scene import Group, Line, Rect, Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions
from repro.views.lanes import assign_lanes, lane_count


@dataclass(frozen=True)
class IntegratedPivotOptions(ViewOptions):
    """Options of the integrated pivot view."""

    #: Hierarchy shown on the swimlanes.
    row_dimension: str = "Prosumer"
    row_level: str = "prosumer_type"
    #: Height of one member's swimlane.
    lane_height: float = 120.0
    #: Aggregation applied per swimlane before drawing.
    aggregation: AggregationParameters = AggregationParameters(
        est_tolerance_slots=8, time_flexibility_tolerance_slots=8
    )
    #: Turn aggregation off to draw the raw offers (ablation / small datasets).
    aggregate_lanes: bool = True
    filters: tuple[MemberFilter, ...] = field(default_factory=tuple)
    show_legend: bool = True


class IntegratedPivotView(FlexOfferView):
    """Pivot swimlanes whose content is the basic-view encoding of (aggregated) flex-offers."""

    view_name = "integrated pivot view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        options: IntegratedPivotOptions | None = None,
        cube: FlexOfferCube | None = None,
    ) -> None:
        super().__init__(options or IntegratedPivotOptions())
        self.offers = list(offers)
        self.grid = grid
        self.cube = cube if cube is not None else FlexOfferCube(self.offers, grid)

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def members(self) -> list[str]:
        """The swimlane members (one per hierarchy member present in the data)."""
        filtered = self.cube.filter(self.options.filters) if self.options.filters else self.cube
        return [str(member) for member in filtered.members(self.options.row_dimension, self.options.row_level)]

    def lane_offers(self) -> dict[str, list[FlexOffer]]:
        """Per member: the offers shown in its swimlane (aggregated when enabled)."""
        filtered = self.cube.filter(self.options.filters) if self.options.filters else self.cube
        level = filtered.dimension(self.options.row_dimension).level(self.options.row_level)
        grouped: dict[str, list[FlexOffer]] = {}
        for offer in filtered.offers:
            grouped.setdefault(str(level.member_of(offer)), []).append(offer)
        if not self.options.aggregate_lanes:
            return grouped
        aggregated: dict[str, list[FlexOffer]] = {}
        for index, (member, offers) in enumerate(grouped.items()):
            result = aggregate(offers, self.options.aggregation, id_offset=2_000_000 + index * 100_000)
            aggregated[member] = result.offers
        return aggregated

    def _slot_bounds(self) -> tuple[int, int]:
        if not self.offers:
            return 0, 1
        first = min(offer.earliest_start_slot for offer in self.offers)
        last = max(offer.latest_end_slot for offer in self.offers)
        return first, max(last, first + 1)

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        lanes = self.lane_offers()
        members = self.members()
        lane_total = max(len(members), 1)
        height = max(
            options.height,
            options.margin_top + lane_total * options.lane_height + options.margin_bottom,
        )
        scene = Scene(width=options.width, height=height, title=self.view_name, background=Palette.PANEL)
        area = PlotArea(
            left=options.margin_left + 90,
            top=options.margin_top,
            width=options.width - options.margin_left - 90 - options.margin_right,
            height=lane_total * options.lane_height,
        )
        first, last = self._slot_bounds()
        scale = SlotTimeScale.build(self.grid, first, last, area.left, area.right)
        scene.add(time_axis(area, scale))
        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=(
                    f"{options.row_dimension}.{options.row_level} swimlanes, "
                    f"{'aggregated' if options.aggregate_lanes else 'raw'} flex-offers per lane"
                ),
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="view-caption",
            )
        )

        marks = Group(name="marks")
        scene.add(marks)
        for member_index, member in enumerate(members):
            lane_top = area.top + member_index * options.lane_height
            lane_group = Group(name=f"swimlane-{member}", element_id=f"member:{member}")
            lane_group.add(
                Rect(
                    x=area.left,
                    y=lane_top,
                    width=area.width,
                    height=options.lane_height - 3,
                    style=Style(
                        fill=Palette.PANEL.lighten(0.4) if member_index % 2 else Palette.PANEL,
                        stroke=Palette.AXIS.with_alpha(0.3),
                        stroke_width=0.5,
                    ),
                    element_id=f"member:{member}",
                    css_class="swimlane",
                )
            )
            lane_group.add(
                Text(
                    x=area.left - 8,
                    y=lane_top + options.lane_height / 2,
                    text=member,
                    style=Style(fill=Palette.AXIS, font_size=10.0),
                    anchor="end",
                    css_class="swimlane-label",
                )
            )
            member_offers = lanes.get(member, [])
            lane_group.add(self._draw_member_offers(member, member_offers, scale, lane_top, options.lane_height))
            lane_group.add(
                Text(
                    x=area.right - 4,
                    y=lane_top + 12,
                    text=f"{len(member_offers)} objects",
                    style=Style(fill=Palette.AXIS.with_alpha(0.7), font_size=9.0),
                    anchor="end",
                    css_class="swimlane-count",
                )
            )
            marks.add(lane_group)

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [
                        ("flex-offer", Palette.FLEX_OFFER),
                        ("aggregated", Palette.AGGREGATED_FLEX_OFFER),
                        ("time flexibility", Palette.TIME_FLEXIBILITY),
                        ("scheduled start", Palette.SCHEDULE),
                    ],
                )
            )
        return scene

    def _draw_member_offers(
        self,
        member: str,
        offers: list[FlexOffer],
        scale: SlotTimeScale,
        lane_top: float,
        lane_height: float,
    ) -> Group:
        """Basic-view encoding of one swimlane's offers, packed into sub-lanes."""
        group = Group(name=f"offers-{member}")
        if not offers:
            return group
        assignment = assign_lanes(offers)
        sub_lanes = max(lane_count(assignment), 1)
        padding = 14.0
        usable = lane_height - padding - 4
        sub_height = max(min(usable / sub_lanes, 14.0), 2.0)
        box_height = sub_height * 0.75
        for offer in offers:
            sub_lane = assignment[offer.id]
            top = lane_top + padding + sub_lane * sub_height + (sub_height - box_height) / 2.0
            span_left = scale.project(offer.earliest_start_slot)
            span_right = scale.project(offer.latest_end_slot)
            group.add(
                Rect(
                    x=span_left,
                    y=top,
                    width=max(span_right - span_left, 1.0),
                    height=box_height,
                    style=Style(fill=Palette.TIME_FLEXIBILITY.with_alpha(0.55)),
                    element_id=f"fo:{offer.id}",
                    css_class="time-flexibility",
                )
            )
            start_slot = offer.schedule.start_slot if offer.schedule is not None else offer.earliest_start_slot
            profile_left = scale.project(start_slot)
            profile_right = scale.project(start_slot + offer.profile_duration_slots)
            fill = Palette.AGGREGATED_FLEX_OFFER if offer.is_aggregate else Palette.FLEX_OFFER
            group.add(
                Rect(
                    x=profile_left,
                    y=top,
                    width=max(profile_right - profile_left, 1.0),
                    height=box_height,
                    style=Style(fill=fill, stroke=Palette.AXIS.with_alpha(0.4), stroke_width=0.4),
                    element_id=f"fo:{offer.id}",
                    css_class="profile-box aggregated" if offer.is_aggregate else "profile-box",
                    tooltip=f"{member}: flex-offer {offer.id} ({offer.state.value})",
                )
            )
            if offer.schedule is not None:
                x = scale.project(offer.schedule.start_slot)
                group.add(
                    Line(
                        x1=x,
                        y1=top,
                        x2=x,
                        y2=top + box_height,
                        style=Style(stroke=Palette.SCHEDULE, stroke_width=1.2),
                        element_id=f"fo:{offer.id}",
                        css_class="scheduled-start",
                    )
                )
        return group

"""The dashboard view (Figure 6) and the balancing chart (Figure 1).

Figure 6 summarises the complete flex-offer data for a selected time interval:
a pie chart of the accepted / assigned / rejected shares plus a stacked
per-interval bar chart of the same counts over time.  Figure 1 contrasts RES
production, non-flexible demand and flexible demand before and after the
MIRABEL system balances the grid; :class:`BalanceView` renders exactly those
curves from a :class:`~repro.enterprise.planning.PlanningReport` or from raw
series.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import TYPE_CHECKING, Sequence

from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.olap.cube import FlexOfferCube, GroupBy
from repro.render.axes import PlotArea, legend, time_axis, value_axis
from repro.render.color import Palette
from repro.render.scales import LinearScale, SlotTimeScale
from repro.render.scene import Group, Polyline, Rect, Scene, Style, Text, Wedge
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions

if TYPE_CHECKING:  # pragma: no cover - typing only; rendering imports the
    # numpy-native TimeSeries lazily at draw time.
    from repro.timeseries.series import TimeSeries

_STATE_ORDER = (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)


@dataclass(frozen=True)
class DashboardOptions(ViewOptions):
    """Options specific to the dashboard view."""

    #: Absolute interval summarised by the dashboard (None = whole offer span).
    interval_start: datetime | None = None
    interval_end: datetime | None = None
    #: Width of time buckets of the stacked bars, in slots.
    bucket_slots: int = 1
    pie_radius: float = 70.0


class DashboardView(FlexOfferView):
    """Figure 6: status pie plus stacked per-interval state counts."""

    view_name = "dashboard view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        options: DashboardOptions | None = None,
    ) -> None:
        super().__init__(options or DashboardOptions())
        self.grid = grid
        self.offers = self._filter_interval(list(offers))
        self.cube = FlexOfferCube(self.offers, grid)

    def _filter_interval(self, offers: list[FlexOffer]) -> list[FlexOffer]:
        start = self.options.interval_start
        end = self.options.interval_end
        if start is None and end is None:
            return offers
        kept = []
        for offer in offers:
            earliest = self.grid.to_datetime(offer.earliest_start_slot)
            latest_end = self.grid.to_datetime(offer.latest_end_slot)
            if end is not None and earliest >= end:
                continue
            if start is not None and latest_end <= start:
                continue
            kept.append(offer)
        return kept

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def state_totals(self) -> dict[str, int]:
        """Counts of accepted / assigned / rejected offers in the interval."""
        totals = {state.value: 0 for state in _STATE_ORDER}
        for offer in self.offers:
            if offer.state.value in totals:
                totals[offer.state.value] += 1
        return totals

    def state_percentages(self) -> dict[str, float]:
        """The pie-chart percentages (0..100), zero when there are no offers."""
        totals = self.state_totals()
        grand = sum(totals.values())
        if grand == 0:
            return {state: 0.0 for state in totals}
        return {state: 100.0 * count / grand for state, count in totals.items()}

    def counts_over_time(self) -> dict[str, list[tuple[int, float]]]:
        """Per state: (bucket start slot, count) pairs across the interval."""
        bucket = max(self.options.bucket_slots, 1)
        cell_set = self.cube.aggregate(
            [GroupBy("Time", "slot"), GroupBy("State", "state")], ["flex_offer_count"]
        )
        series: dict[str, dict[int, float]] = {state.value: {} for state in _STATE_ORDER}
        for cell in cell_set.cells:
            slot, state = cell.coordinates
            if state not in series:
                continue
            bucket_slot = (int(slot) // bucket) * bucket
            series[state][bucket_slot] = series[state].get(bucket_slot, 0.0) + cell.values["flex_offer_count"]
        return {state: sorted(values.items()) for state, values in series.items()}

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)
        area = options.plot_area

        start = options.interval_start
        end = options.interval_end
        caption = "complete flex-offer data"
        if start is not None or end is not None:
            caption = f"From: {start:%Y-%m-%d %H:%M}  To: {end:%Y-%m-%d %H:%M}" if start and end else caption
        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=caption,
                style=Style(fill=Palette.AXIS, font_size=12.0),
                css_class="view-caption",
            )
        )

        marks = Group(name="marks")
        scene.add(marks)

        # Left panel: the status pie.
        pie_cx = area.left + options.pie_radius + 20
        pie_cy = area.top + area.height / 2
        percentages = self.state_percentages()
        totals = self.state_totals()
        angle = 0.0
        for state in _STATE_ORDER:
            share = percentages[state.value]
            if share <= 0:
                continue
            sweep = 360.0 * share / 100.0
            marks.add(
                Wedge(
                    cx=pie_cx,
                    cy=pie_cy,
                    radius=options.pie_radius,
                    start_angle=angle,
                    end_angle=angle + sweep,
                    style=Style(fill=Palette.state_color(state.value), stroke=Palette.PANEL, stroke_width=1.0),
                    element_id=f"pie:{state.value}",
                    css_class=f"state-wedge {state.value}",
                    tooltip=f"{state.value}: {totals[state.value]} offers ({share:.0f}%)",
                )
            )
            angle += sweep
        for index, state in enumerate(_STATE_ORDER):
            marks.add(
                Text(
                    x=pie_cx - options.pie_radius,
                    y=pie_cy + options.pie_radius + 18 + index * 14,
                    text=f"{state.value} {percentages[state.value]:.0f}%",
                    style=Style(fill=Palette.state_color(state.value), font_size=11.0),
                    css_class="pie-label",
                )
            )

        # Right panel: stacked per-interval counts.
        chart = PlotArea(
            left=pie_cx + options.pie_radius + 60,
            top=area.top + 10,
            width=area.right - (pie_cx + options.pie_radius + 60),
            height=area.height - 40,
        )
        counts = self.counts_over_time()
        all_slots = sorted({slot for values in counts.values() for slot, _ in values})
        if all_slots:
            bucket = max(self.options.bucket_slots, 1)
            time_scale = SlotTimeScale.build(self.grid, all_slots[0], all_slots[-1] + bucket, chart.left, chart.right)
            peak = 0.0
            for slot in all_slots:
                peak = max(peak, sum(dict(counts[state.value]).get(slot, 0.0) for state in _STATE_ORDER))
            value_scale = LinearScale.nice(0.0, max(peak, 1.0), chart.bottom, chart.top)
            scene.add(time_axis(chart, time_scale, max_ticks=6))
            scene.add(value_axis(chart, value_scale, label="flex-offers"))
            bar_width = max((time_scale.project(all_slots[0] + bucket) - time_scale.project(all_slots[0])) - 2, 1.0)
            for slot in all_slots:
                base = value_scale.project(0.0)
                x = time_scale.project(slot)
                for state in _STATE_ORDER:
                    value = dict(counts[state.value]).get(slot, 0.0)
                    if value <= 0:
                        continue
                    top = value_scale.project(value_scale.invert(base) + value)
                    marks.add(
                        Rect(
                            x=x,
                            y=top,
                            width=bar_width,
                            height=base - top,
                            style=Style(fill=Palette.state_color(state.value)),
                            element_id=f"bar:{slot}:{state.value}",
                            css_class=f"state-bar {state.value}",
                            tooltip=f"{self.grid.to_datetime(slot):%H:%M} {state.value}: {value:.0f}",
                        )
                    )
                    base = top
            scene.add(
                legend(
                    chart,
                    [(state.value, Palette.state_color(state.value)) for state in _STATE_ORDER],
                    x=chart.right - 110,
                    y=chart.top + 4,
                )
            )
        return scene


@dataclass(frozen=True)
class BalanceViewOptions(ViewOptions):
    """Options of the Figure 1 balancing chart."""

    show_legend: bool = True
    caption: str = ""


class BalanceView(FlexOfferView):
    """Figure 1: RES production vs non-flexible and flexible demand.

    Two of these views side by side — one built from the *unplanned* flexible
    load, one from the *planned* load — reproduce the before/after pair of the
    paper's Figure 1.
    """

    view_name = "balance view"

    def __init__(
        self,
        res_production: TimeSeries,
        base_demand: TimeSeries,
        flexible_load: TimeSeries,
        grid: TimeGrid,
        options: BalanceViewOptions | None = None,
    ) -> None:
        super().__init__(options or BalanceViewOptions())
        self.res_production = res_production
        self.base_demand = base_demand
        self.flexible_load = flexible_load
        self.grid = grid

    def build_scene(self) -> Scene:
        options = self.options
        area = options.plot_area
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)

        first = min(self.res_production.start_slot, self.base_demand.start_slot)
        last = max(self.res_production.end_slot, self.base_demand.end_slot)
        time_scale = SlotTimeScale.build(self.grid, first, last, area.left, area.right)
        total_demand = self.base_demand + self.flexible_load
        peak = max(self.res_production.maximum(), total_demand.maximum(), 1.0)
        value_scale = LinearScale.nice(0.0, peak, area.bottom, area.top)

        scene.add(time_axis(area, time_scale))
        scene.add(value_axis(area, value_scale, label="energy", unit=self.res_production.unit or "kWh"))
        if options.caption:
            scene.add(
                Text(
                    x=area.left,
                    y=area.top - 14,
                    text=options.caption,
                    style=Style(fill=Palette.AXIS, font_size=12.0),
                    css_class="view-caption",
                )
            )

        marks = Group(name="marks")
        scene.add(marks)

        def stacked_band(lower: TimeSeries, upper: TimeSeries, color, name: str) -> None:
            points_top = [
                (time_scale.project(slot + 0.5), value_scale.project(value))
                for slot, value in upper.to_pairs()
            ]
            points_bottom = [
                (time_scale.project(slot + 0.5), value_scale.project(value))
                for slot, value in lower.to_pairs()
            ]
            if not points_top:
                return
            polygon_points = tuple(points_bottom + points_top[::-1])
            from repro.render.scene import Polygon

            marks.add(
                Polygon(
                    points=polygon_points,
                    style=Style(fill=color.with_alpha(0.55)),
                    element_id=f"band:{name}",
                    css_class=f"band {name}",
                )
            )

        from repro.timeseries.series import TimeSeries

        zero = TimeSeries.zeros(self.grid, self.base_demand.start_slot, len(self.base_demand))
        stacked_band(zero, self.base_demand, Palette.NON_FLEXIBLE_DEMAND, "non-flexible demand")
        stacked_band(self.base_demand, total_demand, Palette.FLEXIBLE_DEMAND, "flexible demand")

        res_points = tuple(
            (time_scale.project(slot + 0.5), value_scale.project(value))
            for slot, value in self.res_production.to_pairs()
        )
        marks.add(
            Polyline(
                points=res_points,
                style=Style(stroke=Palette.RES_PRODUCTION, stroke_width=2.2),
                element_id="series:res",
                css_class="res-production",
            )
        )

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [
                        ("production from RES", Palette.RES_PRODUCTION),
                        ("non-flexible demand", Palette.NON_FLEXIBLE_DEMAND),
                        ("flexible demand", Palette.FLEXIBLE_DEMAND),
                    ],
                )
            )
        return scene

    def overlap_energy(self) -> float:
        """Energy (kWh) of flexible demand placed where RES exceeds the base demand.

        The quantity Figure 1 illustrates: after balancing, this overlap grows.
        """
        import numpy as np

        surplus = (self.res_production - self.base_demand).clip(minimum=0.0)
        load = self.flexible_load.slice_slots(surplus.start_slot, surplus.end_slot)
        return float(np.minimum(surplus.values, np.clip(load.values, 0.0, None)).sum())

"""The map view of flex-offers (Figure 3).

The map view places one glyph per geographical unit (region by default) on a
simple plate-carree projection of the synthetic geography and shows, next to
each unit, a small bar chart of a chosen measure broken down by flex-offer
state — the "0..50" bar glyphs of the paper's Figure 3.  Filtering and
drill-down to city level reuse the OLAP cube.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.datagen.geography import Geography
from repro.errors import ViewError
from repro.flexoffer.model import FlexOffer, FlexOfferState
from repro.olap.cube import FlexOfferCube, GroupBy
from repro.render.axes import legend
from repro.render.color import Palette
from repro.render.scales import LinearScale
from repro.render.scene import Circle, Group, Rect, Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions

_STATE_ORDER = (FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED, FlexOfferState.REJECTED)


@dataclass(frozen=True)
class MapViewOptions(ViewOptions):
    """Options specific to the map view."""

    #: Geographical level the glyphs aggregate on: "region" or "city".
    level: str = "region"
    #: Width of one state bar in pixels.
    bar_width: float = 14.0
    bar_height: float = 60.0
    show_legend: bool = True


class MapView(FlexOfferView):
    """Figure 3: flex-offer counts per geographical unit on a map."""

    view_name = "map view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        geography: Geography,
        grid: TimeGrid,
        options: MapViewOptions | None = None,
    ) -> None:
        super().__init__(options or MapViewOptions())
        if self.options.level not in ("region", "city"):
            raise ViewError("map view level must be 'region' or 'city'")
        self.offers = list(offers)
        self.geography = geography
        self.grid = grid
        self.cube = FlexOfferCube(self.offers, grid)

    # ------------------------------------------------------------------
    # Data preparation
    # ------------------------------------------------------------------
    def place_anchors(self) -> dict[str, tuple[float, float]]:
        """Latitude/longitude anchor of every geographical unit at the chosen level."""
        anchors: dict[str, tuple[float, float]] = {}
        if self.options.level == "city":
            for city in self.geography.all_cities():
                anchors[city.name] = (city.latitude, city.longitude)
            return anchors
        for region in self.geography.regions:
            cities = region.cities
            if not cities:
                continue
            anchors[region.name] = (
                sum(city.latitude for city in cities) / len(cities),
                sum(city.longitude for city in cities) / len(cities),
            )
        return anchors

    def state_counts(self) -> dict[str, dict[str, float]]:
        """Per-place counts of accepted / assigned / rejected flex-offers."""
        cell_set = self.cube.aggregate(
            [GroupBy("Geography", self.options.level), GroupBy("State", "state")],
            ["flex_offer_count"],
        )
        counts: dict[str, dict[str, float]] = {}
        for cell in cell_set.cells:
            place, state = cell.coordinates
            counts.setdefault(place, {})[state] = cell.values["flex_offer_count"]
        return counts

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        area = options.plot_area
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)

        anchors = self.place_anchors()
        counts = self.state_counts()
        if not anchors:
            return scene

        latitudes = [lat for lat, _ in anchors.values()]
        longitudes = [lon for _, lon in anchors.values()]
        lat_scale = LinearScale(min(latitudes) - 0.3, max(latitudes) + 0.3, area.bottom, area.top)
        lon_scale = LinearScale(min(longitudes) - 0.5, max(longitudes) + 0.5, area.left, area.right)

        peak = max(
            (max(place_counts.values()) for place_counts in counts.values() if place_counts),
            default=1.0,
        )
        bar_scale = LinearScale(0.0, max(peak, 1.0), 0.0, options.bar_height)

        scene.add(
            Rect(
                x=area.left,
                y=area.top,
                width=area.width,
                height=area.height,
                style=Style(fill=Palette.PANEL, stroke=Palette.AXIS.with_alpha(0.4)),
                css_class="map-frame",
            )
        )
        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=f"{self.geography.country}: flex-offer counts by state per {options.level}",
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="view-caption",
            )
        )

        marks = Group(name="marks")
        scene.add(marks)
        for place, (lat, lon) in sorted(anchors.items()):
            x = lon_scale.project(lon)
            y = lat_scale.project(lat)
            place_counts = counts.get(place, {})
            total = sum(place_counts.values())
            glyph = Group(name=f"place-{place}", element_id=f"geo:{place}")
            glyph.add(
                Circle(
                    cx=x,
                    cy=y,
                    radius=4.0,
                    style=Style(fill=Palette.AXIS.with_alpha(0.7)),
                    element_id=f"geo:{place}",
                    css_class="place-anchor",
                    tooltip=f"{place}: {total:.0f} flex-offers",
                )
            )
            glyph.add(
                Text(
                    x=x,
                    y=y + 16,
                    text=place,
                    style=Style(fill=Palette.AXIS, font_size=10.0),
                    anchor="middle",
                    css_class="place-label",
                )
            )
            # State bar chart anchored just right of the place.
            for index, state in enumerate(_STATE_ORDER):
                value = place_counts.get(state.value, 0.0)
                height = bar_scale.project(value)
                bar_x = x + 10 + index * (self.options.bar_width + 2)
                glyph.add(
                    Rect(
                        x=bar_x,
                        y=y - height,
                        width=self.options.bar_width,
                        height=max(height, 0.5),
                        style=Style(fill=Palette.state_color(state.value)),
                        element_id=f"geo:{place}:{state.value}",
                        css_class=f"state-bar {state.value}",
                        tooltip=f"{place} {state.value}: {value:.0f}",
                    )
                )
                glyph.add(
                    Text(
                        x=bar_x + self.options.bar_width / 2,
                        y=y - height - 3,
                        text=f"{value:.0f}",
                        style=Style(fill=Palette.AXIS, font_size=8.0),
                        anchor="middle",
                        css_class="state-bar-value",
                    )
                )
            marks.add(glyph)

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [(state.value, Palette.state_color(state.value)) for state in _STATE_ORDER],
                )
            )
        return scene

    # ------------------------------------------------------------------
    # Interaction: drill from the map into a geographic filter
    # ------------------------------------------------------------------
    def offers_in_place(self, place: str) -> list[FlexOffer]:
        """All offers of one mapped unit (what a click-through to the detail views loads)."""
        level = self.options.level
        return [
            offer
            for offer in self.offers
            if (offer.region if level == "region" else offer.city) == place
        ]

"""Lane packing of temporally overlapping flex-offers.

"As flex-offers are temporal objects which may potentially overlap in time,
boxes representing flex-offers are stacked on each other thus occupying one of
several ordinate axes in the graph" (Section 4).  The default strategy is the
classic greedy first-fit interval colouring: offers are sorted by their
earliest start and each goes to the lowest-numbered lane whose last occupant
ends before the offer begins.  A naive one-offer-per-lane strategy is kept as
the ablation baseline for the FIG-8 bench.
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence

from repro.flexoffer.model import FlexOffer


class LaneStrategy(str, Enum):
    """How flex-offers are assigned to ordinate lanes."""

    #: Greedy first-fit interval packing (the tool's behaviour).
    FIRST_FIT = "first-fit"
    #: One lane per flex-offer (no packing; ablation baseline).
    ONE_PER_LANE = "one-per-lane"


def offer_interval(offer: FlexOffer) -> tuple[int, int]:
    """The half-open slot interval a flex-offer can occupy on screen.

    The basic view shows the whole feasible span — the grey time-flexibility
    rectangle plus the profile duration — so packing uses
    ``[earliest_start, latest_end)``.
    """
    return offer.earliest_start_slot, offer.latest_end_slot


def assign_lanes(
    offers: Sequence[FlexOffer], strategy: LaneStrategy = LaneStrategy.FIRST_FIT
) -> dict[int, int]:
    """Assign every offer to a lane; returns ``{offer id: lane index}``.

    Lane 0 is drawn at the top.  With :attr:`LaneStrategy.FIRST_FIT` two offers
    share a lane only when their feasible spans do not overlap.
    """
    if strategy is LaneStrategy.ONE_PER_LANE:
        ordered = sorted(offers, key=lambda offer: (offer.earliest_start_slot, offer.id))
        return {offer.id: index for index, offer in enumerate(ordered)}

    ordered = sorted(offers, key=lambda offer: (offer.earliest_start_slot, offer.latest_end_slot, offer.id))
    lane_ends: list[int] = []  # per lane: the end slot of its last occupant
    assignment: dict[int, int] = {}
    for offer in ordered:
        start, end = offer_interval(offer)
        placed = False
        for lane, lane_end in enumerate(lane_ends):
            if lane_end <= start:
                lane_ends[lane] = end
                assignment[offer.id] = lane
                placed = True
                break
        if not placed:
            lane_ends.append(end)
            assignment[offer.id] = len(lane_ends) - 1
    return assignment


def lane_count(assignment: dict[int, int]) -> int:
    """Number of lanes an assignment uses (0 for an empty assignment)."""
    return max(assignment.values()) + 1 if assignment else 0


def lanes_are_valid(offers: Sequence[FlexOffer], assignment: dict[int, int]) -> bool:
    """Check the lane invariant: offers sharing a lane never overlap in time."""
    by_lane: dict[int, list[tuple[int, int]]] = {}
    for offer in offers:
        lane = assignment.get(offer.id)
        if lane is None:
            return False
        by_lane.setdefault(lane, []).append(offer_interval(offer))
    for intervals in by_lane.values():
        intervals.sort()
        for (start_a, end_a), (start_b, _end_b) in zip(intervals, intervals[1:]):
            if start_b < end_a:
                return False
    return True

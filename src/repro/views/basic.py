"""The basic view of flex-offers (Figure 8).

The basic view shows a large number of flex-offers at once by drawing only
their most essential properties:

1. the duration of the energy profile — a light blue rectangle (light red for
   aggregated offers),
2. the start-time flexibility interval — a grey rectangle spanning from the
   earliest start to the latest end, and
3. the scheduled start time of the appliance — a red solid vertical line.

The ordinate axis is unit-less: temporally overlapping offers are stacked onto
separate lanes (see :mod:`repro.views.lanes`).  The view supports the paper's
interactions headlessly: hit-testing a pixel returns the offer under the
pointer, and :meth:`BasicView.offers_in_rectangle` backs rectangle selection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.flexoffer.model import FlexOffer
from repro.render.axes import PlotArea, legend, time_axis
from repro.render.color import Palette
from repro.render.scales import SlotTimeScale
from repro.render.scene import Group, Line, Rect, Scene, Style, Text
from repro.timeseries.grid import TimeGrid
from repro.views.base import FlexOfferView, ViewOptions
from repro.views.lanes import LaneStrategy, assign_lanes, lane_count
from repro.views.selection import SelectionRectangle


@dataclass(frozen=True)
class BasicViewOptions(ViewOptions):
    """Options specific to the basic view."""

    #: Vertical pixels per lane (the view grows lanes to fit, then clamps here).
    max_lane_height: float = 22.0
    min_lane_height: float = 4.0
    #: Fraction of the lane height the offer box occupies (the rest is spacing).
    box_fill_fraction: float = 0.7
    lane_strategy: LaneStrategy = LaneStrategy.FIRST_FIT
    show_legend: bool = True


class BasicView(FlexOfferView):
    """Figure 8: lane-stacked boxes for a large number of flex-offers."""

    view_name = "basic view"

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        options: BasicViewOptions | None = None,
        selection_rectangle: SelectionRectangle | None = None,
    ) -> None:
        super().__init__(options or BasicViewOptions())
        self.offers = list(offers)
        self.grid = grid
        self.selection_rectangle = selection_rectangle
        self._lanes = assign_lanes(self.offers, self.options.lane_strategy)

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def lane_assignment(self) -> dict[int, int]:
        """Mapping from offer id to lane index."""
        return dict(self._lanes)

    def _slot_bounds(self) -> tuple[int, int]:
        if not self.offers:
            return 0, 1
        first = min(offer.earliest_start_slot for offer in self.offers)
        last = max(offer.latest_end_slot for offer in self.offers)
        return first, max(last, first + 1)

    def _lane_height(self, area: PlotArea) -> float:
        lanes = max(lane_count(self._lanes), 1)
        height = area.height / lanes
        return min(max(height, self.options.min_lane_height), self.options.max_lane_height)

    def _time_scale(self, area: PlotArea) -> SlotTimeScale:
        first, last = self._slot_bounds()
        return SlotTimeScale.build(self.grid, first, last, area.left, area.right)

    def _lane_top(self, lane: int, area: PlotArea) -> float:
        return area.top + lane * self._lane_height(area)

    # ------------------------------------------------------------------
    # Scene construction
    # ------------------------------------------------------------------
    def build_scene(self) -> Scene:
        options = self.options
        area = options.plot_area
        scene = Scene(width=options.width, height=options.height, title=self.view_name, background=Palette.PANEL)
        scale = self._time_scale(area)
        lane_height = self._lane_height(area)
        box_height = lane_height * options.box_fill_fraction

        scene.add(time_axis(area, scale))
        scene.add(
            Text(
                x=area.left,
                y=area.top - 14,
                text=f"{len(self.offers)} flex-offers, {lane_count(self._lanes)} lanes",
                style=Style(fill=Palette.AXIS, font_size=11.0),
                css_class="view-caption",
            )
        )

        marks = Group(name="marks")
        scene.add(marks)
        for offer in self.offers:
            marks.add(self._offer_group(offer, scale, area, lane_height, box_height))

        if self.selection_rectangle is not None:
            left, top, right, bottom = self.selection_rectangle.normalized()
            scene.add(
                Rect(
                    x=left,
                    y=top,
                    width=right - left,
                    height=bottom - top,
                    style=Style(stroke=Palette.SELECTION, stroke_width=1.2, dashed=True),
                    css_class="selection-rectangle",
                )
            )

        if options.show_legend:
            scene.add(
                legend(
                    area,
                    [
                        ("flex-offer", Palette.FLEX_OFFER),
                        ("aggregated", Palette.AGGREGATED_FLEX_OFFER),
                        ("time flexibility", Palette.TIME_FLEXIBILITY),
                        ("scheduled start", Palette.SCHEDULE),
                    ],
                )
            )
        return scene

    def _offer_group(
        self, offer: FlexOffer, scale: SlotTimeScale, area: PlotArea, lane_height: float, box_height: float
    ) -> Group:
        lane = self._lanes[offer.id]
        top = self._lane_top(lane, area) + (lane_height - box_height) / 2.0
        group = Group(name=f"offer-{offer.id}", element_id=f"fo:{offer.id}")

        # Grey rectangle: the whole feasible span (time flexibility + profile).
        span_left = scale.project(offer.earliest_start_slot)
        span_right = scale.project(offer.latest_end_slot)
        group.add(
            Rect(
                x=span_left,
                y=top,
                width=max(span_right - span_left, 1.0),
                height=box_height,
                style=Style(fill=Palette.TIME_FLEXIBILITY.with_alpha(0.6)),
                element_id=f"fo:{offer.id}",
                css_class="time-flexibility",
                tooltip=self._tooltip(offer),
            )
        )

        # Coloured rectangle: the profile duration, placed at the scheduled
        # start when known and at the earliest start otherwise.
        start_slot = offer.schedule.start_slot if offer.schedule is not None else offer.earliest_start_slot
        profile_left = scale.project(start_slot)
        profile_right = scale.project(start_slot + offer.profile_duration_slots)
        fill = Palette.AGGREGATED_FLEX_OFFER if offer.is_aggregate else Palette.FLEX_OFFER
        group.add(
            Rect(
                x=profile_left,
                y=top,
                width=max(profile_right - profile_left, 1.0),
                height=box_height,
                style=Style(fill=fill, stroke=Palette.AXIS.with_alpha(0.4), stroke_width=0.5),
                element_id=f"fo:{offer.id}",
                css_class="profile-box aggregated" if offer.is_aggregate else "profile-box",
                tooltip=self._tooltip(offer),
            )
        )

        # Red solid line: the scheduled start time.
        if offer.schedule is not None:
            x = scale.project(offer.schedule.start_slot)
            group.add(
                Line(
                    x1=x,
                    y1=top,
                    x2=x,
                    y2=top + box_height,
                    style=Style(stroke=Palette.SCHEDULE, stroke_width=1.6),
                    element_id=f"fo:{offer.id}",
                    css_class="scheduled-start",
                )
            )
        return group

    def _tooltip(self, offer: FlexOffer) -> str:
        return (
            f"flex-offer {offer.id} ({offer.state.value}) "
            f"{offer.appliance_type or offer.prosumer_type} "
            f"energy {offer.min_total_energy:.1f}-{offer.max_total_energy:.1f} kWh, "
            f"time flexibility {offer.time_flexibility_slots} slots"
        )

    # ------------------------------------------------------------------
    # Interaction
    # ------------------------------------------------------------------
    def offer_at(self, x: float, y: float) -> int | None:
        """The id of the flex-offer under the pixel (x, y), or ``None``."""
        for element in self.elements_at(x, y):
            if element.startswith("fo:"):
                return int(element.split(":", 1)[1])
        return None

    def offers_in_rectangle(self, left: float, top: float, right: float, bottom: float) -> list[int]:
        """Ids of the flex-offers whose feasible-span box intersects the pixel rectangle."""
        area = self.options.plot_area
        scale = self._time_scale(area)
        lane_height = self._lane_height(area)
        box_height = lane_height * self.options.box_fill_fraction
        found: list[int] = []
        for offer in self.offers:
            lane = self._lanes[offer.id]
            box_top = self._lane_top(lane, area) + (lane_height - box_height) / 2.0
            box_bottom = box_top + box_height
            box_left = scale.project(offer.earliest_start_slot)
            box_right = scale.project(offer.latest_end_slot)
            if box_left <= right and box_right >= left and box_top <= bottom and box_bottom >= top:
                found.append(offer.id)
        return found

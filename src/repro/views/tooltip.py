"""On-the-fly flex-offer details (Figure 10).

"Irrespective of the selected view, the visualization tool provides additional
information about flex-offers when pointing their representations with a mouse
pointer.  This includes the markers (yellow lines) for user-specified
creation/acceptance/assignment times of a flex-offer as well as indications
(red dashed lines) on which flex-offers were aggregated to produce the pointed
flex-offer."

Headlessly, :func:`describe` returns the textual detail record, and
:func:`overlay` produces the scene-graph nodes (yellow time markers, red
dashed provenance links) a view adds on top of its marks for a hovered offer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Mapping, Sequence

from repro.flexoffer.model import FlexOffer
from repro.render.axes import PlotArea
from repro.render.color import Palette
from repro.render.scales import SlotTimeScale
from repro.render.scene import Group, Line, Style, Text


@dataclass(frozen=True)
class FlexOfferDetails:
    """The textual content of the on-the-fly information box."""

    offer_id: int
    state: str
    prosumer_id: int
    appliance_type: str
    region: str
    city: str
    creation_time: datetime
    acceptance_deadline: datetime
    assignment_deadline: datetime
    earliest_start: datetime
    latest_start: datetime
    profile_slices: int
    min_total_energy: float
    max_total_energy: float
    time_flexibility_slots: int
    scheduled_energy: float | None
    scheduled_start: datetime | None
    is_aggregate: bool
    constituent_ids: tuple[int, ...] = field(default_factory=tuple)

    def lines(self) -> list[str]:
        """The detail record formatted as display lines."""
        rows = [
            f"flex-offer #{self.offer_id} [{self.state}]",
            f"prosumer {self.prosumer_id} - {self.appliance_type or 'unknown appliance'}"
            + (f" ({self.city}, {self.region})" if self.city else ""),
            f"created {self.creation_time:%Y-%m-%d %H:%M}",
            f"acceptance by {self.acceptance_deadline:%Y-%m-%d %H:%M}",
            f"assignment by {self.assignment_deadline:%Y-%m-%d %H:%M}",
            f"start window {self.earliest_start:%H:%M} .. {self.latest_start:%H:%M} "
            f"({self.time_flexibility_slots} slots flexibility)",
            f"profile {self.profile_slices} slices, "
            f"{self.min_total_energy:.2f}-{self.max_total_energy:.2f} kWh",
        ]
        if self.scheduled_energy is not None and self.scheduled_start is not None:
            rows.append(
                f"scheduled {self.scheduled_energy:.2f} kWh starting {self.scheduled_start:%H:%M}"
            )
        if self.is_aggregate:
            rows.append(f"aggregated from {len(self.constituent_ids)} flex-offers: "
                        f"{', '.join(str(i) for i in self.constituent_ids[:12])}"
                        + (" ..." if len(self.constituent_ids) > 12 else ""))
        return rows

    def to_text(self) -> str:
        """The detail record as one newline-joined string."""
        return "\n".join(self.lines())


def describe(offer: FlexOffer, grid) -> FlexOfferDetails:
    """Build the detail record of ``offer`` (``grid`` converts slots to instants)."""
    return FlexOfferDetails(
        offer_id=offer.id,
        state=offer.state.value,
        prosumer_id=offer.prosumer_id,
        appliance_type=offer.appliance_type,
        region=offer.region,
        city=offer.city,
        creation_time=offer.creation_time,
        acceptance_deadline=offer.acceptance_deadline,
        assignment_deadline=offer.assignment_deadline,
        earliest_start=grid.to_datetime(offer.earliest_start_slot),
        latest_start=grid.to_datetime(offer.latest_start_slot),
        profile_slices=len(offer.profile),
        min_total_energy=offer.min_total_energy,
        max_total_energy=offer.max_total_energy,
        time_flexibility_slots=offer.time_flexibility_slots,
        scheduled_energy=offer.scheduled_energy if offer.schedule is not None else None,
        scheduled_start=(
            grid.to_datetime(offer.schedule.start_slot) if offer.schedule is not None else None
        ),
        is_aggregate=offer.is_aggregate,
        constituent_ids=offer.constituent_ids,
    )


def overlay(
    offer: FlexOffer,
    scale: SlotTimeScale,
    area: PlotArea,
    lane_assignment: Mapping[int, int] | None = None,
    lane_height: float | None = None,
) -> Group:
    """Scene nodes for the hover overlay of ``offer``.

    Yellow vertical marker lines are drawn at the creation, acceptance and
    assignment instants; when the offer is an aggregate and the lane layout of
    its constituents is known, red dashed connector lines point at each
    constituent's lane (the Figure 10 provenance indication).
    """
    group = Group(name=f"tooltip-{offer.id}", element_id=f"tooltip:{offer.id}")
    marker_style = Style(stroke=Palette.MARKER, stroke_width=1.4)
    label_style = Style(fill=Palette.AXIS, font_size=9.0)
    for label, instant in (
        ("created", offer.creation_time),
        ("acceptance", offer.acceptance_deadline),
        ("assignment", offer.assignment_deadline),
    ):
        x = scale.project_time(instant)
        if x < area.left or x > area.right:
            continue
        group.add(
            Line(x1=x, y1=area.top, x2=x, y2=area.bottom, style=marker_style, css_class="time-marker")
        )
        group.add(
            Text(x=x + 2, y=area.top + 10, text=label, style=label_style, css_class="time-marker-label")
        )

    if offer.is_aggregate and lane_assignment and lane_height:
        own_lane = lane_assignment.get(offer.id)
        if own_lane is not None:
            source_y = area.top + own_lane * lane_height + lane_height / 2.0
            source_x = scale.project(offer.earliest_start_slot)
            provenance_style = Style(stroke=Palette.PROVENANCE, stroke_width=1.0, dashed=True)
            for constituent_id in offer.constituent_ids:
                lane = lane_assignment.get(constituent_id)
                if lane is None:
                    continue
                target_y = area.top + lane * lane_height + lane_height / 2.0
                group.add(
                    Line(
                        x1=source_x,
                        y1=source_y,
                        x2=source_x,
                        y2=target_y,
                        style=provenance_style,
                        css_class="provenance-link",
                        element_id=f"prov:{offer.id}->{constituent_id}",
                    )
                )
    return group


def describe_many(offers: Sequence[FlexOffer], grid) -> list[FlexOfferDetails]:
    """Detail records for several offers (hovering a dense cluster)."""
    return [describe(offer, grid) for offer in offers]

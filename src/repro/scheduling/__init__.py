"""Balancing schedulers: greedy, stochastic, and the aggregate-then-schedule pipeline."""

from repro.scheduling.evaluation import BalanceReport, absorbed_energy, compare, report
from repro.scheduling.greedy import EarliestStartScheduler, GreedyScheduler
from repro.scheduling.pipeline import PipelineResult, Scheduler, schedule_offers
from repro.scheduling.problem import BalancingProblem, BalancingSolution, make_target
from repro.scheduling.stochastic import StochasticConfig, StochasticScheduler

__all__ = [
    "BalancingProblem",
    "BalancingSolution",
    "make_target",
    "GreedyScheduler",
    "EarliestStartScheduler",
    "StochasticScheduler",
    "StochasticConfig",
    "Scheduler",
    "PipelineResult",
    "schedule_offers",
    "BalanceReport",
    "report",
    "compare",
    "absorbed_energy",
]

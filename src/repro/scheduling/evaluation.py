"""Evaluation of balancing solutions.

Produces the before/after comparison behind the paper's Figure 1 and the
numbers the FIG-1 bench prints: how much RES energy the flexible load absorbs
with and without MIRABEL-style planning, and the residual imbalance the
enterprise would have to trade on the market.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.scheduling.problem import BalancingSolution
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class BalanceReport:
    """Quality metrics of one balancing solution."""

    scheduler_name: str
    target_energy: float
    scheduled_energy: float
    absorbed_energy: float
    absorption_ratio: float
    imbalance_energy: float
    squared_error: float
    runtime_seconds: float
    scheduled_object_count: int


def absorbed_energy(target: TimeSeries, flexible_load: TimeSeries) -> float:
    """Energy (kWh) of the flexible load placed inside the target envelope.

    Per slot the absorbed amount is ``min(target, load)`` (both clipped at 0):
    flexible consumption scheduled where there is RES surplus counts, load
    scheduled elsewhere does not.
    """
    load = flexible_load.slice_slots(target.start_slot, target.end_slot)
    absorbed = np.minimum(np.clip(target.values, 0, None), np.clip(load.values, 0, None))
    return float(absorbed.sum())


def report(solution: BalancingSolution, scheduled_object_count: int | None = None) -> BalanceReport:
    """Build a :class:`BalanceReport` for ``solution``."""
    target = solution.problem.target
    load = solution.scheduled_load()
    target_total = float(np.clip(target.values, 0, None).sum())
    absorbed = absorbed_energy(target, load)
    return BalanceReport(
        scheduler_name=solution.scheduler_name,
        target_energy=target_total,
        scheduled_energy=load.total(),
        absorbed_energy=absorbed,
        absorption_ratio=(absorbed / target_total) if target_total > 0 else 0.0,
        imbalance_energy=solution.imbalance_energy(),
        squared_error=solution.squared_error(),
        runtime_seconds=solution.runtime_seconds,
        scheduled_object_count=(
            scheduled_object_count
            if scheduled_object_count is not None
            else len(solution.scheduled_offers)
        ),
    )


def compare(reports: list[BalanceReport]) -> str:
    """Render a fixed-width comparison table of several balance reports."""
    header = (
        f"{'scheduler':<18}{'objects':>9}{'absorbed':>12}{'ratio':>8}"
        f"{'imbalance':>12}{'runtime s':>11}"
    )
    lines = [header, "-" * len(header)]
    for entry in reports:
        lines.append(
            f"{entry.scheduler_name:<18}{entry.scheduled_object_count:>9}"
            f"{entry.absorbed_energy:>12.1f}{entry.absorption_ratio:>8.2f}"
            f"{entry.imbalance_energy:>12.1f}{entry.runtime_seconds:>11.3f}"
        )
    return "\n".join(lines)

"""Greedy balancing scheduler.

The baseline planner: offers are scheduled one at a time (largest maximum
energy first).  For every offer the scheduler tries each feasible start slot
and, per profile slice, picks the energy inside the slice band that best fills
the remaining target; the start slot with the lowest remaining squared error
wins.  The result is a feasible schedule for every consumption/production
offer and is the reference point the stochastic scheduler improves upon.
"""

from __future__ import annotations

import time

import numpy as np

from repro.flexoffer.model import FlexOffer, Schedule
from repro.scheduling.problem import BalancingProblem, BalancingSolution


def _per_slot_bounds(offer: FlexOffer) -> tuple[np.ndarray, np.ndarray]:
    minimums: list[float] = []
    maximums: list[float] = []
    for piece in offer.profile:
        for _ in range(piece.duration_slots):
            minimums.append(piece.min_energy / piece.duration_slots)
            maximums.append(piece.max_energy / piece.duration_slots)
    return np.asarray(minimums), np.asarray(maximums)


def _collect_slices(offer: FlexOffer, per_slot_energy: np.ndarray) -> tuple[float, ...]:
    """Fold per-slot energies back into per-slice amounts, clamped to the bounds."""
    amounts: list[float] = []
    position = 0
    for piece in offer.profile:
        amount = float(per_slot_energy[position : position + piece.duration_slots].sum())
        amount = min(max(amount, piece.min_energy), piece.max_energy)
        amounts.append(amount)
        position += piece.duration_slots
    return tuple(amounts)


class GreedyScheduler:
    """Largest-offer-first greedy scheduler."""

    name = "greedy"

    def schedule(self, problem: BalancingProblem) -> BalancingSolution:
        """Schedule every offer in ``problem`` and return the solution."""
        started = time.perf_counter()
        target = problem.target
        start_slot = target.start_slot
        residual = target.values.copy()

        solution_offers: list[FlexOffer] = []
        order = sorted(problem.offers, key=lambda offer: offer.max_total_energy, reverse=True)
        for offer in order:
            lows, highs = _per_slot_bounds(offer)
            sign = offer.direction.sign
            length = len(lows)
            best: tuple[float, int, np.ndarray] | None = None
            for candidate_start in range(offer.earliest_start_slot, offer.latest_start_slot + 1):
                offset = candidate_start - start_slot
                # Residual the offer's slots see (zero outside the horizon).
                window = np.zeros(length)
                for index in range(length):
                    slot_index = offset + index
                    if 0 <= slot_index < len(residual):
                        window[index] = residual[slot_index]
                # Consumption should absorb positive residual; production should
                # offset negative residual.  Choose per-slot energy accordingly.
                desired = np.clip(sign * window, lows, highs)
                new_window = window - sign * desired
                cost = float((new_window**2).sum() - (window**2).sum())
                if best is None or cost < best[0]:
                    best = (cost, candidate_start, desired)
            assert best is not None  # the start range is never empty
            _, chosen_start, chosen_energy = best
            schedule = Schedule(
                start_slot=chosen_start,
                energy_per_slice=_collect_slices(offer, chosen_energy),
            )
            scheduled = offer.assign(schedule)
            solution_offers.append(scheduled)
            # Commit the offer's load to the residual.
            for index, amount in enumerate(chosen_energy):
                slot_index = chosen_start - start_slot + index
                if 0 <= slot_index < len(residual):
                    residual[slot_index] -= sign * amount

        return BalancingSolution(
            problem=problem,
            scheduled_offers=solution_offers,
            runtime_seconds=time.perf_counter() - started,
            scheduler_name=self.name,
        )


class EarliestStartScheduler:
    """Naive baseline: every offer starts as early as possible with minimum energy.

    This mirrors what happens without any planning (the "before" curve of the
    paper's Figure 1): flexible loads run whenever their owners would have run
    them, ignoring the RES production profile.
    """

    name = "earliest-start"

    def schedule(self, problem: BalancingProblem) -> BalancingSolution:
        """Assign the earliest start and minimum energy to every offer."""
        started = time.perf_counter()
        scheduled = [offer.with_default_schedule() for offer in problem.offers]
        return BalancingSolution(
            problem=problem,
            scheduled_offers=scheduled,
            runtime_seconds=time.perf_counter() - started,
            scheduler_name=self.name,
        )

"""The balancing problem the MIRABEL enterprise solves when planning.

Section 2 of the paper: the enterprise "produces a plan in which supply is
equal to (balances) demand", using the flexibility of flex-offers to move
flexible load under the intermittent RES production.  The problem is stated
here as: given a set of flex-offers and a *target* series (the energy per slot
the flexible load should ideally absorb — typically RES production minus the
non-flexible demand, clipped at zero), choose a feasible schedule for every
offer so the scheduled flexible load tracks the target as closely as possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SchedulingError
from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


@dataclass
class BalancingProblem:
    """A flexible-load balancing problem instance."""

    offers: list[FlexOffer]
    target: TimeSeries
    grid: TimeGrid

    def __post_init__(self) -> None:
        if len(self.target) == 0:
            raise SchedulingError("balancing target series is empty")

    @property
    def horizon(self) -> range:
        """Slot range of the target series."""
        return self.target.slots


@dataclass
class BalancingSolution:
    """A (possibly partial) solution: scheduled flex-offers plus bookkeeping."""

    problem: BalancingProblem
    scheduled_offers: list[FlexOffer] = field(default_factory=list)
    #: Wall-clock seconds the scheduler spent, filled in by the schedulers.
    runtime_seconds: float = 0.0
    #: Free-form description of the scheduler that produced the solution.
    scheduler_name: str = ""

    def scheduled_load(self) -> TimeSeries:
        """Total signed scheduled energy per slot (consumption positive)."""
        total = np.zeros(len(self.problem.target))
        start = self.problem.target.start_slot
        for offer in self.scheduled_offers:
            series = offer.scheduled_series(self.problem.grid)
            for slot, value in series.to_pairs():
                index = slot - start
                if 0 <= index < len(total):
                    total[index] += value
        return TimeSeries(self.problem.grid, start, total, name="scheduled flexible load", unit="kWh")

    def residual(self) -> TimeSeries:
        """Per-slot difference between the target and the scheduled flexible load."""
        residual = self.problem.target - self.scheduled_load()
        residual.name = "residual"
        return residual

    def imbalance_energy(self) -> float:
        """Total absolute residual energy (kWh) — the quantity imbalance fees apply to."""
        return self.residual().absolute().total()

    def squared_error(self) -> float:
        """Sum of squared residuals (the objective the schedulers minimise)."""
        values = self.residual().values
        return float((values**2).sum())


def make_target(
    res_production: TimeSeries, base_demand: TimeSeries, clip_negative: bool = True
) -> TimeSeries:
    """Build the balancing target: RES production left over after the base load.

    A positive target means surplus RES energy is available in that slot and
    flexible consumption should be moved there; with ``clip_negative`` the
    deficit slots become zero (flexible consumption cannot help a deficit, it
    can only avoid making it worse).
    """
    target = res_production - base_demand
    if clip_negative:
        target = target.clip(minimum=0.0)
    target.name = "balancing target"
    target.unit = res_production.unit or "kWh"
    return target

"""Aggregate-then-schedule pipeline.

MIRABEL schedules *aggregated* flex-offers rather than the raw millions of
offers ("Using Aggregation to Improve the Scheduling of Flexible Energy
Offers", Tušar et al. 2012): the search space shrinks dramatically while the
start-alignment aggregation guarantees that the aggregate schedule can be
disaggregated into feasible individual assignments.  The pipeline here wires
the three substrates together and is what the enterprise planning loop and the
Figure 1 reproduction use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Protocol, Sequence

from repro.aggregation.aggregate import aggregate
from repro.aggregation.disaggregate import disaggregate
from repro.aggregation.parameters import AggregationParameters
from repro.flexoffer.model import FlexOffer
from repro.scheduling.problem import BalancingProblem, BalancingSolution
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


class Scheduler(Protocol):
    """Anything that can solve a :class:`BalancingProblem`."""

    name: str

    def schedule(self, problem: BalancingProblem) -> BalancingSolution:  # pragma: no cover - protocol
        ...


@dataclass
class PipelineResult:
    """Outcome of the aggregate-then-schedule pipeline."""

    #: Individual flex-offers with their final (disaggregated) schedules.
    assigned_offers: list[FlexOffer]
    #: The solution at the aggregate level (what the scheduler actually saw).
    aggregate_solution: BalancingSolution
    #: How many objects the scheduler had to handle.
    scheduled_object_count: int
    #: End-to-end wall-clock seconds (aggregation + scheduling + disaggregation).
    runtime_seconds: float

    def scheduled_load(self, grid: TimeGrid, target: TimeSeries) -> TimeSeries:
        """Total scheduled flexible load of the individual assignments."""
        total = TimeSeries.zeros(grid, target.start_slot, len(target), name="flexible load", unit="kWh")
        for offer in self.assigned_offers:
            series = offer.scheduled_series(grid)
            if len(series):
                total = total + series
        total = total.slice_slots(target.start_slot, target.end_slot)
        total.name = "flexible load"
        return total


def schedule_offers(
    offers: Sequence[FlexOffer],
    target: TimeSeries,
    grid: TimeGrid,
    scheduler: Scheduler,
    aggregation: AggregationParameters | None = None,
    use_aggregation: bool = True,
) -> PipelineResult:
    """Run the full pipeline: (optionally) aggregate, schedule, disaggregate.

    With ``use_aggregation=False`` the scheduler sees the raw offers — the
    ablation the FIG-1 bench compares against.
    """
    started = time.perf_counter()
    offers = list(offers)

    if use_aggregation:
        aggregation_result = aggregate(offers, aggregation)
        to_schedule = aggregation_result.offers
    else:
        aggregation_result = None
        to_schedule = offers

    problem = BalancingProblem(offers=list(to_schedule), target=target, grid=grid)
    solution = scheduler.schedule(problem)

    assigned: list[FlexOffer] = []
    for scheduled in solution.scheduled_offers:
        if aggregation_result is not None and scheduled.is_aggregate:
            constituents = aggregation_result.constituents_of(scheduled.id)
            assigned.extend(disaggregate(scheduled, constituents))
        else:
            assigned.append(scheduled)

    return PipelineResult(
        assigned_offers=assigned,
        aggregate_solution=solution,
        scheduled_object_count=len(to_schedule),
        runtime_seconds=time.perf_counter() - started,
    )

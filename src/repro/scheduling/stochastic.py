"""Stochastic-improvement scheduler.

The MIRABEL project schedules flex-offers with an evolutionary algorithm
(Tušar et al., BIOMA 2012) and shows that aggregating offers first makes the
search tractable.  This reproduction keeps the same structure with a simpler
search: start from the greedy solution and repeatedly apply random moves
(shift an offer's start, rescale its energy within the band), keeping a move
whenever it reduces the squared residual error.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.flexoffer.model import Schedule
from repro.scheduling.greedy import GreedyScheduler, _collect_slices, _per_slot_bounds
from repro.scheduling.problem import BalancingProblem, BalancingSolution


@dataclass(frozen=True)
class StochasticConfig:
    """Parameters of the stochastic improvement search."""

    iterations: int = 2000
    seed: int = 3
    #: Probability that a move changes the start slot (otherwise the energy).
    start_move_probability: float = 0.5


class StochasticScheduler:
    """Hill-climbing scheduler seeded by the greedy solution."""

    name = "stochastic"

    def __init__(self, config: StochasticConfig | None = None) -> None:
        self.config = config or StochasticConfig()

    def schedule(self, problem: BalancingProblem) -> BalancingSolution:
        """Improve the greedy schedule by random local moves."""
        started = time.perf_counter()
        rng = np.random.default_rng(self.config.seed)
        base = GreedyScheduler().schedule(problem)
        offers = list(base.scheduled_offers)
        if not offers:
            return BalancingSolution(
                problem=problem,
                scheduled_offers=[],
                runtime_seconds=time.perf_counter() - started,
                scheduler_name=self.name,
            )

        target = problem.target
        start_slot = target.start_slot
        residual = target.values.copy()
        per_offer_load: list[np.ndarray] = []
        for offer in offers:
            load = np.zeros(len(residual))
            for slot, value in offer.scheduled_series(problem.grid).to_pairs():
                index = slot - start_slot
                if 0 <= index < len(load):
                    load[index] += value
            residual -= load
            per_offer_load.append(load)

        def current_error() -> float:
            return float((residual**2).sum())

        for _ in range(self.config.iterations):
            index = int(rng.integers(0, len(offers)))
            offer = offers[index]
            if offer.time_flexibility_slots == 0 and offer.energy_flexibility <= 1e-12:
                continue
            lows, highs = _per_slot_bounds(offer)
            sign = offer.direction.sign

            if rng.random() < self.config.start_move_probability and offer.time_flexibility_slots > 0:
                new_start = int(rng.integers(offer.earliest_start_slot, offer.latest_start_slot + 1))
                fraction = None
            else:
                new_start = offer.schedule.start_slot if offer.schedule else offer.earliest_start_slot
                fraction = float(rng.random())

            if fraction is None:
                assert offer.schedule is not None
                per_slot = np.zeros(len(lows))
                position = 0
                for piece, amount in zip(offer.profile, offer.schedule.energy_per_slice):
                    share = amount / piece.duration_slots
                    for extra in range(piece.duration_slots):
                        per_slot[position + extra] = share
                    position += piece.duration_slots
            else:
                per_slot = lows + fraction * (highs - lows)

            candidate_load = np.zeros(len(residual))
            for slot_offset, amount in enumerate(per_slot):
                slot_index = new_start - start_slot + slot_offset
                if 0 <= slot_index < len(candidate_load):
                    candidate_load[slot_index] += sign * amount

            old_load = per_offer_load[index]
            new_residual = residual + old_load - candidate_load
            if float((new_residual**2).sum()) + 1e-12 < current_error():
                residual = new_residual
                per_offer_load[index] = candidate_load
                offers[index] = offer.assign(
                    Schedule(start_slot=new_start, energy_per_slice=_collect_slices(offer, per_slot))
                )

        return BalancingSolution(
            problem=problem,
            scheduled_offers=offers,
            runtime_seconds=time.perf_counter() - started,
            scheduler_name=self.name,
        )

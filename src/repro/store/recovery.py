"""Crash recovery: rebuild a session from the latest snapshot + log tail.

:class:`RecoveryManager` owns one durability directory::

    <directory>/
      manifest.json, offers.jsonl, aggregates.jsonl, warehouse/   # snapshot
      events/events-*.jsonl                                       # segment log

and implements the recovery contract the subsystem is named for: *restoring
from a checkpoint taken at any point of the stream and replaying the log tail
must be observably equivalent to a full replay*.  :meth:`checkpoint` writes
the snapshot consistent with the backend's event offset, :meth:`restore`
rebuilds a fresh :class:`~repro.session.FlexSession` (any live-family engine —
the backend's ``_build_engine`` hook constructs it, then the captured state is
installed) and replays the tail, and :meth:`verify` proves the restored state
equivalent to the batch pipeline over the surviving offers via
:meth:`~repro.session.FlexSession.snapshot`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.errors import StoreError
from repro.live.events import OfferEvent
from repro.live.replay import replay
from repro.live.warehouse import LiveWarehouse
from repro.obs import get_registry, get_tracer
from repro.session.engines import LiveEngine
from repro.session.facade import FlexSession
from repro.session.query import execute
from repro.session.spec import QuerySpec
from repro.store.segments import SegmentStore
from repro.store.snapshot import Checkpoint, SnapshotStore
from repro.store.state import capture_engine_state, restore_engine_state

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.datagen.scenarios import Scenario

#: Subdirectory of the durability directory holding the segmented event log.
EVENTS_SUBDIR = "events"

# ----------------------------------------------------------------------
# Observability: the durability path is cold compared to commits, but its
# latencies bound recovery time — each operation gets a span + histogram,
# and the segment count rides a gauge (refreshed unconditionally; these
# operations are rare enough that truthfulness beats the guard).
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_CHECKPOINT_SECONDS = _OBS.histogram(
    "repro.store.checkpoint.seconds", "snapshot (checkpoint) latency"
)
_RESTORE_SECONDS = _OBS.histogram(
    "repro.store.restore.seconds", "snapshot + log-tail restore latency"
)
_COMPACT_SECONDS = _OBS.histogram(
    "repro.store.compact.seconds", "segment-log compaction latency"
)
_COMPACT_DROPPED = _OBS.counter(
    "repro.store.compact.dropped", "dead events dropped by compaction"
)
_SEGMENTS_GAUGE = _OBS.gauge(
    "repro.store.segments", "segments currently in the event log"
)


@dataclass
class RestoreReport:
    """What one :meth:`RecoveryManager.restore` did."""

    engine: str
    log_offset: int
    tail_events: int
    offers: int
    aggregates: int
    seconds: float = 0.0

    def describe(self) -> str:
        return (
            f"restored {self.offers} offers + {self.aggregates} aggregates "
            f"({self.engine} engine) from snapshot@{self.log_offset}, "
            f"replayed {self.tail_events} tail events in {self.seconds * 1000:.1f} ms"
        )


def _live_backend(session: FlexSession) -> LiveEngine:
    backend = session.engine
    if not isinstance(backend, LiveEngine):
        raise StoreError(
            "durability needs a live-family engine; the batch snapshot has no "
            "event stream to checkpoint (use_engine('live') first)"
        )
    return backend


class RecoveryManager:
    """Checkpoint, compaction and restore over one durability directory."""

    def __init__(
        self,
        directory: str | Path,
        segment_size: int = 512,
        warehouse_format: str = "columnar",
    ) -> None:
        self.directory = Path(directory)
        self.snapshots = SnapshotStore(self.directory, warehouse_format=warehouse_format)
        self.log = SegmentStore(self.directory / EVENTS_SUBDIR, segment_size=segment_size)
        self.last_restore: RestoreReport | None = None

    # ------------------------------------------------------------------
    # Write side
    # ------------------------------------------------------------------
    def record(self, events: Iterable[OfferEvent]) -> int:
        """Persist events into the segment log, in engine-consumption order."""
        return self.log.extend(events)

    def checkpoint(self, session: FlexSession, offset: int | None = None) -> Checkpoint:
        """Snapshot the session's active live-family engine and warehouse.

        ``offset`` is the event-log position the snapshot is consistent with;
        it defaults to the backend's own ingested-event counter, which is
        correct whenever the backend consumed exactly the recorded log.
        """
        started = time.perf_counter() if _OBS.enabled else 0.0
        with _TRACER.span("store.checkpoint"):
            backend = _live_backend(session)
            backend.refresh()
            state = capture_engine_state(backend.engine)
            if offset is None:
                offset = backend.events_ingested
            self.snapshots.save(
                state,
                log_offset=offset,
                schema=backend.schema,
                scenario_config=session.scenario.config,
            )
            checkpoint = self.snapshots.load()
        if _OBS.enabled:
            _CHECKPOINT_SECONDS.observe(time.perf_counter() - started)
        _SEGMENTS_GAUGE.set(len(self.log.segments()))
        return checkpoint

    def compact(self) -> int:
        """Drop dead events from closed segments; returns the dropped count.

        Events before the latest checkpoint's offset whose offers neither
        survive the log nor reappear later are rewritten away, so both a cold
        replay and a snapshot+tail restore keep working (see
        :meth:`~repro.store.segments.SegmentStore.compact`).
        """
        started = time.perf_counter() if _OBS.enabled else 0.0
        with _TRACER.span("store.compact"):
            before = None
            if self.snapshots.exists():
                before = self.snapshots.load().log_offset
            dropped = self.log.compact(self.log.surviving_subjects(), before=before)
        if _OBS.enabled:
            _COMPACT_SECONDS.observe(time.perf_counter() - started)
            _COMPACT_DROPPED.inc(dropped)
        _SEGMENTS_GAUGE.set(len(self.log.segments()))
        return dropped

    # ------------------------------------------------------------------
    # Restore side
    # ------------------------------------------------------------------
    def restore(
        self,
        engine: str | None = None,
        scenario: "Scenario | None" = None,
        **session_options,
    ) -> FlexSession:
        """Rebuild a session from the snapshot, then replay the log tail.

        ``engine`` picks the live-family backend to rebuild (default: the
        family that wrote the snapshot); the session's ``_build_engine`` hook
        constructs it empty, the captured state is installed, the checkpointed
        warehouse replaces the empty one, and every stored event past the
        snapshot's offset is replayed through the normal ingest path.
        ``scenario`` defaults to regenerating the checkpoint's recorded
        scenario configuration.
        """
        started = time.perf_counter()
        with _TRACER.span("store.restore"):
            checkpoint = self.snapshots.load()
            engine = engine or checkpoint.engine
            if scenario is None:
                config = checkpoint.scenario_config()
                if config is None:
                    raise StoreError(
                        "checkpoint records no scenario configuration; pass scenario="
                    )
                from repro.datagen.scenarios import generate_scenario

                scenario = generate_scenario(config)
            session = FlexSession(
                scenario,
                engine=engine,
                parameters=checkpoint.state.parameters,
                live_preload=False,
                **session_options,
            )
            backend = _live_backend(session)
            restore_engine_state(backend.engine, checkpoint.state)
            if checkpoint.schema is not None:
                backend.warehouse = LiveWarehouse(
                    checkpoint.schema, session.grid, checkpoint.state.parameters
                )
            else:
                self._rebuild_warehouse(backend)
            backend._events_ingested = checkpoint.log_offset
            # The read path seeded at construction saw an *empty* engine;
            # re-seed so the baseline snapshot is the checkpointed state (at
            # its restored commit sequence) and tail commits advance from it.
            backend.reseed_readpath()
            # The restore rebuilt the committed state under the hub's feet;
            # re-attach any standing subscriptions and materialized views so
            # they are rebased on the checkpointed state *before* the tail
            # replay delivers its commits through them.
            session._attach_standing(backend)
            tail_events = 0
            if self.log.segments():
                report = replay(self.log.tail(checkpoint.log_offset), backend)
                tail_events = report.events
                backend.note_ingested(tail_events)
        elapsed = time.perf_counter() - started
        if _OBS.enabled:
            _RESTORE_SECONDS.observe(elapsed)
        _SEGMENTS_GAUGE.set(len(self.log.segments()))
        self.last_restore = RestoreReport(
            engine=engine,
            log_offset=checkpoint.log_offset,
            tail_events=tail_events,
            offers=len(backend.offers()),
            aggregates=len(backend.engine.aggregated_offers()),
            seconds=elapsed,
        )
        return session

    def _rebuild_warehouse(self, backend: LiveEngine) -> None:
        """Rebuild the star schema from the restored engine (no CSV in checkpoint)."""
        for offer in backend.offers():
            backend.warehouse.upsert_offer(offer)
        for offer in backend.engine.aggregated_offers():
            if offer.is_aggregate and backend.engine.constituents_of(offer.id):
                backend.warehouse._upsert_aggregate(offer)

    # ------------------------------------------------------------------
    # The recovery contract
    # ------------------------------------------------------------------
    def verify(self, session: FlexSession) -> None:
        """Prove the session's live state equivalent to the batch pipeline.

        Rebuilds the batch engine from the live engine's surviving offers
        (:meth:`FlexSession.snapshot`) and compares both a raw read and a
        full aggregation — ids must agree exactly on the read, profiles
        bit-for-bit (ids modulo canonical form) on the aggregation.  Raises
        :class:`StoreError` on any divergence.
        """
        backend = _live_backend(session)
        backend.refresh()
        batch = session.snapshot()
        raw_spec = QuerySpec()
        live_raw = execute(backend, session.grid, raw_spec)
        batch_raw = execute(batch, session.grid, raw_spec)
        if sorted(o.id for o in live_raw) != sorted(o.id for o in batch_raw):
            raise StoreError(
                f"recovered population diverged: {len(live_raw)} live vs "
                f"{len(batch_raw)} batch offers"
            )
        agg_spec = QuerySpec.build(parameters=backend.parameters)
        live_agg = execute(backend, session.grid, agg_spec)
        batch_agg = execute(batch, session.grid, agg_spec)
        if not batch_agg.matches(live_agg):
            raise StoreError(
                "recovered aggregation state diverged from the batch pipeline "
                f"({len(live_agg)} live vs {len(batch_agg)} batch outputs)"
            )

"""Durability for the live engines (the ``repro.store`` subsystem).

Layers, bottom up:

* :mod:`repro.store.state` — :class:`EngineState`:
  :func:`capture_engine_state` / :func:`restore_engine_state` turn any
  committed live-family engine into plain data and back, across engine
  families.
* :mod:`repro.store.segments` — :class:`SegmentStore`: the on-disk,
  sequence-numbered event log split into JSONL segments (each with a binary
  byte-offset sidecar index so tail reads seek instead of parse), with
  ``compact()``.
* :mod:`repro.store.columnar` — the binary offset-indexed columnar format
  for checkpointed warehouses (per-column blocks + a footer index; restores
  memmap the typed columns).
* :mod:`repro.store.snapshot` — :class:`SnapshotStore`: versioned checkpoint
  directories (offers + aggregates + warehouse in columnar or CSV form +
  manifest).
* :mod:`repro.store.recovery` — :class:`RecoveryManager`: checkpoint /
  restore / verify over one durability directory, enforcing the recovery
  contract (snapshot + log tail ≡ full replay).
"""

from repro.store.columnar import load_schema_columnar, read_table, save_schema_columnar, write_table
from repro.store.recovery import EVENTS_SUBDIR, RecoveryManager, RestoreReport
from repro.store.segments import SegmentStore
from repro.store.snapshot import CHECKPOINT_VERSION, WAREHOUSE_FORMATS, Checkpoint, SnapshotStore
from repro.store.state import (
    AggregateRecord,
    EngineState,
    capture_engine_state,
    restore_engine_state,
)

__all__ = [
    "EVENTS_SUBDIR",
    "RecoveryManager",
    "RestoreReport",
    "SegmentStore",
    "CHECKPOINT_VERSION",
    "WAREHOUSE_FORMATS",
    "Checkpoint",
    "SnapshotStore",
    "load_schema_columnar",
    "read_table",
    "save_schema_columnar",
    "write_table",
    "AggregateRecord",
    "EngineState",
    "capture_engine_state",
    "restore_engine_state",
]

"""Versioned on-disk checkpoints of a live-family engine + warehouse.

A checkpoint directory is written by :class:`SnapshotStore` and contains:

* ``manifest.json`` — format version, engine family, aggregation parameters,
  allocator state, the event-log offset the snapshot is consistent with,
  (when known) the scenario configuration to regenerate the session from,
  and which *data buffer* holds the current snapshot;
* two data buffers, ``snapshot-a/`` and ``snapshot-b/``, each holding
  ``offers.jsonl`` (the surviving offers, one JSON document per line),
  ``aggregates.jsonl`` (the committed aggregate outputs with their grid
  cell, chunk index and stable id — see
  :class:`~repro.store.state.AggregateRecord`) and a ``warehouse/`` directory
  holding the live warehouse's star schema — ``*.fcb`` binary columnar files
  (:mod:`repro.store.columnar`, the default: restores memmap the column
  blocks instead of parsing text) or ``*.csv`` in the batch persistence
  format (``warehouse_format="csv"``, and the read path for checkpoints
  written before the manifest recorded a format).

Saves are double-buffered: a new checkpoint is written into the buffer the
current manifest does *not* reference, and the manifest — the commit point —
is swapped in last via an atomic rename.  A crash at any instant therefore
leaves either the new checkpoint (manifest landed) or the previous one
(manifest untouched, its buffer never written to); a directory with data
files but no manifest is refused by :meth:`SnapshotStore.load` instead of
being restored torn.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.aggregation.parameters import AggregationParameters
from repro.errors import StoreError
from repro.flexoffer.serialization import flex_offer_from_dict, flex_offer_to_dict
from repro.live.events import read_jsonl, write_jsonl
from repro.store.columnar import load_schema_columnar, save_schema_columnar
from repro.store.state import AggregateRecord, EngineState
from repro.warehouse.persistence import load_schema, save_schema
from repro.warehouse.schema import StarSchema

#: Format version of the checkpoint directory layout.
CHECKPOINT_VERSION = 1

#: Supported warehouse serializations inside a checkpoint buffer:
#: ``columnar`` is the binary offset-indexed format (:mod:`repro.store.columnar`,
#: memmap restores), ``csv`` the text format batch dumps use.  Checkpoints
#: written before the manifest recorded a format are read as ``csv``.
WAREHOUSE_FORMATS = ("columnar", "csv")

_MANIFEST = "manifest.json"
_OFFERS = "offers.jsonl"
_AGGREGATES = "aggregates.jsonl"
_WAREHOUSE = "warehouse"
#: The two data buffers saves alternate between (manifest names the live one).
_BUFFERS = ("snapshot-a", "snapshot-b")


@dataclass
class Checkpoint:
    """One loaded checkpoint: engine state, optional warehouse, manifest."""

    state: EngineState
    schema: StarSchema | None
    manifest: dict[str, Any]

    @property
    def log_offset(self) -> int:
        """Events the snapshot already contains; replays resume here."""
        return int(self.manifest["log_offset"])

    @property
    def engine(self) -> str:
        """The engine family that wrote the snapshot."""
        return str(self.manifest["engine"])

    def scenario_config(self):
        """The recorded scenario configuration (``None`` when not recorded)."""
        payload = self.manifest.get("scenario")
        if payload is None:
            return None
        from repro.datagen.scenarios import ScenarioConfig

        return ScenarioConfig(**payload)


class SnapshotStore:
    """Reads and writes checkpoint directories."""

    def __init__(self, directory: str | Path, warehouse_format: str = "columnar") -> None:
        if warehouse_format not in WAREHOUSE_FORMATS:
            raise StoreError(
                f"unknown warehouse format {warehouse_format!r} "
                f"(supported: {', '.join(WAREHOUSE_FORMATS)})"
            )
        self.directory = Path(directory)
        self.warehouse_format = warehouse_format

    def exists(self) -> bool:
        """Whether the directory holds a committed (manifest-bearing) checkpoint."""
        return (self.directory / _MANIFEST).is_file()

    # ------------------------------------------------------------------
    # Save
    # ------------------------------------------------------------------
    def _live_buffer(self) -> str | None:
        """The buffer the current manifest references (``None`` when absent)."""
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.is_file():
            return None
        try:
            return json.loads(manifest_path.read_text(encoding="utf-8")).get("data")
        except ValueError:
            return None

    def save(
        self,
        state: EngineState,
        log_offset: int,
        schema: StarSchema | None = None,
        scenario_config: Any = None,
    ) -> Path:
        """Write one checkpoint; returns the manifest path (the commit point).

        The data lands in the buffer the current manifest does *not*
        reference, so the previous checkpoint stays committed and loadable
        until the new manifest replaces the old one atomically.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        manifest_path = self.directory / _MANIFEST
        buffer = _BUFFERS[1] if self._live_buffer() == _BUFFERS[0] else _BUFFERS[0]
        data_dir = self.directory / buffer
        data_dir.mkdir(parents=True, exist_ok=True)
        write_jsonl(
            data_dir / _OFFERS,
            (flex_offer_to_dict(offer) for offer in state.offers),
        )
        write_jsonl(
            data_dir / _AGGREGATES,
            (record.to_dict() for record in state.aggregates),
        )
        if schema is not None:
            if self.warehouse_format == "columnar":
                save_schema_columnar(schema, data_dir / _WAREHOUSE)
            else:
                save_schema(schema, data_dir / _WAREHOUSE)
        manifest = {
            "version": CHECKPOINT_VERSION,
            "data": buffer,
            "warehouse_format": self.warehouse_format,
            "engine": state.engine,
            "parameters": asdict(state.parameters),
            "id_offset": state.id_offset,
            "next_id": state.next_id,
            "reserved_ids": list(state.reserved_ids),
            "commit_count": state.commit_count,
            # Informational (what wrote the snapshot): restores never depend
            # on shard topology — the state is topology-free and the session
            # builds its engines with its own defaults.
            "shard_count": state.shard_count,
            "log_offset": int(log_offset),
            "offer_count": len(state.offers),
            "aggregate_count": len(state.aggregates),
            "has_warehouse": schema is not None,
            "scenario": asdict(scenario_config) if scenario_config is not None else None,
        }
        staged = manifest_path.with_suffix(".json.tmp")
        staged.write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(staged, manifest_path)
        return manifest_path

    # ------------------------------------------------------------------
    # Load
    # ------------------------------------------------------------------
    def load(self) -> Checkpoint:
        """Read the checkpoint back; raises :class:`StoreError` when absent/torn."""
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.is_file():
            raise StoreError(
                f"{self.directory} holds no committed checkpoint (missing {_MANIFEST})"
            )
        try:
            manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise StoreError(f"malformed checkpoint manifest: {exc}") from exc
        version = manifest.get("version")
        if version != CHECKPOINT_VERSION:
            raise StoreError(
                f"checkpoint format version {version!r} is not supported "
                f"(this build reads version {CHECKPOINT_VERSION})"
            )
        data_dir = self.directory / str(manifest.get("data", _BUFFERS[0]))
        try:
            parameters = AggregationParameters(**manifest["parameters"])
            offers = [
                flex_offer_from_dict(payload)
                for payload in read_jsonl(data_dir / _OFFERS)
            ]
            aggregates = [
                AggregateRecord.from_dict(payload)
                for payload in read_jsonl(data_dir / _AGGREGATES)
            ]
            state = EngineState(
                engine=str(manifest["engine"]),
                parameters=parameters,
                id_offset=int(manifest["id_offset"]),
                offers=offers,
                aggregates=aggregates,
                next_id=int(manifest["next_id"]),
                reserved_ids=tuple(int(r) for r in manifest.get("reserved_ids", ())),
                commit_count=int(manifest.get("commit_count", 0)),
                shard_count=int(manifest.get("shard_count", 0)),
            )
        except (KeyError, TypeError, ValueError, OSError) as exc:
            raise StoreError(f"malformed checkpoint in {self.directory}: {exc}") from exc
        schema = None
        if manifest.get("has_warehouse"):
            # Checkpoints written before the format was recorded are CSV.
            stored_format = manifest.get("warehouse_format", "csv")
            if stored_format == "columnar":
                schema = load_schema_columnar(data_dir / _WAREHOUSE)
            elif stored_format == "csv":
                schema = load_schema(data_dir / _WAREHOUSE)
            else:
                raise StoreError(
                    f"checkpoint warehouse format {stored_format!r} is not supported"
                )
        return Checkpoint(state=state, schema=schema, manifest=manifest)

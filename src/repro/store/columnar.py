"""Binary, offset-indexed columnar snapshots of the warehouse star schema.

The CSV checkpoint format (:mod:`repro.warehouse.persistence`) re-parses
every cell as text on restore, which is the restore-time wall at 100k+
offers.  This module stores each table as one ``<table>.fcb`` file laid out
for zero-parse reads::

    magic "FVCB" + u32 format version          (8-byte header)
    column blocks, back to back                (raw bytes, see below)
    footer JSON                                (the offset index)
    u64 footer length + magic "FVCB"           (12-byte trailer)

The footer records, per column, the *kind* of its block and the byte offsets
needed to read it without touching anything else:

* ``num`` — the live cells of an int64/float64/bool column as raw
  little-endian array bytes.  With numpy available these are read back
  through :func:`numpy.memmap` straight into the typed column arrays of
  :class:`~repro.warehouse.table.Table` — no text parse, no per-cell Python.
  Without numpy they decode through the stdlib ``array`` module.
* ``str`` — everything else (strings, datetimes, nullable columns, demoted
  typed columns): a ``(rows + 1)`` int64 offset array plus one UTF-8 blob.
  Cells are written as exactly the text the CSV writer would have produced
  (:func:`repro.warehouse.persistence._format`) and decoded with the same
  per-column coercers CSV restores use — so a binary restore is
  value-identical to a CSV restore *by construction*, which is what the
  round-trip property suite pins.

Like every checkpoint artifact the files are only made visible by the
manifest rename in :class:`~repro.store.snapshot.SnapshotStore`; a torn
write is never read.  Byte order is little-endian on disk; on a big-endian
host without numpy the writer falls back to ``str`` blocks rather than
produce unportable files.
"""

from __future__ import annotations

import json
import struct
import sys
import time
from array import array
from pathlib import Path
from typing import Any

from repro.errors import StoreError
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS
from repro.warehouse.persistence import _column_coercer, _format, _missing_default
from repro.warehouse.schema import DIMENSION_TABLES, FACT_TABLES, StarSchema
from repro.warehouse.table import ColumnArray, Table, _fits, numpy_enabled

try:  # Optional dependency: the array-module fallback reads the same bytes.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised in the no-numpy CI leg
    _np = None

# ----------------------------------------------------------------------
# Observability: the columnar write/read legs of a checkpoint cycle.  One
# observation per table file, so the stats table shows where a checkpoint's
# wall clock actually goes (these nest under the store.checkpoint /
# store.restore spans when a RecoveryManager drives them).
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_COLUMNAR_WRITE_SECONDS = _OBS.histogram(
    "repro.store.columnar.write.seconds", "columnar table write latency (one .fcb file)"
)
_COLUMNAR_READ_SECONDS = _OBS.histogram(
    "repro.store.columnar.read.seconds", "columnar table read latency (one .fcb file)"
)
_COLUMNAR_ROWS = _OBS.histogram(
    "repro.store.columnar.rows", "rows per columnar table file", COUNT_BUCKETS
)

#: File magic and the on-disk format version.
MAGIC = b"FVCB"
FORMAT_VERSION = 1

_TRAILER = struct.Struct("<Q4s")
_HEADER = struct.Struct("<4sI")

#: Column dtype -> (little-endian numpy dtype string, array-module typecode).
_NUM_DTYPES: dict[str, tuple[str, str]] = {
    "int64": ("<i8", "q"),
    "float64": ("<f8", "d"),
    "bool": ("|b1", "B"),
}

_SUFFIX = ".fcb"


def _binary_capable() -> bool:
    """Whether this host can write ``num`` blocks in the on-disk byte order."""
    return _np is not None or sys.byteorder == "little"


def _num_bytes(dtype: str, values: Any) -> bytes:
    """Raw little-endian block bytes for a numeric column."""
    np_dtype, typecode = _NUM_DTYPES[dtype]
    if _np is not None:
        return _np.ascontiguousarray(_np.asarray(values, dtype=dtype), dtype=np_dtype).tobytes()
    if dtype == "bool":
        return bytes(1 if value else 0 for value in values)
    return array(typecode, values).tobytes()


def _num_values(dtype: str, data: bytes, rows: int) -> Any:
    """Decode a ``num`` block without numpy (the scalar fallback)."""
    if dtype == "bool":
        return [byte != 0 for byte in data]
    _, typecode = _NUM_DTYPES[dtype]
    decoded = array(typecode, data)
    return decoded.tolist()


def write_table(table: Table, path: str | Path) -> Path:
    """Write one table's live rows as a columnar binary file."""
    started = time.perf_counter()
    with _TRACER.span("store.columnar.write"):
        path, rows = _write_table(table, path)
    if _OBS.enabled:
        _COLUMNAR_WRITE_SECONDS.observe(time.perf_counter() - started)
        _COLUMNAR_ROWS.observe(rows)
    return path


def _write_table(table: Table, path: str | Path) -> tuple[Path, int]:
    path = Path(path)
    live = list(table.live_positions())
    rows = len(live)
    columns: list[dict[str, Any]] = []
    with open(path, "wb") as handle:
        handle.write(_HEADER.pack(MAGIC, FORMAT_VERSION))
        offset = _HEADER.size
        for name in table.columns:
            backing = table.column(name)
            dtype = table.dtypes.get(name)
            values: Any = None
            entry: dict[str, Any] = {"name": name}
            if dtype is not None and isinstance(backing, ColumnArray):
                values = backing.array
                if table.tombstone_count:
                    values = values[_np.asarray(live, dtype=_np.int64)]
            else:
                values = [backing[position] for position in live]
                if not (
                    dtype is not None
                    and _binary_capable()
                    and all(_fits(dtype, value) for value in values)
                ):
                    dtype = None
            if dtype is not None:
                block = _num_bytes(dtype, values)
                entry.update(kind="num", dtype=dtype, offset=offset, length=len(block))
                handle.write(block)
                offset += len(block)
            else:
                encoded = [str(_format(value)).encode("utf-8") for value in values]
                offsets = array("q", [0] * (rows + 1))
                position = 0
                for index, cell in enumerate(encoded):
                    position += len(cell)
                    offsets[index + 1] = position
                offsets_block = _num_bytes("int64", offsets)
                blob = b"".join(encoded)
                entry.update(
                    kind="str",
                    offsets_offset=offset,
                    blob_offset=offset + len(offsets_block),
                    blob_length=len(blob),
                )
                handle.write(offsets_block)
                handle.write(blob)
                offset += len(offsets_block) + len(blob)
            columns.append(entry)
        footer = json.dumps(
            {"table": table.name, "rows": rows, "columns": columns}, sort_keys=True
        ).encode("utf-8")
        handle.write(footer)
        handle.write(_TRAILER.pack(len(footer), MAGIC))
    return path, rows


def _read_footer(path: Path) -> dict[str, Any]:
    size = path.stat().st_size
    if size < _HEADER.size + _TRAILER.size:
        raise StoreError(f"{path} is too short to be a columnar table file")
    with open(path, "rb") as handle:
        magic, version = _HEADER.unpack(handle.read(_HEADER.size))
        if magic != MAGIC:
            raise StoreError(f"{path} is not a columnar table file (bad magic)")
        if version != FORMAT_VERSION:
            raise StoreError(
                f"columnar format version {version} is not supported "
                f"(this build reads version {FORMAT_VERSION})"
            )
        handle.seek(size - _TRAILER.size)
        footer_length, trailer_magic = _TRAILER.unpack(handle.read(_TRAILER.size))
        if trailer_magic != MAGIC or footer_length > size - _HEADER.size - _TRAILER.size:
            raise StoreError(f"{path} has a torn or malformed footer")
        handle.seek(size - _TRAILER.size - footer_length)
        try:
            return json.loads(handle.read(footer_length).decode("utf-8"))
        except ValueError as exc:
            raise StoreError(f"malformed columnar footer in {path}: {exc}") from exc


def _read_block(path: Path, offset: int, length: int) -> bytes:
    with open(path, "rb") as handle:
        handle.seek(offset)
        return handle.read(length)


def read_table(path: str | Path, memmap: bool = True) -> tuple[str, int, dict[str, Any]]:
    """Read one columnar file: ``(table name, row count, column -> values)``.

    ``num`` blocks come back as numpy arrays — memory-mapped views when
    ``memmap`` is true (the restore fast path: the bytes are adopted into
    the table's typed columns with one copy, no text parse), eagerly read
    otherwise — or as plain lists without numpy.  ``str`` blocks decode
    through the CSV coercers, so values match a CSV restore exactly.
    """
    started = time.perf_counter()
    with _TRACER.span("store.columnar.read"):
        result = _read_table(path, memmap=memmap)
    if _OBS.enabled:
        _COLUMNAR_READ_SECONDS.observe(time.perf_counter() - started)
    return result


def _read_table(path: str | Path, memmap: bool = True) -> tuple[str, int, dict[str, Any]]:
    path = Path(path)
    footer = _read_footer(path)
    rows = int(footer["rows"])
    data: dict[str, Any] = {}
    for entry in footer["columns"]:
        name = entry["name"]
        kind = entry["kind"]
        if kind == "num":
            dtype = entry["dtype"]
            if dtype not in _NUM_DTYPES:
                raise StoreError(f"{path}: column {name!r} has unknown dtype {dtype!r}")
            np_dtype, _ = _NUM_DTYPES[dtype]
            if _np is not None:
                if rows == 0:
                    data[name] = _np.empty(0, dtype=dtype)
                elif memmap:
                    data[name] = _np.memmap(
                        path, dtype=np_dtype, mode="r", offset=entry["offset"], shape=(rows,)
                    )
                else:
                    with open(path, "rb") as handle:
                        handle.seek(entry["offset"])
                        data[name] = _np.fromfile(handle, dtype=np_dtype, count=rows)
            else:
                data[name] = _num_values(
                    dtype, _read_block(path, entry["offset"], entry["length"]), rows
                )
        elif kind == "str":
            offsets = _num_values(
                "int64", _read_block(path, entry["offsets_offset"], 8 * (rows + 1)), rows + 1
            )
            blob = _read_block(path, entry["blob_offset"], entry["blob_length"])
            cells = [
                blob[offsets[index] : offsets[index + 1]].decode("utf-8")
                for index in range(rows)
            ]
            coercer = _column_coercer(name)
            data[name] = [coercer(cell) for cell in cells] if coercer else cells
        else:
            raise StoreError(f"{path}: column {name!r} has unknown block kind {kind!r}")
    return str(footer["table"]), rows, data


def save_schema_columnar(schema: StarSchema, directory: str | Path) -> list[Path]:
    """Write every table of ``schema`` as ``<directory>/<table>.fcb``."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    return [
        write_table(table, target / f"{name}{_SUFFIX}")
        for name, table in schema.tables.items()
    ]


def load_schema_columnar(directory: str | Path, memmap: bool = True) -> StarSchema:
    """Rebuild a star schema from a directory written by :func:`save_schema_columnar`.

    Mirrors :func:`repro.warehouse.persistence.load_schema`: unknown files
    are ignored, tables absent from the directory stay empty, and columns
    absent from an old dump backfill with the same defaults — so schema
    growth keeps old binary checkpoints readable.
    """
    source = Path(directory)
    if not source.is_dir():
        raise StoreError(f"{source} is not a directory")
    schema = StarSchema.empty()
    for name in {**DIMENSION_TABLES, **FACT_TABLES}:
        path = source / f"{name}{_SUFFIX}"
        if not path.exists():
            continue
        target = schema.table(name)
        _, rows, data = read_table(path, memmap=memmap)
        data = {column: values for column, values in data.items() if column in target.columns}
        for column in target.columns:
            if column not in data:
                data[column] = [_missing_default(column)] * rows
        target.install_columns(data)
    return schema

"""Segmented event-log persistence with compaction.

The in-memory :class:`~repro.live.events.EventLog` holds the whole stream;
for a long-running service the log must live on disk and must not grow
forever.  :class:`SegmentStore` persists events as JSON-Lines *segments*
(``events-00000000.jsonl``, ``events-00000512.jsonl``, ...; file named by the
first sequence number it was opened for) of at most ``segment_size`` records
each.  Every record carries its global sequence number, so a checkpoint can
say "I contain everything before sequence N" and a restore replays exactly
the tail ``[N, ...)``.

:meth:`SegmentStore.compact` rewrites the *closed* segments (every file but
the newest) keeping only the events that still matter: events of surviving
offers, events at or past the protected ``before`` offset (the latest
checkpoint's), and events of any offer the unprotected suffix still mentions.
Sequence numbers are preserved, so tails remain addressable after any number
of compactions, and a cold replay of the compacted log ends in the same state
as a cold replay of the full one.

Each segment carries a binary *offset-index sidecar* (``<segment>.idx``:
little-endian ``(sequence, byte offset)`` pairs, appended in lockstep with
the data lines).  :meth:`SegmentStore.tail` uses it to seek straight to the
first record of the tail instead of parsing the segment's earlier lines —
the same trade the columnar checkpoint format makes for warehouse columns.
The sidecar is an accelerator, never a source of truth: a missing, stale or
implausible index silently degrades to the full parse.
"""

from __future__ import annotations

import json
import os
import struct
import time
from bisect import bisect_left
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.errors import StoreError
from repro.live.events import (
    OfferEvent,
    event_from_dict,
    event_to_dict,
    read_jsonl,
    write_jsonl,
)
from repro.obs import get_registry, get_tracer
from repro.obs.metrics import COUNT_BUCKETS

# ----------------------------------------------------------------------
# Observability: the restore-time tail replay.  The seek counters answer
# "is the .idx sidecar actually paying off" — a hit means the tail started
# mid-file through the index, a miss means a full-parse fallback (missing,
# stale or implausible sidecar).  The tail histograms cover the whole
# stream-out, however far the consumer drained it.
# ----------------------------------------------------------------------
_OBS = get_registry()
_TRACER = get_tracer()
_SEEK_HITS = _OBS.counter(
    "repro.store.segment.seek.hits", "tail reads that seeked through the .idx sidecar"
)
_SEEK_MISSES = _OBS.counter(
    "repro.store.segment.seek.misses", "tail reads that fell back to a full segment parse"
)
_TAIL_SECONDS = _OBS.histogram(
    "repro.store.segment.tail.seconds", "segment-log tail replay latency (drain to exhaustion)"
)
_TAIL_RECORDS = _OBS.histogram(
    "repro.store.segment.tail.records", "events streamed per tail replay", COUNT_BUCKETS
)

_SEGMENT_PREFIX = "events-"
_SEGMENT_SUFFIX = ".jsonl"
_INDEX_SUFFIX = ".idx"
_INDEX_ENTRY = struct.Struct("<qq")


def _subject_of(event_payload: dict[str, Any]) -> int:
    """The subject offer id of one serialized event (no object rebuild)."""
    if "offer_id" in event_payload:
        return int(event_payload["offer_id"])
    try:
        return int(event_payload["offer"]["id"])
    except (KeyError, TypeError) as exc:
        raise StoreError(f"malformed event record: {event_payload!r}") from exc


class SegmentStore:
    """An on-disk, sequence-numbered offer-event log split into segments.

    Events are appended in the order the engine consumes them, so the
    sequence number doubles as the replay offset: a checkpoint taken after
    the engine ingested ``n`` events records ``log_offset=n`` and a restore
    replays :meth:`tail`\\ ``(n)``.
    """

    def __init__(self, directory: str | Path, segment_size: int = 512) -> None:
        if segment_size < 1:
            raise StoreError("segment_size must be >= 1")
        self.directory = Path(directory)
        self.segment_size = segment_size
        self._active: Path | None = None
        self._active_count = 0
        self._next_sequence = 0
        segments = self.segments()
        if segments:
            self._active = segments[-1]
            self._repair_torn_tail(self._active)
            last_sequence = -1
            for sequence, _ in self._records(self._active):
                last_sequence = max(last_sequence, sequence)
                self._active_count += 1
            if last_sequence < 0:
                # An empty active segment resumes at the sequence in its name.
                last_sequence = self._first_sequence(self._active) - 1
            self._next_sequence = last_sequence + 1

    def _repair_torn_tail(self, path: Path) -> None:
        """Drop a partially written final line left by a crash mid-append.

        Only the *final* line of the *active* segment can legitimately be
        torn (appends go nowhere else; compaction renames atomically), and
        the torn event was never acknowledged, so truncating it — atomically,
        keeping every complete line — lets the log reopen and reissue its
        sequence number.  A malformed line anywhere else is real corruption
        and still raises on read.
        """
        raw = path.read_text(encoding="utf-8")
        lines = [line for line in raw.split("\n") if line.strip()]
        if not lines:
            return
        try:
            json.loads(lines[-1])
        except ValueError:
            self._drop_index(path)
            staged = path.with_suffix(".jsonl.tmp")
            staged.write_text(
                "".join(line + "\n" for line in lines[:-1]), encoding="utf-8"
            )
            os.replace(staged, path)

    # ------------------------------------------------------------------
    # Layout
    # ------------------------------------------------------------------
    def segments(self) -> list[Path]:
        """The segment files, oldest first (the last one is the active one).

        Ordered by the sequence number in the file name, not lexically —
        zero padding runs out past 8 digits, the log must not.
        """
        if not self.directory.is_dir():
            return []
        return sorted(
            (
                path
                for path in self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
                if path.is_file()
            ),
            key=self._first_sequence,
        )

    @staticmethod
    def _first_sequence(path: Path) -> int:
        text = path.name[len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)]
        try:
            return int(text)
        except ValueError as exc:
            raise StoreError(f"malformed segment file name {path.name!r}") from exc

    @staticmethod
    def _records(path: Path) -> Iterator[tuple[int, dict[str, Any]]]:
        for payload in read_jsonl(path):
            try:
                yield int(payload["seq"]), payload["event"]
            except (KeyError, TypeError) as exc:
                raise StoreError(f"malformed segment record in {path}: {exc}") from exc

    @property
    def next_sequence(self) -> int:
        """The sequence number the next appended event will receive."""
        return self._next_sequence

    @property
    def stored_events(self) -> int:
        """Records currently on disk (compaction makes this < next_sequence)."""
        return sum(1 for _ in self.records())

    def records(self) -> Iterator[tuple[int, dict[str, Any]]]:
        """Every stored ``(sequence, event payload)`` pair, oldest first."""
        for path in self.segments():
            yield from self._records(path)

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(self, event: OfferEvent) -> int:
        """Persist one event; returns its sequence number."""
        sequence = self._next_sequence
        self.extend([event])
        return sequence

    def extend(self, events: Iterable[OfferEvent]) -> int:
        """Persist many events (one file open per touched segment); returns the count."""
        # Created on first write, so pure read paths (a restore from a
        # mistyped directory, an existence probe) never leave dirs behind.
        self.directory.mkdir(parents=True, exist_ok=True)
        appended = 0
        batch: list[dict[str, Any]] = []
        for event in events:
            if self._active is None or self._active_count >= self.segment_size:
                if batch:
                    self._append_segment(self._active, batch)
                    batch = []
                self._active = self.directory / (
                    f"{_SEGMENT_PREFIX}{self._next_sequence:08d}{_SEGMENT_SUFFIX}"
                )
                self._active_count = 0
            batch.append({"seq": self._next_sequence, "event": event_to_dict(event)})
            self._next_sequence += 1
            self._active_count += 1
            appended += 1
        if batch:
            self._append_segment(self._active, batch)
        return appended

    def _append_segment(self, path: Path, batch: list[dict[str, Any]]) -> None:
        """Append records to one segment and extend its offset-index sidecar.

        The data lines land first, the index entries second — a crash in
        between leaves a merely *stale* index, which :meth:`_seek_offset`
        handles (it only ever seeks to a boundary at or before the target
        and scans forward), never a wrong one.
        """
        base = path.stat().st_size if path.exists() else 0
        entries = bytearray()
        with open(path, "a", encoding="utf-8") as handle:
            for record in batch:
                line = json.dumps(record, sort_keys=True)
                handle.write(line)
                handle.write("\n")
                entries += _INDEX_ENTRY.pack(int(record["seq"]), base)
                base += len(line.encode("utf-8")) + 1
        with open(self._index_path(path), "ab") as handle:
            handle.write(entries)

    @staticmethod
    def _index_path(path: Path) -> Path:
        return path.with_name(path.name + _INDEX_SUFFIX)

    def _drop_index(self, path: Path) -> None:
        self._index_path(path).unlink(missing_ok=True)

    def _write_index(self, path: Path, records: list[dict[str, Any]]) -> None:
        """Rebuild a segment's sidecar from scratch (after compaction)."""
        entries = bytearray()
        offset = 0
        for record in records:
            entries += _INDEX_ENTRY.pack(int(record["seq"]), offset)
            offset += len(json.dumps(record, sort_keys=True).encode("utf-8")) + 1
        self._index_path(path).write_bytes(bytes(entries))

    def _seek_offset(self, path: Path, from_sequence: int) -> int:
        """Byte offset to start scanning ``path`` at for ``tail(from_sequence)``.

        Resolved through the sidecar index: the offset of the last record
        with sequence <= the target (scanning forward from there filters any
        earlier records away).  Returns 0 — the full parse — whenever the
        index is missing, malformed or implausible for the current file.
        """
        if not _OBS.enabled:
            return self._seek_offset_inner(path, from_sequence)
        with _TRACER.span("store.segment.seek"):
            offset = self._seek_offset_inner(path, from_sequence)
        if offset:
            _SEEK_HITS.inc()
        else:
            _SEEK_MISSES.inc()
        return offset

    def _seek_offset_inner(self, path: Path, from_sequence: int) -> int:
        try:
            raw = self._index_path(path).read_bytes()
        except OSError:
            return 0
        if not raw or len(raw) % _INDEX_ENTRY.size:
            return 0
        pairs = list(_INDEX_ENTRY.iter_unpack(raw))
        sequences = [sequence for sequence, _ in pairs]
        position = bisect_left(sequences, from_sequence)
        if position < len(pairs) and sequences[position] == from_sequence:
            offset = pairs[position][1]
        elif position > 0:
            offset = pairs[position - 1][1]
        else:
            return 0
        if offset <= 0 or offset >= path.stat().st_size:
            return 0
        # The offset must land on a line boundary; anything else means the
        # index belongs to an older incarnation of the file.
        with open(path, "rb") as handle:
            handle.seek(offset - 1)
            if handle.read(1) != b"\n":
                return 0
        return offset

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def tail(self, from_sequence: int = 0) -> Iterator[OfferEvent]:
        """Stream the stored events with sequence >= ``from_sequence``.

        Segments wholly before the cut are skipped without being read, and
        within the first overlapping segment the offset-index sidecar seeks
        past the already-checkpointed prefix — a restore parses only the
        bytes it replays.
        """
        if not _OBS.enabled:
            return self._tail(from_sequence)
        return self._timed_tail(from_sequence)

    def _timed_tail(self, from_sequence: int) -> Iterator[OfferEvent]:
        """The instrumented tail: latency and record count per replay.

        Deliberately **no span** in here: a generator can be dropped half
        consumed, and a span opened inside it would then close on whatever
        thread runs the finalizer — corrupting that thread's span stack.
        Histograms are closed over in a ``finally`` instead, which is safe
        at any point of consumption (including never).
        """
        started = time.perf_counter()
        records = 0
        try:
            for event in self._tail(from_sequence):
                records += 1
                yield event
        finally:
            _TAIL_SECONDS.observe(time.perf_counter() - started)
            _TAIL_RECORDS.observe(records)

    def _tail(self, from_sequence: int = 0) -> Iterator[OfferEvent]:
        paths = self.segments()
        for position, path in enumerate(paths):
            following = position + 1
            if following < len(paths) and self._first_sequence(paths[following]) <= from_sequence:
                continue
            offset = self._seek_offset(path, from_sequence) if from_sequence > 0 else 0
            if offset:
                with open(path, encoding="utf-8") as handle:
                    handle.seek(offset)
                    for line in handle:
                        line = line.strip()
                        if not line:
                            continue
                        try:
                            record = json.loads(line)
                            sequence, payload = int(record["seq"]), record["event"]
                        except (ValueError, KeyError, TypeError) as exc:
                            raise StoreError(
                                f"malformed segment record in {path}: {exc}"
                            ) from exc
                        if sequence >= from_sequence:
                            yield event_from_dict(payload)
            else:
                for sequence, payload in self._records(path):
                    if sequence >= from_sequence:
                        yield event_from_dict(payload)

    def events(self) -> Iterator[OfferEvent]:
        """Stream every stored event, oldest first."""
        return self.tail(0)

    def surviving_subjects(self) -> set[int]:
        """Offer ids alive at the end of the stored log.

        Adds and updates make a subject alive, withdrawals kill it; state
        changes leave liveness untouched.  Computed from the serialized
        records directly — no offers are rebuilt.
        """
        alive: set[int] = set()
        for _, payload in self.records():
            subject = _subject_of(payload)
            if payload.get("type") == "withdrawn":
                alive.discard(subject)
            elif payload.get("type") in ("added", "updated"):
                alive.add(subject)
        return alive

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def compact(self, surviving_ids: Iterable[int], before: int | None = None) -> int:
        """Rewrite closed segments dropping events that no longer matter.

        A record is dropped when its sequence precedes ``before`` (default:
        everything) *and* its subject is neither in ``surviving_ids`` nor
        mentioned at/after ``before`` nor in the active segment.  The two
        extra keep-rules make the result self-consistent: a cold replay never
        sees an event whose offer's earlier lifecycle was dropped, and a
        restore-plus-tail never loses an event past its checkpoint.  Returns
        the number of dropped records; closed segments that end up empty are
        deleted.
        """
        segment_paths = self.segments()
        if len(segment_paths) <= 1:
            return 0
        closed, active = segment_paths[:-1], segment_paths[-1]
        if before is None:
            before = self._next_sequence
        keep = set(surviving_ids)
        for _, payload in self._records(active):
            keep.add(_subject_of(payload))
        for path in closed:
            for sequence, payload in self._records(path):
                if sequence >= before:
                    keep.add(_subject_of(payload))
        dropped = 0
        for path in closed:
            kept: list[dict[str, Any]] = []
            total = 0
            for sequence, payload in self._records(path):
                total += 1
                if sequence >= before or _subject_of(payload) in keep:
                    kept.append({"seq": sequence, "event": payload})
            if len(kept) == total:
                continue
            dropped += total - len(kept)
            # The sidecar goes first: a crash mid-rewrite must leave either
            # no index (full-parse fallback) or one matching the new file.
            self._drop_index(path)
            if kept:
                # Rewrite via a temp file + atomic rename: a crash mid-compaction
                # must never truncate the only copy of a segment.
                staged = path.with_suffix(".jsonl.tmp")
                write_jsonl(staged, kept)
                os.replace(staged, path)
                self._write_index(path, kept)
            else:
                path.unlink()
        return dropped

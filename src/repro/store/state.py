"""Engine state capture and restore — the snapshot side of durability.

A committed live-family engine is fully determined by surprisingly little
data: the aggregation parameters, the surviving offers, the committed
aggregate outputs (with their grid cell, chunk index and stable id) and the
aggregate-id allocator's high-water mark.  Everything else — the grouping
grid, per-cell membership, constituent provenance, the no-op-suppression
mirrors — is a pure function of those, because grouping
(:func:`~repro.aggregation.grouping.group_key` /
:func:`~repro.aggregation.grouping.chunk_group`) is deterministic.

This module is a deliberate *friend* of the engine classes: it reaches into
their private bookkeeping rather than adding persistence methods to them,
which keeps the engines durability-agnostic and avoids a store↔live import
cycle.  The coupling is guarded twice — restores re-derive and cross-check
every structure (inconsistency raises), and ``tests/test_store_recovery.py``
round-trips all three engines, so an engine-internal refactor that breaks
the mapping fails loudly.

:func:`capture_engine_state` extracts that data from a clean (committed)
:class:`~repro.live.engine.LiveAggregationEngine`,
:class:`~repro.live.sharded.ShardedAggregationEngine` or
:class:`~repro.live.asynccommit.AsyncCommitEngine`;
:func:`restore_engine_state` rebuilds any of the three from it — including
across engine families (a checkpoint taken from the live engine restores into
a sharded one and vice versa).  Restores *verify* as they rebuild: a recorded
aggregate whose constituents disagree with the offer population, or a
multi-offer chunk with no recorded aggregate, raises
:class:`~repro.errors.StoreError` instead of silently diverging.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.aggregation.grouping import GroupKey, chunk_group, group_key
from repro.aggregation.parameters import AggregationParameters
from repro.errors import StoreError
from repro.flexoffer.model import FlexOffer
from repro.flexoffer.serialization import flex_offer_from_dict, flex_offer_to_dict
from repro.live.asynccommit import AsyncCommitEngine
from repro.live.engine import LiveAggregationEngine
from repro.live.sharded import ShardedAggregationEngine


@dataclass(frozen=True)
class AggregateRecord:
    """One committed aggregate output: its grid cell, chunk index and offer."""

    cell: GroupKey
    chunk: int
    offer: FlexOffer

    def to_dict(self) -> dict[str, Any]:
        return {
            "cell": list(self.cell),
            "chunk": self.chunk,
            "offer": flex_offer_to_dict(self.offer),
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "AggregateRecord":
        est, tft, direction = payload["cell"]
        return cls(
            cell=(int(est), int(tft), str(direction)),
            chunk=int(payload["chunk"]),
            offer=flex_offer_from_dict(payload["offer"]),
        )


@dataclass
class EngineState:
    """The minimal consistent description of a committed engine."""

    #: Which engine family produced the state ("live" / "sharded" / "async").
    engine: str
    parameters: AggregationParameters
    id_offset: int
    #: Surviving offers — raw and passthrough aggregates — in id order.
    offers: list[FlexOffer]
    #: Committed multi-offer aggregates with their (cell, chunk) identity.
    aggregates: list[AggregateRecord]
    #: Aggregate-id allocator high-water mark (max across shards).
    next_id: int
    #: Every id ever handed to an engine aggregate (collision fencing).
    reserved_ids: tuple[int, ...] = ()
    commit_count: int = 0
    shard_count: int = 0
    extras: dict[str, Any] = field(default_factory=dict)


def _require_clean(engine) -> None:
    if engine.pending_events or engine.has_pending_changes:
        raise StoreError(
            "cannot capture a dirty engine; commit (or flush) it first so the "
            "snapshot describes a consistent committed state"
        )


def _capture_grid(engine: LiveAggregationEngine) -> list[AggregateRecord]:
    """The committed multi-offer aggregates of one single-grid engine."""
    chunk_of = {aid: key for key, aid in engine._aggregate_ids.items()}
    records: list[AggregateRecord] = []
    for cell, outputs in engine.cell_outputs().items():
        for offer in outputs:
            if not offer.is_aggregate:
                continue
            key = chunk_of.get(offer.id)
            if key is None or key[0] != cell:
                raise StoreError(
                    f"aggregate {offer.id} has no allocator entry for cell {cell}"
                )
            records.append(AggregateRecord(cell=cell, chunk=key[1], offer=offer))
    return records


def capture_engine_state(engine) -> EngineState:
    """Extract the durable state of a clean (committed) incremental engine."""
    if isinstance(engine, AsyncCommitEngine):
        with engine._lock:
            _require_clean(engine)
            state = capture_engine_state(engine.inner)
        state.engine = "async"
        return state
    _require_clean(engine)
    if isinstance(engine, ShardedAggregationEngine):
        records: list[AggregateRecord] = []
        reserved: set[int] = set()
        next_id = engine.id_offset
        for shard in engine.shards:
            records.extend(_capture_grid(shard))
            reserved.update(shard._reserved_ids)
            next_id = max(next_id, shard._next_id)
        return EngineState(
            engine="sharded",
            parameters=engine.parameters,
            id_offset=engine.id_offset,
            offers=engine.offers(),
            aggregates=records,
            next_id=next_id,
            reserved_ids=tuple(sorted(reserved)),
            commit_count=engine._commit_count,
            shard_count=engine.shard_count,
        )
    if isinstance(engine, LiveAggregationEngine):
        return EngineState(
            engine="live",
            parameters=engine.parameters,
            id_offset=engine.id_offset,
            offers=engine.offers(),
            aggregates=_capture_grid(engine),
            next_id=engine._next_id,
            reserved_ids=tuple(sorted(engine._reserved_ids)),
            commit_count=engine._commit_count,
        )
    raise StoreError(f"cannot capture state of {type(engine).__name__}")


def _restore_grid(
    engine: LiveAggregationEngine,
    offers: list[FlexOffer],
    aggregates: list[AggregateRecord],
    next_id: int,
    reserved_ids,
    commit_count: int,
) -> None:
    """Install one single-grid engine's state (offers routed here already)."""
    engine._offers.clear()
    engine._passthrough.clear()
    engine._committed_passthrough.clear()
    engine._cells.clear()
    engine._cell_of.clear()
    # The chunk-granular dirty ledger restores *clean*: the snapshot describes
    # a committed state, so the first post-restore commit must re-aggregate
    # only what the replayed tail actually perturbs — never the whole grid.
    engine._dirty.clear()
    engine._dirty_passthrough.clear()
    engine._removed_passthrough.clear()
    engine._outputs.clear()
    engine._constituents.clear()
    engine._aggregate_ids.clear()
    for offer in offers:
        if offer.is_aggregate:
            engine._passthrough[offer.id] = offer
            engine._committed_passthrough[offer.id] = offer
            continue
        cell = group_key(offer, engine.parameters)
        engine._offers[offer.id] = offer
        engine._cells.setdefault(cell, set()).add(offer.id)
        engine._cell_of[offer.id] = cell
    recorded = {(record.cell, record.chunk): record.offer for record in aggregates}
    used: set[tuple[GroupKey, int]] = set()
    for cell, member_ids in engine._cells.items():
        members = [engine._offers[i] for i in sorted(member_ids)]
        outputs: list[FlexOffer] = []
        for chunk_index, group in enumerate(
            chunk_group(members, engine.parameters.max_group_size)
        ):
            if len(group) == 1:
                outputs.append(group[0])
                continue
            key = (cell, chunk_index)
            aggregate = recorded.get(key)
            if aggregate is None:
                raise StoreError(
                    f"snapshot misses the aggregate for cell {cell} chunk {chunk_index}"
                )
            if tuple(sorted(aggregate.constituent_ids)) != tuple(o.id for o in group):
                raise StoreError(
                    f"aggregate {aggregate.id} constituents disagree with the "
                    f"snapshot's offer population in cell {cell}"
                )
            engine._aggregate_ids[key] = aggregate.id
            engine._constituents[aggregate.id] = list(group)
            outputs.append(aggregate)
            used.add(key)
        # ``outputs`` is chunk-index aligned — the invariant the engine's
        # clean-chunk reuse (``commit_core``) depends on.
        engine._outputs[cell] = outputs
    stale = set(recorded) - used
    if stale:
        raise StoreError(
            f"snapshot records {len(stale)} aggregate(s) no surviving chunk produces"
        )
    top = max((offer.id + 1 for offer in offers), default=0)
    engine._next_id = max(next_id, engine.id_offset, top)
    engine._reserved_ids = set(reserved_ids)
    engine._pending_events = 0
    engine._commit_count = commit_count


def restore_engine_state(engine, state: EngineState) -> None:
    """Rebuild an incremental engine from a captured :class:`EngineState`.

    Works across engine families; the only hard requirement is that the
    target's aggregation parameters equal the snapshot's (they define the
    grouping grid the state describes).
    """
    if isinstance(engine, AsyncCommitEngine):
        with engine._lock:
            restore_engine_state(engine.inner, state)
        return
    if engine.parameters != state.parameters:
        raise StoreError(
            f"engine parameters {engine.parameters} do not match the "
            f"snapshot's {state.parameters}; the grouping grids would disagree"
        )
    if isinstance(engine, ShardedAggregationEngine):
        engine._owner.clear()
        engine._dirty_shards.clear()
        engine._pending_events = 0
        engine._commit_count = state.commit_count
        shard_offers: list[list[FlexOffer]] = [[] for _ in engine.shards]
        shard_aggregates: list[list[AggregateRecord]] = [[] for _ in engine.shards]
        for offer in state.offers:
            if offer.is_aggregate:
                index = offer.id % engine.shard_count
            else:
                index = engine._route_cell(group_key(offer, engine.parameters))
            shard_offers[index].append(offer)
            engine._owner[offer.id] = index
        for record in state.aggregates:
            shard_aggregates[engine._route_cell(record.cell)].append(record)
        for index, shard in enumerate(engine._shards):
            # Reserved ids fence the *allocating* shard, which is the one
            # whose congruence class contains the id — not necessarily the
            # shard the aggregate's cell routes to (cross-family restores).
            reserved = [r for r in state.reserved_ids if r % engine.shard_count == index]
            _restore_grid(
                shard,
                shard_offers[index],
                shard_aggregates[index],
                state.next_id,
                reserved,
                commit_count=0,
            )
        return
    if isinstance(engine, LiveAggregationEngine):
        _restore_grid(
            engine,
            state.offers,
            state.aggregates,
            state.next_id,
            state.reserved_ids,
            state.commit_count,
        )
        return
    raise StoreError(f"cannot restore state into {type(engine).__name__}")

"""Synthetic non-flexible (base) demand profiles.

The non-flexible demand in Figure 1 is the load the enterprise cannot shift:
lighting, cooking, electronics, always-on industry.  The generator produces the
classic double-peak diurnal shape (morning and evening peaks, night valley)
scaled by the prosumer population, plus small stochastic noise.
"""

from __future__ import annotations

import numpy as np

from repro.datagen.prosumers import Prosumer
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


def _diurnal_shape(hour: np.ndarray) -> np.ndarray:
    """Relative demand level per hour-of-day (dimensionless, mean ~1)."""
    morning_peak = 0.7 * np.exp(-((hour - 7.5) ** 2) / (2 * 1.5**2))
    evening_peak = 1.0 * np.exp(-((hour - 18.5) ** 2) / (2 * 2.0**2))
    base = 0.55
    return base + morning_peak + evening_peak


def base_demand_for_prosumer(
    prosumer: Prosumer,
    grid: TimeGrid,
    start_slot: int,
    length: int,
    seed: int | None = None,
) -> TimeSeries:
    """Base (non-flexible) demand of one prosumer, kWh per slot."""
    rng = np.random.default_rng(prosumer.id if seed is None else seed)
    hours = np.empty(length)
    for index in range(length):
        instant = grid.to_datetime(start_slot + index)
        hours[index] = instant.hour + instant.minute / 60.0
    shape = _diurnal_shape(hours)
    noise = rng.normal(1.0, 0.08, size=length).clip(0.5, 1.5)
    values = prosumer.base_load_kwh_per_slot * shape * noise
    return TimeSeries(grid, start_slot, values, name=f"base-{prosumer.id}", unit="kWh")


def total_base_demand(
    prosumers: list[Prosumer],
    grid: TimeGrid,
    start_slot: int,
    length: int,
    seed: int = 31,
) -> TimeSeries:
    """Total base demand of the whole population, kWh per slot.

    For efficiency the population total is computed directly from the summed
    base-load scale rather than by adding one series per prosumer; statistical
    noise is applied once at the aggregate level.
    """
    rng = np.random.default_rng(seed)
    total_scale = float(sum(p.base_load_kwh_per_slot for p in prosumers))
    hours = np.empty(length)
    for index in range(length):
        instant = grid.to_datetime(start_slot + index)
        hours[index] = instant.hour + instant.minute / 60.0
    shape = _diurnal_shape(hours)
    noise = rng.normal(1.0, 0.03, size=length).clip(0.8, 1.2)
    values = total_scale * shape * noise
    return TimeSeries(grid, start_slot, values, name="non-flexible demand", unit="kWh")


def spot_prices(
    grid: TimeGrid,
    start_slot: int,
    length: int,
    mean_price: float = 45.0,
    seed: int = 32,
) -> TimeSeries:
    """Synthetic day-ahead spot prices (EUR/MWh) following the demand shape.

    Prices correlate with the diurnal demand shape and carry moderate noise —
    enough for the enterprise pipeline's market interactions to be meaningful.
    """
    rng = np.random.default_rng(seed)
    hours = np.empty(length)
    for index in range(length):
        instant = grid.to_datetime(start_slot + index)
        hours[index] = instant.hour + instant.minute / 60.0
    shape = _diurnal_shape(hours)
    noise = rng.normal(0.0, 4.0, size=length)
    values = mean_price * shape / shape.mean() + noise
    return TimeSeries(grid, start_slot, values.clip(0.0), name="spot price", unit="EUR/MWh")

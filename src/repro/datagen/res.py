"""Synthetic renewable-energy-source (RES) supply profiles.

Figure 1 of the paper contrasts intermittent RES production against flexible
and non-flexible demand.  This module produces deterministic (seeded) wind and
solar production series with the qualitative features that matter for the
reproduction: solar follows a clear diurnal bell restricted to daylight hours,
wind is smooth but irregular across days, and both scale with an installed
capacity parameter.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DataGenerationError
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


def _hours_of_slots(grid: TimeGrid, start_slot: int, length: int) -> np.ndarray:
    """Hour-of-day (fractional) for each slot in the requested range."""
    hours = np.empty(length)
    for index in range(length):
        instant = grid.to_datetime(start_slot + index)
        hours[index] = instant.hour + instant.minute / 60.0
    return hours


def solar_production(
    grid: TimeGrid,
    start_slot: int,
    length: int,
    capacity_kw: float = 2000.0,
    cloudiness: float = 0.2,
    seed: int = 21,
) -> TimeSeries:
    """Generate a solar production series (kWh per slot).

    ``cloudiness`` in [0, 1] attenuates and roughens the clear-sky bell curve.
    """
    if not 0.0 <= cloudiness <= 1.0:
        raise DataGenerationError("cloudiness must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    hours = _hours_of_slots(grid, start_slot, length)
    # Clear-sky bell between 06:00 and 20:00 peaking at 13:00.
    bell = np.clip(np.cos((hours - 13.0) / 7.0 * (np.pi / 2.0)), 0.0, None)
    bell[(hours < 6.0) | (hours > 20.0)] = 0.0
    clouds = 1.0 - cloudiness * rng.beta(2.0, 5.0, size=length)
    power_kw = capacity_kw * bell * clouds
    energy_kwh = power_kw * grid.hours_per_slot
    return TimeSeries(grid, start_slot, energy_kwh, name="solar", unit="kWh")


def wind_production(
    grid: TimeGrid,
    start_slot: int,
    length: int,
    capacity_kw: float = 5000.0,
    mean_capacity_factor: float = 0.35,
    seed: int = 22,
) -> TimeSeries:
    """Generate a wind production series (kWh per slot).

    The capacity factor follows a mean-reverting random walk clipped to
    [0, 1], giving multi-hour ramps rather than white noise.
    """
    if not 0.0 < mean_capacity_factor < 1.0:
        raise DataGenerationError("mean_capacity_factor must lie in (0, 1)")
    rng = np.random.default_rng(seed)
    factor = np.empty(length)
    level = mean_capacity_factor
    for index in range(length):
        level += 0.05 * (mean_capacity_factor - level) + float(rng.normal(0, 0.04))
        level = min(max(level, 0.0), 1.0)
        factor[index] = level
    energy_kwh = capacity_kw * factor * grid.hours_per_slot
    return TimeSeries(grid, start_slot, energy_kwh, name="wind", unit="kWh")


def total_res_production(
    grid: TimeGrid,
    start_slot: int,
    length: int,
    solar_capacity_kw: float = 2000.0,
    wind_capacity_kw: float = 5000.0,
    seed: int = 23,
) -> TimeSeries:
    """Combined solar + wind production series."""
    solar = solar_production(grid, start_slot, length, capacity_kw=solar_capacity_kw, seed=seed)
    wind = wind_production(grid, start_slot, length, capacity_kw=wind_capacity_kw, seed=seed + 1)
    total = solar + wind
    total.name = "res production"
    total.unit = "kWh"
    return total

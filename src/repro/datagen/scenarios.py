"""End-to-end synthetic scenarios.

A :class:`Scenario` bundles everything the rest of the library needs: the time
grid, geography, grid topology, prosumer population, flex-offers, base demand,
RES production and spot prices.  The default configuration produces a one-day,
15-minute-resolution scenario comparable in structure to the datasets the
paper's tool loads from the MIRABEL DW.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datagen.demand import spot_prices, total_base_demand
from repro.datagen.flexoffers import FlexOfferGenerationConfig, generate_flex_offers
from repro.datagen.geography import Geography, generate_geography
from repro.datagen.grid import GridTopology, generate_grid
from repro.datagen.prosumers import Prosumer, generate_prosumers
from repro.datagen.res import total_res_production
from repro.errors import DataGenerationError
from repro.flexoffer.model import FlexOffer, Schedule
from repro.timeseries.grid import TimeGrid
from repro.timeseries.series import TimeSeries


@dataclass(frozen=True)
class ScenarioConfig:
    """Parameters of a synthetic scenario."""

    prosumer_count: int = 200
    horizon_slots: int = 96          # one day at 15-minute resolution
    offers_per_prosumer: float = 1.5
    districts_per_city: int = 4
    #: Installed RES capacity; ``None`` scales it with the prosumer count so the
    #: RES surplus stays comparable to the flexible demand (the regime Figure 1
    #: illustrates) regardless of the scenario size.
    solar_capacity_kw: float | None = None
    wind_capacity_kw: float | None = None
    #: Fraction of offers left in each lifecycle state when pre-assigning states.
    accepted_fraction: float = 0.31
    assigned_fraction: float = 0.43
    rejected_fraction: float = 0.26
    seed: int = 97


@dataclass
class Scenario:
    """A complete synthetic MIRABEL-enterprise dataset."""

    config: ScenarioConfig
    grid: TimeGrid
    geography: Geography
    topology: GridTopology
    prosumers: list[Prosumer]
    flex_offers: list[FlexOffer]
    base_demand: TimeSeries
    res_production: TimeSeries
    spot_prices: TimeSeries
    horizon_start_slot: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def horizon_slots(self) -> range:
        """Half-open slot range of the planning horizon."""
        return range(self.horizon_start_slot, self.horizon_start_slot + self.config.horizon_slots)

    def offers_of_prosumer(self, prosumer_id: int) -> list[FlexOffer]:
        """All flex-offers issued by one prosumer (the Figure 7 loading filter)."""
        return [offer for offer in self.flex_offers if offer.prosumer_id == prosumer_id]

    def offers_in_arrival_order(self) -> list[FlexOffer]:
        """Flex-offers sorted by creation time (id breaking ties).

        This is the order the offers would have arrived in had the scenario
        been observed as a stream; the live subsystem's replay uses it to
        synthesize a realistic event sequence.
        """
        return sorted(self.flex_offers, key=lambda offer: (offer.creation_time, offer.id))

    def replace_offers(self, offers: list[FlexOffer]) -> "Scenario":
        """Return a shallow copy of the scenario with a different offer list."""
        clone = Scenario(
            config=self.config,
            grid=self.grid,
            geography=self.geography,
            topology=self.topology,
            prosumers=self.prosumers,
            flex_offers=list(offers),
            base_demand=self.base_demand,
            res_production=self.res_production,
            spot_prices=self.spot_prices,
            horizon_start_slot=self.horizon_start_slot,
            extras=dict(self.extras),
        )
        return clone


def _assign_states(
    offers: list[FlexOffer], config: ScenarioConfig, rng: np.random.Generator
) -> list[FlexOffer]:
    """Pre-assign lifecycle states with roughly the paper's 31/43/26 mix.

    Assigned offers receive a feasible schedule (random start inside the time
    flexibility, random per-slice energy inside the bounds) so that detail
    views have something to show before any scheduler runs.
    """
    fractions = np.array(
        [config.accepted_fraction, config.assigned_fraction, config.rejected_fraction], dtype=float
    )
    if fractions.sum() > 1.0 + 1e-9:
        raise DataGenerationError("state fractions must sum to at most 1.0")
    result = []
    for offer in offers:
        draw = rng.random()
        if draw < fractions[0]:
            result.append(offer.accept())
        elif draw < fractions[0] + fractions[1]:
            start = int(rng.integers(offer.earliest_start_slot, offer.latest_start_slot + 1))
            amounts = tuple(
                float(rng.uniform(piece.min_energy, piece.max_energy)) for piece in offer.profile
            )
            result.append(offer.assign(Schedule(start_slot=start, energy_per_slice=amounts)))
        elif draw < fractions.sum():
            result.append(offer.reject())
        else:
            result.append(offer)
    return result


def generate_scenario(config: ScenarioConfig | None = None, grid: TimeGrid | None = None) -> Scenario:
    """Generate a complete synthetic scenario.

    The same ``config`` (including its seed) always yields the same scenario,
    which keeps tests and benchmark figures reproducible.
    """
    config = config or ScenarioConfig()
    grid = grid or TimeGrid()
    rng = np.random.default_rng(config.seed)

    geography = generate_geography(districts_per_city=config.districts_per_city, seed=config.seed)
    topology = generate_grid(geography)
    prosumers = generate_prosumers(geography, topology, config.prosumer_count, seed=config.seed + 1)

    offer_config = FlexOfferGenerationConfig(
        horizon_start_slot=0,
        horizon_slots=config.horizon_slots,
        offers_per_prosumer=config.offers_per_prosumer,
        seed=config.seed + 2,
    )
    offers = generate_flex_offers(prosumers, grid, offer_config)
    offers = _assign_states(offers, config, rng)

    base_demand = total_base_demand(prosumers, grid, 0, config.horizon_slots, seed=config.seed + 3)
    solar_capacity = (
        config.solar_capacity_kw if config.solar_capacity_kw is not None else 2.0 * config.prosumer_count
    )
    wind_capacity = (
        config.wind_capacity_kw if config.wind_capacity_kw is not None else 4.0 * config.prosumer_count
    )
    res = total_res_production(
        grid,
        0,
        config.horizon_slots,
        solar_capacity_kw=solar_capacity,
        wind_capacity_kw=wind_capacity,
        seed=config.seed + 4,
    )
    prices = spot_prices(grid, 0, config.horizon_slots, seed=config.seed + 5)

    return Scenario(
        config=config,
        grid=grid,
        geography=geography,
        topology=topology,
        prosumers=prosumers,
        flex_offers=offers,
        base_demand=base_demand,
        res_production=res,
        spot_prices=prices,
    )


def small_scenario(seed: int = 5) -> Scenario:
    """A small scenario (fast to generate) used by tests and the quickstart."""
    return generate_scenario(ScenarioConfig(prosumer_count=40, offers_per_prosumer=1.2, seed=seed))


def scenario_with_offer_count(target_offers: int, seed: int = 13) -> Scenario:
    """Generate a scenario with approximately ``target_offers`` flex-offers.

    Used by the scalability benchmarks, which sweep the number of on-screen
    flex-offers.  The prosumer count is chosen from the expected offers per
    prosumer; the exact offer count therefore varies slightly around the target.
    """
    offers_per_prosumer = 1.5
    prosumers = max(int(round(target_offers / offers_per_prosumer)), 1)
    config = ScenarioConfig(
        prosumer_count=prosumers, offers_per_prosumer=offers_per_prosumer, seed=seed
    )
    return generate_scenario(config)

"""Synthetic prosumer population.

A *prosumer* is an entity that both consumes and produces energy (Section 1 of
the paper).  Each prosumer is located in a district, fed by one grid feeder,
owns a set of flexible appliances (archetypes) and has a base (non-flexible)
load scale.  Prosumers are the "legal entities" the loading tab of the tool
(Figure 7) lets the analyst choose between.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.datagen.appliances import ARCHETYPES, ApplianceArchetype
from repro.datagen.geography import District, Geography
from repro.datagen.grid import GridTopology
from repro.errors import DataGenerationError


class ProsumerType(str, Enum):
    """Classification used by the prosumer-type OLAP dimension."""

    HOUSEHOLD = "household"
    COMMERCIAL = "commercial"
    SMALL_INDUSTRY = "small_industry"
    POWER_PLANT = "power_plant"


#: Which appliance archetypes each prosumer type may own.
_ALLOWED_APPLIANCES: dict[ProsumerType, tuple[str, ...]] = {
    ProsumerType.HOUSEHOLD: ("electric_vehicle", "heat_pump", "dishwasher", "washing_machine", "micro_chp"),
    ProsumerType.COMMERCIAL: ("heat_pump", "electric_vehicle", "dishwasher"),
    ProsumerType.SMALL_INDUSTRY: ("industrial_batch", "heat_pump", "micro_chp"),
    ProsumerType.POWER_PLANT: ("hydro_pump_storage", "micro_chp"),
}

#: Relative frequency of prosumer types in the population.
_TYPE_WEIGHTS: dict[ProsumerType, float] = {
    ProsumerType.HOUSEHOLD: 0.80,
    ProsumerType.COMMERCIAL: 0.12,
    ProsumerType.SMALL_INDUSTRY: 0.06,
    ProsumerType.POWER_PLANT: 0.02,
}

#: Mean base (non-flexible) load in kWh per 15-minute slot per prosumer type.
_BASE_LOAD_KWH: dict[ProsumerType, float] = {
    ProsumerType.HOUSEHOLD: 0.12,
    ProsumerType.COMMERCIAL: 0.8,
    ProsumerType.SMALL_INDUSTRY: 4.0,
    ProsumerType.POWER_PLANT: 1.0,
}


@dataclass(frozen=True)
class Prosumer:
    """One synthetic prosumer (the unit the loading tab filters on)."""

    id: int
    name: str
    type: ProsumerType
    district: str
    city: str
    region: str
    grid_node: str
    appliances: tuple[ApplianceArchetype, ...]
    base_load_kwh_per_slot: float

    @property
    def is_producer(self) -> bool:
        """Whether the prosumer owns at least one producing appliance."""
        return any(a.direction.value == "production" for a in self.appliances)


def _district_weights(geography: Geography) -> tuple[list[District], np.ndarray]:
    districts = geography.all_districts()
    weights = []
    for district in districts:
        city = geography.city(district.city)
        weights.append(city.population_weight / max(len(city.districts), 1))
    array = np.asarray(weights, dtype=float)
    return districts, array / array.sum()


def generate_prosumers(
    geography: Geography,
    topology: GridTopology,
    count: int,
    seed: int = 11,
) -> list[Prosumer]:
    """Generate ``count`` prosumers placed across the geography.

    Placement follows the city population weights; prosumer types follow the
    population mix in ``_TYPE_WEIGHTS``; each prosumer owns one to three
    appliances drawn from its allowed archetypes.
    """
    if count < 1:
        raise DataGenerationError("prosumer count must be positive")
    rng = np.random.default_rng(seed)
    districts, weights = _district_weights(geography)
    types = list(_TYPE_WEIGHTS)
    type_probabilities = np.array([_TYPE_WEIGHTS[t] for t in types])
    type_probabilities = type_probabilities / type_probabilities.sum()

    archetypes_by_name = {archetype.name: archetype for archetype in ARCHETYPES}
    prosumers: list[Prosumer] = []
    for prosumer_id in range(1, count + 1):
        district = districts[int(rng.choice(len(districts), p=weights))]
        prosumer_type = types[int(rng.choice(len(types), p=type_probabilities))]
        allowed_names = _ALLOWED_APPLIANCES[prosumer_type]
        appliance_count = int(rng.integers(1, min(3, len(allowed_names)) + 1))
        chosen_names = rng.choice(allowed_names, size=appliance_count, replace=False)
        appliances = tuple(archetypes_by_name[name] for name in chosen_names)
        feeder = topology.feeder_for_district(district.name)
        base_load = _BASE_LOAD_KWH[prosumer_type] * float(rng.uniform(0.6, 1.6))
        prosumers.append(
            Prosumer(
                id=prosumer_id,
                name=f"{prosumer_type.value}-{prosumer_id:05d}",
                type=prosumer_type,
                district=district.name,
                city=district.city,
                region=district.region,
                grid_node=feeder.name,
                appliances=appliances,
                base_load_kwh_per_slot=base_load,
            )
        )
    return prosumers


def prosumers_by_type(prosumers: list[Prosumer]) -> dict[ProsumerType, list[Prosumer]]:
    """Group prosumers by their type."""
    groups: dict[ProsumerType, list[Prosumer]] = {ptype: [] for ptype in ProsumerType}
    for prosumer in prosumers:
        groups[prosumer.type].append(prosumer)
    return groups

"""Synthetic data generation: geography, grid topology, prosumers, flex-offers, scenarios.

Submodules are re-exported lazily (PEP 562): the generators are numpy-native,
but consumers of the *data model* types (``GridTopology`` in the OLAP cube,
``Scenario`` in session signatures) must stay importable without numpy.  Only
``grid`` — pure stdlib — is imported eagerly.
"""

from repro.datagen.grid import GridLine, GridNode, GridTopology, NodeKind, generate_grid

_LAZY = {
    "ARCHETYPES": "repro.datagen.appliances",
    "ApplianceArchetype": "repro.datagen.appliances",
    "archetype_by_name": "repro.datagen.appliances",
    "sample_archetype": "repro.datagen.appliances",
    "base_demand_for_prosumer": "repro.datagen.demand",
    "total_base_demand": "repro.datagen.demand",
    "spot_prices": "repro.datagen.demand",
    "FlexOfferGenerationConfig": "repro.datagen.flexoffers",
    "generate_flex_offer": "repro.datagen.flexoffers",
    "generate_flex_offers": "repro.datagen.flexoffers",
    "Geography": "repro.datagen.geography",
    "Region": "repro.datagen.geography",
    "City": "repro.datagen.geography",
    "District": "repro.datagen.geography",
    "generate_geography": "repro.datagen.geography",
    "Prosumer": "repro.datagen.prosumers",
    "ProsumerType": "repro.datagen.prosumers",
    "generate_prosumers": "repro.datagen.prosumers",
    "prosumers_by_type": "repro.datagen.prosumers",
    "solar_production": "repro.datagen.res",
    "wind_production": "repro.datagen.res",
    "total_res_production": "repro.datagen.res",
    "Scenario": "repro.datagen.scenarios",
    "ScenarioConfig": "repro.datagen.scenarios",
    "generate_scenario": "repro.datagen.scenarios",
    "small_scenario": "repro.datagen.scenarios",
    "scenario_with_offer_count": "repro.datagen.scenarios",
}

__all__ = [
    "GridTopology",
    "GridNode",
    "GridLine",
    "NodeKind",
    "generate_grid",
    *_LAZY,
]


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def __dir__() -> list[str]:
    return sorted(__all__)

"""Synthetic data generation: geography, grid topology, prosumers, flex-offers, scenarios."""

from repro.datagen.appliances import ARCHETYPES, ApplianceArchetype, archetype_by_name, sample_archetype
from repro.datagen.demand import base_demand_for_prosumer, spot_prices, total_base_demand
from repro.datagen.flexoffers import (
    FlexOfferGenerationConfig,
    generate_flex_offer,
    generate_flex_offers,
)
from repro.datagen.geography import City, District, Geography, Region, generate_geography
from repro.datagen.grid import GridLine, GridNode, GridTopology, NodeKind, generate_grid
from repro.datagen.prosumers import Prosumer, ProsumerType, generate_prosumers, prosumers_by_type
from repro.datagen.res import solar_production, total_res_production, wind_production
from repro.datagen.scenarios import (
    Scenario,
    ScenarioConfig,
    generate_scenario,
    scenario_with_offer_count,
    small_scenario,
)

__all__ = [
    "ARCHETYPES",
    "ApplianceArchetype",
    "archetype_by_name",
    "sample_archetype",
    "base_demand_for_prosumer",
    "total_base_demand",
    "spot_prices",
    "FlexOfferGenerationConfig",
    "generate_flex_offer",
    "generate_flex_offers",
    "Geography",
    "Region",
    "City",
    "District",
    "generate_geography",
    "GridTopology",
    "GridNode",
    "GridLine",
    "NodeKind",
    "generate_grid",
    "Prosumer",
    "ProsumerType",
    "generate_prosumers",
    "prosumers_by_type",
    "solar_production",
    "wind_production",
    "total_res_production",
    "Scenario",
    "ScenarioConfig",
    "generate_scenario",
    "small_scenario",
    "scenario_with_offer_count",
]

"""Synthetic flex-offer generation from the prosumer population.

Every flex-offer is drawn from one of the prosumer's appliance archetypes:
the profile length, per-slice energy bounds, start-time flexibility and the
preferred issuing hour all follow the archetype's distributions.  Deadlines are
derived backwards from the earliest start time, matching the ordering shown in
the paper's Figure 2 (creation < acceptance < assignment < earliest start).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

import numpy as np

from repro.datagen.appliances import ApplianceArchetype
from repro.datagen.prosumers import Prosumer
from repro.errors import DataGenerationError
from repro.flexoffer.model import FlexOffer, ProfileSlice
from repro.timeseries.grid import TimeGrid


@dataclass(frozen=True)
class FlexOfferGenerationConfig:
    """Parameters controlling synthetic flex-offer generation."""

    #: First slot of the planning horizon offers may start in.
    horizon_start_slot: int = 0
    #: Length of the planning horizon in slots.
    horizon_slots: int = 96
    #: Mean number of flex-offers issued per prosumer over the horizon.
    offers_per_prosumer: float = 1.5
    #: How many slots before the earliest start the offer is created, on average.
    lead_time_slots: int = 16
    #: Random seed.
    seed: int = 41


def _sample_profile(rng: np.random.Generator, archetype: ApplianceArchetype) -> tuple[ProfileSlice, ...]:
    low, high = archetype.duration_slots_range
    duration = int(rng.integers(low, high + 1))
    slices = []
    for _ in range(duration):
        min_energy = float(rng.uniform(*archetype.slice_min_energy_range))
        band = float(rng.uniform(*archetype.energy_band_factor_range))
        slices.append(ProfileSlice(min_energy=min_energy, max_energy=min_energy * band))
    return tuple(slices)


def _sample_earliest_start(
    rng: np.random.Generator,
    archetype: ApplianceArchetype,
    grid: TimeGrid,
    config: FlexOfferGenerationConfig,
) -> int:
    """Pick an earliest-start slot near one of the archetype's preferred hours."""
    horizon_end = config.horizon_start_slot + config.horizon_slots
    slots_per_hour = max(round(3600 / grid.resolution.total_seconds()), 1)
    for _ in range(16):
        day_offset = int(rng.integers(0, max(config.horizon_slots // grid.slots_per_day(), 1) + 1))
        hour = int(rng.choice(archetype.preferred_start_hours))
        jitter = int(rng.integers(0, slots_per_hour))
        candidate = (
            config.horizon_start_slot
            + day_offset * grid.slots_per_day()
            + hour * slots_per_hour
            + jitter
        )
        if config.horizon_start_slot <= candidate < horizon_end:
            return candidate
    # Fall back to a uniform draw when the preferred hours never fit the horizon.
    return int(rng.integers(config.horizon_start_slot, horizon_end))


def generate_flex_offer(
    offer_id: int,
    prosumer: Prosumer,
    archetype: ApplianceArchetype,
    grid: TimeGrid,
    config: FlexOfferGenerationConfig,
    rng: np.random.Generator,
) -> FlexOffer:
    """Generate one flex-offer for ``prosumer`` from ``archetype``."""
    profile = _sample_profile(rng, archetype)
    earliest_start = _sample_earliest_start(rng, archetype, grid, config)
    flex_low, flex_high = archetype.time_flexibility_range
    time_flex = int(rng.integers(flex_low, flex_high + 1))
    latest_start = earliest_start + time_flex

    earliest_start_time = grid.to_datetime(earliest_start)
    lead = max(int(rng.normal(config.lead_time_slots, config.lead_time_slots / 4)), 2)
    creation_time = earliest_start_time - lead * grid.resolution
    acceptance_deadline = earliest_start_time - timedelta(
        seconds=0.5 * lead * grid.resolution.total_seconds()
    )
    assignment_deadline = earliest_start_time - timedelta(
        seconds=0.25 * lead * grid.resolution.total_seconds()
    )

    return FlexOffer(
        id=offer_id,
        prosumer_id=prosumer.id,
        profile=profile,
        earliest_start_slot=earliest_start,
        latest_start_slot=latest_start,
        creation_time=creation_time,
        acceptance_deadline=acceptance_deadline,
        assignment_deadline=assignment_deadline,
        direction=archetype.direction,
        region=prosumer.region,
        city=prosumer.city,
        district=prosumer.district,
        grid_node=prosumer.grid_node,
        energy_type=archetype.energy_type,
        prosumer_type=prosumer.type.value,
        appliance_type=archetype.name,
        price_per_kwh=float(rng.uniform(0.04, 0.12)),
    )


def generate_flex_offers(
    prosumers: list[Prosumer],
    grid: TimeGrid,
    config: FlexOfferGenerationConfig | None = None,
) -> list[FlexOffer]:
    """Generate flex-offers for the whole prosumer population.

    The number of offers per prosumer is Poisson-distributed around
    ``config.offers_per_prosumer``; archetypes are drawn from the appliances
    the prosumer owns, weighted by archetype popularity.
    """
    if not prosumers:
        raise DataGenerationError("cannot generate flex-offers for an empty population")
    config = config or FlexOfferGenerationConfig()
    rng = np.random.default_rng(config.seed)
    offers: list[FlexOffer] = []
    offer_id = 1
    for prosumer in prosumers:
        if not prosumer.appliances:
            continue
        count = int(rng.poisson(config.offers_per_prosumer))
        weights = np.array([a.popularity for a in prosumer.appliances], dtype=float)
        weights = weights / weights.sum()
        for _ in range(count):
            archetype = prosumer.appliances[int(rng.choice(len(prosumer.appliances), p=weights))]
            offers.append(generate_flex_offer(offer_id, prosumer, archetype, grid, config, rng))
            offer_id += 1
    return offers

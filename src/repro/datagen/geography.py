"""Synthetic geography: a Denmark-like hierarchy of regions, cities and districts.

The paper's map view (Figure 3) and the spatial-geographical OLAP dimension
need places with coordinates and a containment hierarchy
(country > region > city > district).  Real MIRABEL pilot geography is not
available, so this module synthesises a fixed, deterministic geography whose
names and rough layout resemble Denmark (the paper's running example region).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DataGenerationError


@dataclass(frozen=True)
class District:
    """Smallest spatial unit; prosumers are attached to districts."""

    name: str
    city: str
    region: str
    latitude: float
    longitude: float


@dataclass(frozen=True)
class City:
    """A city with coordinates and its districts."""

    name: str
    region: str
    latitude: float
    longitude: float
    population_weight: float
    districts: tuple[District, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Region:
    """A top-level region (e.g. "North Jutland")."""

    name: str
    cities: tuple[City, ...] = field(default_factory=tuple)


@dataclass(frozen=True)
class Geography:
    """The complete synthetic geography."""

    country: str
    regions: tuple[Region, ...]

    def all_cities(self) -> list[City]:
        """All cities across all regions."""
        return [city for region in self.regions for city in region.cities]

    def all_districts(self) -> list[District]:
        """All districts across all cities."""
        return [district for city in self.all_cities() for district in city.districts]

    def region_of_city(self, city_name: str) -> str:
        """Return the region name containing ``city_name``."""
        for region in self.regions:
            for city in region.cities:
                if city.name == city_name:
                    return region.name
        raise DataGenerationError(f"unknown city {city_name!r}")

    def city(self, city_name: str) -> City:
        """Return the :class:`City` named ``city_name``."""
        for candidate in self.all_cities():
            if candidate.name == city_name:
                return candidate
        raise DataGenerationError(f"unknown city {city_name!r}")


#: Base layout: (region, [(city, lat, lon, population weight)]).  Coordinates are
#: approximate and only used for relative placement on the map view.
_LAYOUT: list[tuple[str, list[tuple[str, float, float, float]]]] = [
    (
        "North Jutland",
        [("Aalborg", 57.05, 9.92, 0.9), ("Hjorring", 57.46, 9.98, 0.2), ("Frederikshavn", 57.44, 10.54, 0.2)],
    ),
    (
        "Central Jutland",
        [("Aarhus", 56.16, 10.20, 1.4), ("Randers", 56.46, 10.04, 0.3), ("Herning", 56.14, 8.97, 0.3)],
    ),
    (
        "Southern Denmark",
        [("Odense", 55.40, 10.40, 0.8), ("Esbjerg", 55.48, 8.45, 0.3), ("Kolding", 55.49, 9.47, 0.3)],
    ),
    (
        "Zealand",
        [("Roskilde", 55.64, 12.08, 0.4), ("Naestved", 55.23, 11.76, 0.2), ("Slagelse", 55.40, 11.35, 0.2)],
    ),
    (
        "Capital",
        [("Copenhagen", 55.68, 12.57, 2.5), ("Frederiksberg", 55.68, 12.53, 0.4), ("Helsingor", 56.03, 12.61, 0.3)],
    ),
]

_DISTRICT_SUFFIXES = ["Centrum", "North", "South", "East", "West", "Harbour"]


def generate_geography(districts_per_city: int = 4, seed: int = 7) -> Geography:
    """Build the synthetic Denmark-like geography.

    Parameters
    ----------
    districts_per_city:
        How many districts to attach to each city (1..6).
    seed:
        Seed for the small random jitter applied to district coordinates.
    """
    if not 1 <= districts_per_city <= len(_DISTRICT_SUFFIXES):
        raise DataGenerationError(
            f"districts_per_city must be between 1 and {len(_DISTRICT_SUFFIXES)}"
        )
    # Lazy: the data model above must stay importable without numpy (the grid
    # topology rides it into the OLAP cube); only generation needs the rng.
    import numpy as np

    rng = np.random.default_rng(seed)
    regions = []
    for region_name, cities in _LAYOUT:
        built_cities = []
        for city_name, lat, lon, weight in cities:
            districts = []
            for suffix in _DISTRICT_SUFFIXES[:districts_per_city]:
                districts.append(
                    District(
                        name=f"{city_name} {suffix}",
                        city=city_name,
                        region=region_name,
                        latitude=lat + float(rng.normal(0, 0.02)),
                        longitude=lon + float(rng.normal(0, 0.03)),
                    )
                )
            built_cities.append(
                City(
                    name=city_name,
                    region=region_name,
                    latitude=lat,
                    longitude=lon,
                    population_weight=weight,
                    districts=tuple(districts),
                )
            )
        regions.append(Region(name=region_name, cities=tuple(built_cities)))
    return Geography(country="Denmark", regions=tuple(regions))

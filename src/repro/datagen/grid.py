"""Synthetic electricity-grid topology.

The paper's schematic view (Figure 4) and the spatial-topological OLAP
dimension group flex-offers by the electrical structure of the grid, e.g. "a
particular 110 kV transmission line".  This module builds a deterministic
synthetic transmission/distribution topology on top of the synthetic
geography: one transmission substation per region, one distribution substation
per city, one feeder per district, connected by lines with voltage levels.
``networkx`` provides the graph substrate used for traversal and layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import networkx as nx

from repro.datagen.geography import Geography
from repro.errors import DataGenerationError


class NodeKind(str, Enum):
    """Role of a node in the grid topology."""

    TRANSMISSION = "transmission"  # 400/150 kV substation (one per region)
    DISTRIBUTION = "distribution"  # 60/10 kV substation (one per city)
    FEEDER = "feeder"              # low-voltage feeder (one per district)


@dataclass(frozen=True)
class GridNode:
    """A node of the synthetic grid, tied to a geographical place."""

    name: str
    kind: NodeKind
    region: str
    city: str
    district: str
    latitude: float
    longitude: float


@dataclass(frozen=True)
class GridLine:
    """A line (edge) of the synthetic grid."""

    source: str
    target: str
    voltage_kv: float
    capacity_mw: float


@dataclass
class GridTopology:
    """The full synthetic topology plus its ``networkx`` graph."""

    nodes: dict[str, GridNode]
    lines: list[GridLine]
    graph: nx.Graph

    def feeder_for_district(self, district_name: str) -> GridNode:
        """Return the feeder node serving ``district_name``."""
        for node in self.nodes.values():
            if node.kind is NodeKind.FEEDER and node.district == district_name:
                return node
        raise DataGenerationError(f"no feeder serves district {district_name!r}")

    def nodes_of_kind(self, kind: NodeKind) -> list[GridNode]:
        """All nodes of the given kind."""
        return [node for node in self.nodes.values() if node.kind is kind]

    def upstream_path(self, node_name: str, root: str) -> list[str]:
        """Shortest path of node names from ``node_name`` up to ``root``."""
        if node_name not in self.graph or root not in self.graph:
            raise DataGenerationError("unknown grid node in upstream_path")
        return nx.shortest_path(self.graph, node_name, root)


def generate_grid(geography: Geography) -> GridTopology:
    """Build the synthetic grid topology for ``geography``.

    Structure: a national 400 kV ring connects the regional transmission
    substations; each city's distribution substation hangs off its regional
    substation via a 150 kV line; each district feeder hangs off its city's
    substation via a 10 kV line.
    """
    nodes: dict[str, GridNode] = {}
    lines: list[GridLine] = []
    graph = nx.Graph()

    transmission_names = []
    for region in geography.regions:
        if not region.cities:
            continue
        anchor = region.cities[0]
        name = f"TX {region.name}"
        node = GridNode(
            name=name,
            kind=NodeKind.TRANSMISSION,
            region=region.name,
            city=anchor.name,
            district="",
            latitude=anchor.latitude,
            longitude=anchor.longitude,
        )
        nodes[name] = node
        graph.add_node(name, kind=node.kind.value)
        transmission_names.append(name)

    # National ring between transmission substations.
    for index, name in enumerate(transmission_names):
        target = transmission_names[(index + 1) % len(transmission_names)]
        if len(transmission_names) > 1 and name != target:
            line = GridLine(source=name, target=target, voltage_kv=400.0, capacity_mw=1200.0)
            lines.append(line)
            graph.add_edge(name, target, voltage_kv=line.voltage_kv, capacity_mw=line.capacity_mw)

    for region in geography.regions:
        tx_name = f"TX {region.name}"
        for city in region.cities:
            dist_name = f"DS {city.name}"
            dist_node = GridNode(
                name=dist_name,
                kind=NodeKind.DISTRIBUTION,
                region=region.name,
                city=city.name,
                district="",
                latitude=city.latitude,
                longitude=city.longitude,
            )
            nodes[dist_name] = dist_node
            graph.add_node(dist_name, kind=dist_node.kind.value)
            line = GridLine(source=tx_name, target=dist_name, voltage_kv=150.0, capacity_mw=400.0)
            lines.append(line)
            graph.add_edge(tx_name, dist_name, voltage_kv=line.voltage_kv, capacity_mw=line.capacity_mw)

            for district in city.districts:
                feeder_name = f"F {district.name}"
                feeder = GridNode(
                    name=feeder_name,
                    kind=NodeKind.FEEDER,
                    region=region.name,
                    city=city.name,
                    district=district.name,
                    latitude=district.latitude,
                    longitude=district.longitude,
                )
                nodes[feeder_name] = feeder
                graph.add_node(feeder_name, kind=feeder.kind.value)
                feeder_line = GridLine(
                    source=dist_name, target=feeder_name, voltage_kv=10.0, capacity_mw=20.0
                )
                lines.append(feeder_line)
                graph.add_edge(
                    dist_name,
                    feeder_name,
                    voltage_kv=feeder_line.voltage_kv,
                    capacity_mw=feeder_line.capacity_mw,
                )
    return GridTopology(nodes=nodes, lines=lines, graph=graph)

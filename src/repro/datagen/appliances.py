"""Appliance archetypes used to synthesise realistic flex-offers.

The MIRABEL pilot derives flex-offers from real appliances (electric vehicles,
heat pumps, wet appliances, industrial batch processes, micro generation).  No
pilot data is available, so each archetype here captures the published rough
characteristics of its appliance class — profile length, per-slice energy
bounds, how far the start can be shifted, and at which hours prosumers tend to
issue the offers — expressed in the slot units of a 15-minute grid.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.flexoffer.model import Direction


@dataclass(frozen=True)
class ApplianceArchetype:
    """Statistical template from which individual flex-offers are drawn.

    Energy values are kWh per 15-minute slot; durations and flexibilities are
    numbers of slots.
    """

    name: str
    energy_type: str
    direction: Direction
    #: (low, high) of the uniform distribution of profile length in slots.
    duration_slots_range: tuple[int, int]
    #: (low, high) of the uniform distribution of the per-slice minimum energy.
    slice_min_energy_range: tuple[float, float]
    #: Multiplier applied to the minimum to obtain the slice maximum (>= 1).
    energy_band_factor_range: tuple[float, float]
    #: (low, high) of the uniform distribution of start-time flexibility in slots.
    time_flexibility_range: tuple[int, int]
    #: Hours of the day (0-23) at which offers of this type typically start being available.
    preferred_start_hours: tuple[int, ...]
    #: Relative frequency of this appliance among the prosumer population.
    popularity: float


#: The appliance mix used by the synthetic scenarios.  Popularities are
#: normalised at sampling time, so they only need to be relative weights.
ARCHETYPES: tuple[ApplianceArchetype, ...] = (
    ApplianceArchetype(
        name="electric_vehicle",
        energy_type="grid",
        direction=Direction.CONSUMPTION,
        duration_slots_range=(8, 16),          # 2-4 hours of charging
        slice_min_energy_range=(0.6, 1.2),     # ~2.5-5 kW charger
        energy_band_factor_range=(1.2, 1.8),
        time_flexibility_range=(8, 32),        # can shift 2-8 hours overnight
        preferred_start_hours=(18, 19, 20, 21, 22, 23, 0, 1),
        popularity=3.0,
    ),
    ApplianceArchetype(
        name="heat_pump",
        energy_type="grid",
        direction=Direction.CONSUMPTION,
        duration_slots_range=(4, 8),
        slice_min_energy_range=(0.3, 0.8),
        energy_band_factor_range=(1.3, 2.0),
        time_flexibility_range=(2, 12),
        preferred_start_hours=(5, 6, 7, 8, 13, 14, 15, 16),
        popularity=2.5,
    ),
    ApplianceArchetype(
        name="dishwasher",
        energy_type="grid",
        direction=Direction.CONSUMPTION,
        duration_slots_range=(4, 6),
        slice_min_energy_range=(0.2, 0.4),
        energy_band_factor_range=(1.0, 1.2),
        time_flexibility_range=(4, 24),
        preferred_start_hours=(19, 20, 21, 22),
        popularity=2.0,
    ),
    ApplianceArchetype(
        name="washing_machine",
        energy_type="grid",
        direction=Direction.CONSUMPTION,
        duration_slots_range=(4, 8),
        slice_min_energy_range=(0.15, 0.5),
        energy_band_factor_range=(1.0, 1.3),
        time_flexibility_range=(4, 20),
        preferred_start_hours=(7, 8, 9, 17, 18, 19),
        popularity=2.0,
    ),
    ApplianceArchetype(
        name="industrial_batch",
        energy_type="grid",
        direction=Direction.CONSUMPTION,
        duration_slots_range=(12, 32),
        slice_min_energy_range=(5.0, 20.0),
        energy_band_factor_range=(1.1, 1.5),
        time_flexibility_range=(4, 16),
        preferred_start_hours=(6, 7, 8, 9, 10),
        popularity=0.6,
    ),
    ApplianceArchetype(
        name="micro_chp",
        energy_type="chp",
        direction=Direction.PRODUCTION,
        duration_slots_range=(6, 16),
        slice_min_energy_range=(0.5, 2.0),
        energy_band_factor_range=(1.1, 1.6),
        time_flexibility_range=(2, 10),
        preferred_start_hours=(6, 7, 8, 17, 18, 19),
        popularity=0.8,
    ),
    ApplianceArchetype(
        name="hydro_pump_storage",
        energy_type="hydro",
        direction=Direction.PRODUCTION,
        duration_slots_range=(8, 24),
        slice_min_energy_range=(10.0, 40.0),
        energy_band_factor_range=(1.2, 2.0),
        time_flexibility_range=(4, 24),
        preferred_start_hours=(0, 1, 2, 3, 11, 12, 13),
        popularity=0.2,
    ),
)


def archetype_by_name(name: str) -> ApplianceArchetype:
    """Return the archetype called ``name``.

    Raises ``KeyError`` when the name is unknown; callers that want a soft
    failure should catch it.
    """
    for archetype in ARCHETYPES:
        if archetype.name == name:
            return archetype
    raise KeyError(name)


def sample_archetype(rng: np.random.Generator, allowed: tuple[ApplianceArchetype, ...] = ARCHETYPES) -> ApplianceArchetype:
    """Draw one archetype according to the popularity weights."""
    weights = np.array([a.popularity for a in allowed], dtype=float)
    weights = weights / weights.sum()
    index = int(rng.choice(len(allowed), p=weights))
    return allowed[index]

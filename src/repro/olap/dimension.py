"""OLAP dimensions and hierarchies over flex-offer attributes.

Section 3 of the paper requires "intuitive dimension hierarchies as those in
OLAP … for all these types of attributes": temporal, spatial-geographical,
spatial-topological, energy type, prosumer type and appliance type.  A
:class:`Dimension` is an ordered list of :class:`Level` objects from the
coarsest (``all``) to the finest granularity; every level knows how to extract
its member value from a flex-offer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.datagen.grid import GridTopology
from repro.errors import UnknownDimensionError
from repro.flexoffer.model import FlexOffer
from repro.timeseries.grid import TimeGrid

#: Extracts a member value for one flex-offer.
KeyFunction = Callable[[FlexOffer], Any]


@dataclass(frozen=True)
class Level:
    """One granularity level of a dimension hierarchy."""

    name: str
    key: KeyFunction

    def member_of(self, offer: FlexOffer) -> Any:
        """Return the member of this level the flex-offer belongs to."""
        return self.key(offer)


@dataclass(frozen=True)
class Dimension:
    """A dimension hierarchy: levels ordered from coarsest to finest."""

    name: str
    levels: tuple[Level, ...]

    def level(self, name: str) -> Level:
        """Return the level called ``name``."""
        for level in self.levels:
            if level.name == name:
                return level
        raise UnknownDimensionError(f"dimension {self.name!r} has no level {name!r}")

    def level_names(self) -> list[str]:
        """Names of all levels, coarsest first."""
        return [level.name for level in self.levels]

    def drill_down_level(self, name: str) -> Level | None:
        """Return the level one step finer than ``name`` (``None`` at the leaf)."""
        names = self.level_names()
        index = names.index(self.level(name).name)
        if index + 1 < len(self.levels):
            return self.levels[index + 1]
        return None

    def drill_up_level(self, name: str) -> Level | None:
        """Return the level one step coarser than ``name`` (``None`` at the root)."""
        names = self.level_names()
        index = names.index(self.level(name).name)
        if index > 0:
            return self.levels[index - 1]
        return None

    def members(self, level_name: str, offers: Sequence[FlexOffer]) -> list[Any]:
        """Distinct members of a level present in ``offers``, in first-seen order."""
        level = self.level(level_name)
        seen: list[Any] = []
        for offer in offers:
            member = level.member_of(offer)
            if member not in seen:
                seen.append(member)
        return seen


# ----------------------------------------------------------------------
# Standard dimensions required by the paper
# ----------------------------------------------------------------------
def _all_level() -> Level:
    return Level("all", lambda offer: "All")


def time_dimension(grid: TimeGrid) -> Dimension:
    """Temporal dimension: all > month > day > hour > slot (on the earliest start)."""

    def month(offer: FlexOffer) -> str:
        instant = grid.to_datetime(offer.earliest_start_slot)
        return f"{instant.year:04d}-{instant.month:02d}"

    def day(offer: FlexOffer) -> str:
        return grid.to_datetime(offer.earliest_start_slot).date().isoformat()

    def hour(offer: FlexOffer) -> str:
        instant = grid.to_datetime(offer.earliest_start_slot)
        return f"{instant.date().isoformat()} {instant.hour:02d}:00"

    return Dimension(
        name="Time",
        levels=(
            _all_level(),
            Level("month", month),
            Level("day", day),
            Level("hour", hour),
            Level("slot", lambda offer: offer.earliest_start_slot),
        ),
    )


def geography_dimension() -> Dimension:
    """Spatial-geographical dimension: all > region > city > district."""
    return Dimension(
        name="Geography",
        levels=(
            _all_level(),
            Level("region", lambda offer: offer.region or "(unknown)"),
            Level("city", lambda offer: offer.city or "(unknown)"),
            Level("district", lambda offer: offer.district or "(unknown)"),
        ),
    )


def grid_dimension(topology: GridTopology | None = None) -> Dimension:
    """Spatial-topological dimension over the electricity grid.

    Levels: all > transmission substation > distribution substation > feeder.
    When a topology is supplied, the two upper levels resolve the feeder's
    ancestors; otherwise only the feeder (``grid_node``) level is meaningful
    and upper levels fall back to the offer's region / city.
    """
    parent_of: dict[str, str] = {}
    if topology is not None:
        for line in topology.lines:
            parent_of.setdefault(line.target, line.source)

    def distribution(offer: FlexOffer) -> str:
        node = offer.grid_node or "(unknown)"
        return parent_of.get(node, f"DS {offer.city}" if offer.city else "(unknown)")

    def transmission(offer: FlexOffer) -> str:
        dist = distribution(offer)
        return parent_of.get(dist, f"TX {offer.region}" if offer.region else "(unknown)")

    return Dimension(
        name="Grid",
        levels=(
            _all_level(),
            Level("transmission", transmission),
            Level("distribution", distribution),
            Level("feeder", lambda offer: offer.grid_node or "(unknown)"),
        ),
    )


def energy_type_dimension() -> Dimension:
    """Energy-type dimension: all > energy type."""
    return Dimension(
        name="EnergyType",
        levels=(_all_level(), Level("energy_type", lambda offer: offer.energy_type or "(unknown)")),
    )


def prosumer_dimension() -> Dimension:
    """Prosumer dimension: all > consumer/producer role > prosumer type."""

    def role(offer: FlexOffer) -> str:
        return "Producer" if offer.direction.value == "production" else "Consumer"

    return Dimension(
        name="Prosumer",
        levels=(
            _all_level(),
            Level("role", role),
            Level("prosumer_type", lambda offer: offer.prosumer_type or "(unknown)"),
        ),
    )


def appliance_dimension() -> Dimension:
    """Appliance-type dimension: all > appliance type."""
    return Dimension(
        name="Appliance",
        levels=(
            _all_level(),
            Level("appliance_type", lambda offer: offer.appliance_type or "(unknown)"),
        ),
    )


def state_dimension() -> Dimension:
    """Lifecycle-state dimension: all > state (accepted / assigned / rejected / ...)."""
    return Dimension(
        name="State",
        levels=(_all_level(), Level("state", lambda offer: offer.state.value)),
    )


def standard_dimensions(grid: TimeGrid, topology: GridTopology | None = None) -> dict[str, Dimension]:
    """All dimensions the paper's Section 3 requires, keyed by name."""
    dimensions = [
        time_dimension(grid),
        geography_dimension(),
        grid_dimension(topology),
        energy_type_dimension(),
        prosumer_dimension(),
        appliance_dimension(),
        state_dimension(),
    ]
    return {dimension.name: dimension for dimension in dimensions}

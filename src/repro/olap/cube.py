"""The flex-offer OLAP cube: filtering, grouping, drill-down and slicing.

The cube keeps the raw flex-offers and evaluates aggregations lazily, which is
what the tool needs: every pivot-view navigation step re-aggregates the
currently loaded offers with the chosen hierarchy level and measures.  The
supported operations mirror Section 3 of the paper: nested filtering and
grouping on all dimension types, drill-up / drill-down through hierarchy
levels, and evaluation of the Req.-2 measures per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence

from repro.datagen.grid import GridTopology
from repro.errors import UnknownDimensionError
from repro.flexoffer.model import FlexOffer
from repro.olap.dimension import Dimension, standard_dimensions
from repro.olap.measures import Measure, MeasureContext, get_measure
from repro.timeseries.grid import TimeGrid


@dataclass(frozen=True)
class GroupBy:
    """One grouping axis: a dimension name plus one of its level names."""

    dimension: str
    level: str


@dataclass(frozen=True)
class MemberFilter:
    """Keep only offers whose member at ``dimension.level`` is in ``members``."""

    dimension: str
    level: str
    members: tuple[Any, ...]


@dataclass(frozen=True)
class Cell:
    """One cell of a cube query result."""

    coordinates: tuple[Any, ...]
    values: dict[str, float]
    offer_count: int


@dataclass
class CellSet:
    """Result of a cube aggregation: the axes plus the populated cells."""

    group_by: tuple[GroupBy, ...]
    measures: tuple[str, ...]
    cells: list[Cell] = field(default_factory=list)

    def cell(self, coordinates: tuple[Any, ...]) -> Cell | None:
        """Return the cell at ``coordinates`` or ``None`` when empty."""
        for candidate in self.cells:
            if candidate.coordinates == coordinates:
                return candidate
        return None

    def value(self, coordinates: tuple[Any, ...], measure: str, default: float = 0.0) -> float:
        """Value of ``measure`` at ``coordinates`` (``default`` for empty cells)."""
        cell = self.cell(coordinates)
        if cell is None:
            return default
        return cell.values.get(measure, default)

    def axis_members(self, axis: int) -> list[Any]:
        """Distinct members along one grouping axis, in first-seen order."""
        seen: list[Any] = []
        for cell in self.cells:
            member = cell.coordinates[axis]
            if member not in seen:
                seen.append(member)
        return seen

    def totals(self) -> dict[str, float]:
        """Sum of each measure over all cells (counts and energies add up)."""
        totals = {measure: 0.0 for measure in self.measures}
        for cell in self.cells:
            for measure in self.measures:
                totals[measure] += cell.values.get(measure, 0.0)
        return totals


class FlexOfferCube:
    """An OLAP cube over a set of flex-offers."""

    def __init__(
        self,
        offers: Sequence[FlexOffer],
        grid: TimeGrid,
        topology: GridTopology | None = None,
        dimensions: Mapping[str, Dimension] | None = None,
        context: MeasureContext | None = None,
    ) -> None:
        self.offers = list(offers)
        self.grid = grid
        self.dimensions: dict[str, Dimension] = dict(
            dimensions if dimensions is not None else standard_dimensions(grid, topology)
        )
        self.context = context or MeasureContext()

    # ------------------------------------------------------------------
    # Dimension access
    # ------------------------------------------------------------------
    def dimension(self, name: str) -> Dimension:
        """Return the dimension called ``name``."""
        try:
            return self.dimensions[name]
        except KeyError as exc:
            raise UnknownDimensionError(
                f"cube has no dimension {name!r}; available: {sorted(self.dimensions)}"
            ) from exc

    def members(self, dimension: str, level: str) -> list[Any]:
        """Distinct members of ``dimension.level`` among the cube's offers."""
        return self.dimension(dimension).members(level, self.offers)

    # ------------------------------------------------------------------
    # Filtering (dice)
    # ------------------------------------------------------------------
    def filter(self, filters: Iterable[MemberFilter]) -> "FlexOfferCube":
        """Return a sub-cube containing only offers matching every filter."""
        offers = self.offers
        for member_filter in filters:
            level = self.dimension(member_filter.dimension).level(member_filter.level)
            allowed = set(member_filter.members)
            offers = [offer for offer in offers if level.member_of(offer) in allowed]
        return FlexOfferCube(
            offers, self.grid, dimensions=self.dimensions, context=self.context
        )

    def slice(self, dimension: str, level: str, member: Any) -> "FlexOfferCube":
        """Classical OLAP slice: fix one dimension level to a single member."""
        return self.filter([MemberFilter(dimension, level, (member,))])

    # ------------------------------------------------------------------
    # Aggregation (roll-up)
    # ------------------------------------------------------------------
    def aggregate(
        self,
        group_by: Sequence[GroupBy],
        measures: Sequence[str | Measure],
        filters: Sequence[MemberFilter] = (),
    ) -> CellSet:
        """Group the (optionally filtered) offers and evaluate measures per group."""
        cube = self.filter(filters) if filters else self
        resolved: list[Measure] = [
            measure if isinstance(measure, Measure) else get_measure(measure) for measure in measures
        ]
        levels = [cube.dimension(axis.dimension).level(axis.level) for axis in group_by]
        groups: dict[tuple[Any, ...], list[FlexOffer]] = {}
        for offer in cube.offers:
            key = tuple(level.member_of(offer) for level in levels)
            groups.setdefault(key, []).append(offer)
        cells = []
        for key in sorted(groups, key=lambda item: tuple(str(part) for part in item)):
            group_offers = groups[key]
            values = {measure.name: measure(group_offers, cube.context) for measure in resolved}
            cells.append(Cell(coordinates=key, values=values, offer_count=len(group_offers)))
        return CellSet(
            group_by=tuple(group_by),
            measures=tuple(measure.name for measure in resolved),
            cells=cells,
        )

    # ------------------------------------------------------------------
    # Navigation helpers used by the pivot view
    # ------------------------------------------------------------------
    def drill_down(self, cell_set: CellSet, axis: int, measures: Sequence[str] | None = None) -> CellSet:
        """Re-aggregate with axis ``axis`` one level finer (no-op at the leaf level)."""
        group_by = list(cell_set.group_by)
        axis_spec = group_by[axis]
        dimension = self.dimension(axis_spec.dimension)
        finer = dimension.drill_down_level(axis_spec.level)
        if finer is None:
            return cell_set
        group_by[axis] = GroupBy(axis_spec.dimension, finer.name)
        return self.aggregate(group_by, measures or cell_set.measures)

    def drill_up(self, cell_set: CellSet, axis: int, measures: Sequence[str] | None = None) -> CellSet:
        """Re-aggregate with axis ``axis`` one level coarser (no-op at the root level)."""
        group_by = list(cell_set.group_by)
        axis_spec = group_by[axis]
        dimension = self.dimension(axis_spec.dimension)
        coarser = dimension.drill_up_level(axis_spec.level)
        if coarser is None:
            return cell_set
        group_by[axis] = GroupBy(axis_spec.dimension, coarser.name)
        return self.aggregate(group_by, measures or cell_set.measures)

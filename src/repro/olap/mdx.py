"""A small MDX-like query language for the pivot view.

Section 3 of the paper requires "a possibility to manually formulate a query
(e.g., in MDX) for the view".  This module implements a deliberately small but
real subset of MDX syntax sufficient for the pivot view's query window:

.. code-block:: text

    SELECT {[Measures].[flex_offer_count], [Measures].[scheduled_energy]} ON COLUMNS,
           {[Prosumer].[prosumer_type].Members} ON ROWS
    FROM [FlexOffers]
    WHERE ([Geography].[region].[Zealand], [Time].[day].[2012-02-01])

Rules:

* the COLUMNS axis must contain only ``[Measures].[<name>]`` items,
* the ROWS axis must be a single ``[<Dimension>].[<level>].Members`` set or an
  explicit list of ``[<Dimension>].[<level>].[<member>]`` items,
* the optional WHERE tuple contains ``[<Dimension>].[<level>].[<member>]``
  slicers.

Parsing produces an :class:`MdxQuery`; :func:`execute` evaluates it against a
:class:`~repro.olap.cube.FlexOfferCube` and returns a
:class:`~repro.olap.pivot.PivotTable` whose *columns* are the measures.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any

from repro.errors import MdxSyntaxError
from repro.olap.cube import FlexOfferCube, GroupBy, MemberFilter
from repro.olap.pivot import PivotTable

_BRACKET_ITEM = re.compile(r"\[([^\]]*)\]")


@dataclass(frozen=True)
class MdxAxisItem:
    """One bracketed path on an axis, e.g. ``[Prosumer].[prosumer_type].Members``."""

    parts: tuple[str, ...]
    is_members: bool = False


@dataclass(frozen=True)
class MdxQuery:
    """A parsed MDX-like query."""

    measures: tuple[str, ...]
    rows_dimension: str
    rows_level: str
    rows_members: tuple[str, ...] | None
    cube_name: str
    slicers: tuple[tuple[str, str, str], ...] = field(default_factory=tuple)


def _split_set_items(text: str) -> list[str]:
    """Split a ``{a, b, c}`` set body on commas that are outside brackets."""
    items = []
    depth = 0
    current = []
    for char in text:
        if char == "[":
            depth += 1
        elif char == "]":
            depth -= 1
        if char == "," and depth == 0:
            items.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        items.append(tail)
    return items


def _parse_item(text: str) -> MdxAxisItem:
    is_members = bool(re.search(r"\.members\s*$", text, flags=re.IGNORECASE))
    parts = tuple(match.group(1) for match in _BRACKET_ITEM.finditer(text))
    if not parts:
        raise MdxSyntaxError(f"cannot parse axis item {text!r}")
    return MdxAxisItem(parts=parts, is_members=is_members)


def parse(query_text: str) -> MdxQuery:
    """Parse an MDX-like query string into an :class:`MdxQuery`."""
    text = " ".join(query_text.split())
    pattern = re.compile(
        r"^\s*SELECT\s+\{(?P<columns>.*?)\}\s+ON\s+COLUMNS\s*,\s*"
        r"\{(?P<rows>.*?)\}\s+ON\s+ROWS\s+"
        r"FROM\s+\[(?P<cube>[^\]]+)\]"
        r"(?:\s+WHERE\s+\((?P<where>.*?)\))?\s*$",
        flags=re.IGNORECASE,
    )
    match = pattern.match(text)
    if match is None:
        raise MdxSyntaxError(
            "query must have the form: SELECT {<measures>} ON COLUMNS, {<set>} ON ROWS "
            "FROM [<cube>] [WHERE (<slicers>)]"
        )

    # COLUMNS axis: measures only.
    measures = []
    for item_text in _split_set_items(match.group("columns")):
        item = _parse_item(item_text)
        if len(item.parts) != 2 or item.parts[0].lower() != "measures":
            raise MdxSyntaxError(
                f"COLUMNS axis items must be [Measures].[<name>], got {item_text!r}"
            )
        measures.append(item.parts[1])
    if not measures:
        raise MdxSyntaxError("COLUMNS axis contains no measures")

    # ROWS axis: one dimension level, either .Members or explicit member list.
    row_items = [_parse_item(item_text) for item_text in _split_set_items(match.group("rows"))]
    first = row_items[0]
    if first.is_members:
        if len(row_items) != 1 or len(first.parts) != 2:
            raise MdxSyntaxError("ROWS axis with .Members must be a single [Dim].[level].Members item")
        rows_dimension, rows_level = first.parts
        rows_members: tuple[str, ...] | None = None
    else:
        rows_members_list = []
        rows_dimension = rows_level = ""
        for item in row_items:
            if len(item.parts) != 3:
                raise MdxSyntaxError(
                    f"explicit ROWS members must be [Dim].[level].[member], got {item.parts}"
                )
            dimension, level, member = item.parts
            if rows_dimension and (dimension != rows_dimension or level != rows_level):
                raise MdxSyntaxError("all explicit ROWS members must share one dimension level")
            rows_dimension, rows_level = dimension, level
            rows_members_list.append(member)
        rows_members = tuple(rows_members_list)

    # WHERE slicers.
    slicers = []
    where_text = match.group("where")
    if where_text:
        for item_text in _split_set_items(where_text):
            item = _parse_item(item_text)
            if len(item.parts) != 3:
                raise MdxSyntaxError(
                    f"WHERE slicers must be [Dim].[level].[member], got {item_text!r}"
                )
            slicers.append((item.parts[0], item.parts[1], item.parts[2]))

    return MdxQuery(
        measures=tuple(measures),
        rows_dimension=rows_dimension,
        rows_level=rows_level,
        rows_members=rows_members,
        cube_name=match.group("cube"),
        slicers=tuple(slicers),
    )


def execute(cube: FlexOfferCube, query: MdxQuery | str) -> PivotTable:
    """Evaluate an MDX-like query against ``cube``.

    The result is a :class:`PivotTable` whose rows are the requested dimension
    members and whose single column axis carries one column per measure (the
    classic "measures on columns" layout of the paper's MDX example).
    """
    if isinstance(query, str):
        query = parse(query)

    filters = [
        MemberFilter(dimension, level, (member,)) for dimension, level, member in query.slicers
    ]
    if query.rows_members is not None:
        filters.append(
            MemberFilter(query.rows_dimension, query.rows_level, tuple(query.rows_members))
        )
    filtered = cube.filter(filters) if filters else cube

    cell_set = filtered.aggregate(
        [GroupBy(query.rows_dimension, query.rows_level)], list(query.measures)
    )
    if query.rows_members is not None:
        row_members: list[Any] = list(query.rows_members)
    else:
        row_members = filtered.members(query.rows_dimension, query.rows_level)
    column_members: list[Any] = list(query.measures)
    values: dict[str, list[list[float]]] = {
        measure: [[0.0] for _ in row_members] for measure in query.measures
    }
    for cell in cell_set.cells:
        (member,) = cell.coordinates
        if member not in row_members:
            continue
        row_index = row_members.index(member)
        for measure in query.measures:
            values[measure][row_index][0] = cell.values.get(measure, 0.0)

    # Re-shape to the PivotTable contract: one column per measure.
    table_values: dict[str, list[list[float]]] = {}
    for measure in query.measures:
        table_values[measure] = [
            [values[measure][row_index][0] for _ in range(1)] for row_index in range(len(row_members))
        ]
    merged = {
        "value": [
            [values[measure][row_index][0] for measure in query.measures]
            for row_index in range(len(row_members))
        ]
    }
    return PivotTable(
        row_dimension=GroupBy(query.rows_dimension, query.rows_level),
        column_dimension=GroupBy("Measures", "measure"),
        measures=("value",),
        row_members=row_members,
        column_members=column_members,
        values=merged,
    )

"""OLAP engine over flex-offers: dimensions, cube, measures, pivot tables, MDX subset."""

from repro.olap.cube import Cell, CellSet, FlexOfferCube, GroupBy, MemberFilter
from repro.olap.dimension import (
    Dimension,
    Level,
    appliance_dimension,
    energy_type_dimension,
    geography_dimension,
    grid_dimension,
    prosumer_dimension,
    standard_dimensions,
    state_dimension,
    time_dimension,
)
from repro.olap.mdx import MdxQuery, execute, parse
from repro.olap.measures import STANDARD_MEASURES, Measure, MeasureContext, get_measure
from repro.olap.pivot import PivotTable, pivot

__all__ = [
    "FlexOfferCube",
    "GroupBy",
    "MemberFilter",
    "Cell",
    "CellSet",
    "Dimension",
    "Level",
    "standard_dimensions",
    "time_dimension",
    "geography_dimension",
    "grid_dimension",
    "energy_type_dimension",
    "prosumer_dimension",
    "appliance_dimension",
    "state_dimension",
    "Measure",
    "MeasureContext",
    "STANDARD_MEASURES",
    "get_measure",
    "PivotTable",
    "pivot",
    "MdxQuery",
    "parse",
    "execute",
]

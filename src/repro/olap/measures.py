"""The aggregate measures required by the paper's Req. 2.

Section 3 lists the statistics the framework must support on aggregated
flex-offer data:

* **Flex-offer Count** — total / accepted / assigned / rejected counts,
* **Flex-offer Attribute Value** — min / max / average of an attribute such as
  price, energy or flexibility,
* **Scheduled Energy** — energy planned by utilising flex-offers,
* **Plan Deviations** — difference between plan and physical realization,
* **Energy Balancing Potential** — how well energy can be balanced with the
  offered flexibility.

Every measure is a named function from a list of flex-offers (one OLAP cell's
group) plus an optional :class:`MeasureContext` to a float.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.errors import UnknownMeasureError
from repro.flexoffer.flexibility import balancing_potential
from repro.flexoffer.model import FlexOffer, FlexOfferState


@dataclass(frozen=True)
class MeasureContext:
    """Extra data some measures need beyond the flex-offers themselves.

    ``realized_energy`` maps a flex-offer id to the physically metered energy
    of that offer; it backs the *Plan Deviations* measure.  When an offer has
    no entry, its realization is assumed to equal its schedule (deviation 0).
    """

    realized_energy: Mapping[int, float] = field(default_factory=dict)


#: Signature of a measure function.
MeasureFunction = Callable[[Sequence[FlexOffer], MeasureContext], float]


@dataclass(frozen=True)
class Measure:
    """A named, documented aggregate measure."""

    name: str
    description: str
    function: MeasureFunction
    unit: str = ""

    def __call__(self, offers: Sequence[FlexOffer], context: MeasureContext | None = None) -> float:
        return self.function(offers, context or MeasureContext())


# ----------------------------------------------------------------------
# Count measures
# ----------------------------------------------------------------------
def _count(offers: Sequence[FlexOffer], _: MeasureContext) -> float:
    return float(len(offers))


def _count_in_state(state: FlexOfferState) -> MeasureFunction:
    def function(offers: Sequence[FlexOffer], _: MeasureContext) -> float:
        return float(sum(1 for offer in offers if offer.state is state))

    return function


# ----------------------------------------------------------------------
# Attribute-value measures
# ----------------------------------------------------------------------
def _mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _attribute_measure(kind: str, attribute: Callable[[FlexOffer], float]) -> MeasureFunction:
    def function(offers: Sequence[FlexOffer], _: MeasureContext) -> float:
        values = [attribute(offer) for offer in offers]
        if not values:
            return 0.0
        if kind == "min":
            return float(min(values))
        if kind == "max":
            return float(max(values))
        if kind == "sum":
            return float(sum(values))
        return float(_mean(values))

    return function


# ----------------------------------------------------------------------
# Energy measures
# ----------------------------------------------------------------------
def _scheduled_energy(offers: Sequence[FlexOffer], _: MeasureContext) -> float:
    return float(sum(offer.scheduled_energy for offer in offers))


def _plan_deviation(offers: Sequence[FlexOffer], context: MeasureContext) -> float:
    deviation = 0.0
    for offer in offers:
        if offer.schedule is None:
            continue
        realized = context.realized_energy.get(offer.id, offer.scheduled_energy)
        deviation += abs(offer.scheduled_energy - realized)
    return deviation


def _balancing_potential(offers: Sequence[FlexOffer], _: MeasureContext) -> float:
    return balancing_potential(list(offers))


#: The standard measure registry (name -> Measure).
STANDARD_MEASURES: dict[str, Measure] = {
    measure.name: measure
    for measure in (
        Measure("flex_offer_count", "Total number of flex-offers in the cell", _count, "offers"),
        Measure(
            "accepted_count",
            "Number of accepted flex-offers",
            _count_in_state(FlexOfferState.ACCEPTED),
            "offers",
        ),
        Measure(
            "assigned_count",
            "Number of assigned flex-offers",
            _count_in_state(FlexOfferState.ASSIGNED),
            "offers",
        ),
        Measure(
            "rejected_count",
            "Number of rejected flex-offers",
            _count_in_state(FlexOfferState.REJECTED),
            "offers",
        ),
        Measure(
            "executed_count",
            "Number of executed flex-offers",
            _count_in_state(FlexOfferState.EXECUTED),
            "offers",
        ),
        Measure(
            "min_energy",
            "Minimum of the offers' minimum total energy",
            _attribute_measure("min", lambda o: o.min_total_energy),
            "kWh",
        ),
        Measure(
            "max_energy",
            "Maximum of the offers' maximum total energy",
            _attribute_measure("max", lambda o: o.max_total_energy),
            "kWh",
        ),
        Measure(
            "avg_energy",
            "Average of the offers' maximum total energy",
            _attribute_measure("mean", lambda o: o.max_total_energy),
            "kWh",
        ),
        Measure(
            "total_energy",
            "Sum of the offers' maximum total energy",
            _attribute_measure("sum", lambda o: o.max_total_energy),
            "kWh",
        ),
        Measure(
            "avg_price",
            "Average price per kWh across offers",
            _attribute_measure("mean", lambda o: o.price_per_kwh),
            "EUR/kWh",
        ),
        Measure(
            "avg_time_flexibility",
            "Average start-time flexibility in slots",
            _attribute_measure("mean", lambda o: float(o.time_flexibility_slots)),
            "slots",
        ),
        Measure(
            "total_energy_flexibility",
            "Sum of energy-band widths",
            _attribute_measure("sum", lambda o: o.energy_flexibility),
            "kWh",
        ),
        Measure("scheduled_energy", "Total scheduled energy", _scheduled_energy, "kWh"),
        Measure(
            "plan_deviation",
            "Total absolute difference between planned and realized energy",
            _plan_deviation,
            "kWh",
        ),
        Measure(
            "balancing_potential",
            "Energy balancing potential of the cell's offers (0..1)",
            _balancing_potential,
            "",
        ),
    )
}


def get_measure(name: str) -> Measure:
    """Return a standard measure by name, raising :class:`UnknownMeasureError` otherwise."""
    try:
        return STANDARD_MEASURES[name]
    except KeyError as exc:
        raise UnknownMeasureError(
            f"unknown measure {name!r}; available: {sorted(STANDARD_MEASURES)}"
        ) from exc

"""Pivot-table results: the tabular structure behind the paper's pivot view (Figure 5).

A pivot query crosses one dimension level on the rows (e.g. members of the
prosumer-type hierarchy) with another on the columns (typically time) and
fills the cells with measure values.  The result object is purely tabular so
that both the SVG pivot view and plain-text reports can render it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from repro.olap.cube import FlexOfferCube, GroupBy, MemberFilter


@dataclass
class PivotTable:
    """A dense pivot table: ``values[measure][row_index][column_index]``."""

    row_dimension: GroupBy
    column_dimension: GroupBy
    measures: tuple[str, ...]
    row_members: list[Any]
    column_members: list[Any]
    values: dict[str, list[list[float]]]

    def value(self, measure: str, row_member: Any, column_member: Any) -> float:
        """Value of ``measure`` at the given row/column members (0.0 when absent)."""
        try:
            row = self.row_members.index(row_member)
            column = self.column_members.index(column_member)
        except ValueError:
            return 0.0
        return self.values[measure][row][column]

    def row_totals(self, measure: str) -> list[float]:
        """Sum of ``measure`` across columns, one entry per row member."""
        return [sum(row) for row in self.values[measure]]

    def column_totals(self, measure: str) -> list[float]:
        """Sum of ``measure`` across rows, one entry per column member."""
        grid = self.values[measure]
        if not grid:
            return [0.0 for _ in self.column_members]
        return [sum(row[index] for row in grid) for index in range(len(self.column_members))]

    def to_text(self, measure: str, cell_width: int = 10) -> str:
        """Render one measure of the pivot as a fixed-width text table."""
        header_cells = [str(member)[: cell_width - 1].rjust(cell_width) for member in self.column_members]
        lines = ["".rjust(24) + "".join(header_cells)]
        for row_index, member in enumerate(self.row_members):
            cells = [
                f"{self.values[measure][row_index][column_index]:.1f}".rjust(cell_width)
                for column_index in range(len(self.column_members))
            ]
            lines.append(str(member)[:23].ljust(24) + "".join(cells))
        return "\n".join(lines)


def pivot(
    cube: FlexOfferCube,
    rows: GroupBy,
    columns: GroupBy,
    measures: Sequence[str],
    filters: Sequence[MemberFilter] = (),
) -> PivotTable:
    """Execute a pivot query against ``cube``.

    Row and column member orders follow the cube's member enumeration for the
    respective levels so that empty rows/columns still appear in the table.
    """
    filtered = cube.filter(filters) if filters else cube
    cell_set = filtered.aggregate([rows, columns], measures)
    row_members = filtered.members(rows.dimension, rows.level)
    column_members = filtered.members(columns.dimension, columns.level)
    if rows.level == "slot":
        row_members = sorted(row_members)
    if columns.level in ("slot", "hour", "day", "month"):
        column_members = sorted(column_members)
    values: dict[str, list[list[float]]] = {
        measure: [[0.0 for _ in column_members] for _ in row_members] for measure in cell_set.measures
    }
    for cell in cell_set.cells:
        row_member, column_member = cell.coordinates
        if row_member not in row_members or column_member not in column_members:
            continue
        row_index = row_members.index(row_member)
        column_index = column_members.index(column_member)
        for measure, value in cell.values.items():
            values[measure][row_index][column_index] = value
    return PivotTable(
        row_dimension=rows,
        column_dimension=columns,
        measures=cell_set.measures,
        row_members=row_members,
        column_members=column_members,
        values=values,
    )

"""Command-line interface of the reproduction (``flexviz``).

Sub-commands:

* ``flexviz figures --out <dir>`` — regenerate every paper figure as SVG.
* ``flexviz render --view basic --out basic.svg`` — render one view of a
  freshly generated scenario.
* ``flexviz warehouse --out <dir>`` — generate a scenario and persist its
  star schema as CSV files.
* ``flexviz plan`` — run one enterprise planning cycle and print the report.
* ``flexviz mdx "<query>"`` — run an MDX-like query against a scenario cube
  and print the resulting table.
* ``flexviz live`` — replay a scenario as a timestamped offer-event stream
  through the incremental aggregation engine and report commit latencies.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.app.figures import default_scenario, generate_all_figures
from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.enterprise.planning import run_planning_cycle
from repro.olap.cube import FlexOfferCube
from repro.olap.mdx import execute as execute_mdx
from repro.scheduling.evaluation import compare, report
from repro.scheduling.greedy import EarliestStartScheduler, GreedyScheduler
from repro.scheduling.problem import BalancingProblem, make_target
from repro.views.basic import BasicView
from repro.views.dashboard import DashboardView
from repro.views.map_view import MapView
from repro.views.pivot_view import PivotView
from repro.views.profile_view import ProfileView
from repro.views.schematic import SchematicView
from repro.warehouse.loader import load_scenario
from repro.warehouse.persistence import save_schema

_VIEW_NAMES = ("basic", "profile", "map", "schematic", "pivot", "dashboard")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexviz",
        description="Flex-offer visual analysis framework (EDBT/ICDT 2013 reproduction)",
    )
    parser.add_argument("--prosumers", type=int, default=200, help="scenario size (default 200)")
    parser.add_argument("--seed", type=int, default=42, help="scenario random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="regenerate every paper figure as SVG")
    figures.add_argument("--out", default="figures", help="output directory")

    render = subparsers.add_parser("render", help="render one view to SVG")
    render.add_argument("--view", choices=_VIEW_NAMES, default="basic")
    render.add_argument("--out", default="view.svg", help="output SVG path")
    render.add_argument("--ascii", action="store_true", help="print an ASCII rendering instead")

    warehouse = subparsers.add_parser("warehouse", help="persist a scenario's star schema as CSV")
    warehouse.add_argument("--out", default="warehouse", help="output directory")

    subparsers.add_parser("plan", help="run one planning cycle and print the report")

    mdx = subparsers.add_parser("mdx", help="run an MDX-like query against a scenario cube")
    mdx.add_argument("query", help="the MDX query text")

    live = subparsers.add_parser(
        "live", help="replay a scenario as an event stream through the live engine"
    )
    live.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch size (events per commit)"
    )
    live.add_argument(
        "--update", type=float, default=0.1, help="fraction of offers revised mid-stream"
    )
    live.add_argument(
        "--withdraw", type=float, default=0.05, help="fraction of offers withdrawn"
    )
    live.add_argument(
        "--with-warehouse",
        action="store_true",
        help="also maintain a live star schema under the same events",
    )
    return parser


def _make_scenario(args: argparse.Namespace):
    return generate_scenario(ScenarioConfig(prosumer_count=args.prosumers, seed=args.seed))


def _command_figures(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    artifacts = generate_all_figures(scenario, directory=args.out)
    for artifact in artifacts:
        print(f"{artifact.figure_id:<24} {artifact.title}")
    print(f"wrote {len(artifacts)} figures to {args.out}/")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    if args.view == "basic":
        view = BasicView(scenario.flex_offers, scenario.grid)
    elif args.view == "profile":
        view = ProfileView(scenario.flex_offers[:100], scenario.grid)
    elif args.view == "map":
        view = MapView(scenario.flex_offers, scenario.geography, scenario.grid)
    elif args.view == "schematic":
        view = SchematicView(scenario.flex_offers, scenario.topology, scenario.grid)
    elif args.view == "pivot":
        view = PivotView(scenario.flex_offers, scenario.grid)
    else:
        view = DashboardView(scenario.flex_offers, scenario.grid)
    if args.ascii:
        print(view.to_ascii(columns=110))
        return 0
    view.save_svg(args.out)
    print(f"wrote {args.view} view ({len(scenario.flex_offers)} flex-offers) to {args.out}")
    return 0


def _command_warehouse(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    schema = load_scenario(scenario)
    written = save_schema(schema, args.out)
    for path in written:
        print(path)
    print(f"wrote {len(written)} tables to {args.out}/")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    target = make_target(scenario.res_production, scenario.base_demand)
    problem = BalancingProblem(offers=list(scenario.flex_offers), target=target, grid=scenario.grid)
    baseline = report(EarliestStartScheduler().schedule(problem))
    plan = run_planning_cycle(scenario, scheduler=GreedyScheduler())
    print(compare([baseline, plan.balance_report]))
    print()
    print(f"spot trades           : {len(plan.trades)}")
    print(f"trade cost            : {plan.trade_cost_eur:10.2f} EUR")
    print(f"imbalance cost        : {plan.imbalance_cost_eur:10.2f} EUR")
    print(f"plan deviation        : {plan.settlement.total_absolute_deviation:10.2f} kWh")
    return 0


def _command_mdx(args: argparse.Namespace) -> int:
    scenario = _make_scenario(args)
    cube = FlexOfferCube(scenario.flex_offers, scenario.grid, topology=scenario.topology)
    table = execute_mdx(cube, args.query)
    print(json.dumps(
        {
            "rows": [str(member) for member in table.row_members],
            "columns": [str(member) for member in table.column_members],
            "values": table.values["value"],
        },
        indent=2,
    ))
    return 0


def _command_live(args: argparse.Namespace) -> int:
    import time

    from repro.aggregation.aggregate import aggregate
    from repro.live.engine import LiveAggregationEngine
    from repro.live.replay import replay, scenario_event_stream
    from repro.live.warehouse import LiveWarehouse

    if args.batch_size < 0:
        print("error: --batch-size must be >= 0 (0 = single commit at the end)", file=sys.stderr)
        return 2
    scenario = _make_scenario(args)
    log = scenario_event_stream(
        scenario, update_fraction=args.update, withdraw_fraction=args.withdraw, seed=args.seed
    )
    engine = LiveAggregationEngine(micro_batch_size=args.batch_size)
    warehouse = None
    if args.with_warehouse:
        warehouse = LiveWarehouse(load_scenario(scenario.replace_offers([])), scenario.grid)
    report = replay(log, engine, warehouse=warehouse)
    print(report.describe())
    started = time.perf_counter()
    batch = aggregate(engine.offers(), engine.parameters)
    batch_seconds = time.perf_counter() - started
    print(f"batch re-aggregation  : {batch_seconds * 1000:9.3f} ms ({len(batch.offers)} outputs)")
    if report.mean_commit_ms > 0:
        print(f"commit vs batch       : {batch_seconds * 1000 / report.mean_commit_ms:9.1f}x")
    if warehouse is not None:
        print(
            f"warehouse facts       : {warehouse.offer_count()} offers + "
            f"{warehouse.aggregate_count()} aggregates"
        )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    commands = {
        "figures": _command_figures,
        "render": _command_render,
        "warehouse": _command_warehouse,
        "plan": _command_plan,
        "mdx": _command_mdx,
        "live": _command_live,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Command-line interface of the reproduction (``flexviz``).

Every sub-command goes through one :class:`~repro.session.FlexSession` — the
unified facade over scenario, warehouse, engines and views:

* ``flexviz figures --out <dir>`` — regenerate every paper figure as SVG.
* ``flexviz render --view basic --out basic.svg`` — render one registered
  view of a freshly generated scenario.
* ``flexviz warehouse --out <dir>`` — generate a scenario and persist its
  star schema as CSV files.
* ``flexviz plan`` — run one enterprise planning cycle and print the report.
* ``flexviz mdx "<query>"`` — run an MDX-like query against a scenario cube
  and print the resulting table.
* ``flexviz session`` — run a fluent offer query through the facade and
  print the result frame; ``--smoke`` checks batch≡live interchangeability.
* ``flexviz live`` — replay a scenario as a timestamped offer-event stream
  through the incremental aggregation engine and report commit latencies.
* ``flexviz checkpoint`` — stream a scenario into the segmented event log,
  checkpoint mid-stream (snapshot + warehouse + log offset), optionally
  compact the closed segments.
* ``flexviz restore`` — rebuild a session from a checkpoint plus its log
  tail; ``--smoke`` proves the recovery contract (restore ≡ batch rebuild ≡
  cold replay) and exits non-zero on divergence.
* ``flexviz stats`` — replay a scenario with observability enabled, exercise
  the query and durability paths, and print the per-stage latency table
  (commit, kernel dispatch, query, checkpoint/restore); ``--export-jsonl`` /
  ``--export-prom`` dump the registry through the exporters, ``--flame`` /
  ``--folded`` dump the finished spans as a Chrome ``trace_event`` JSON
  (load it in Perfetto / ``chrome://tracing``) and as folded stacks
  (speedscope / ``flamegraph.pl``), ``--smoke`` exits non-zero when a
  required stage recorded nothing.
* ``flexviz trace`` — print one trace from a ``--export-jsonl`` dump as an
  indented span tree (``latest`` or a numeric trace id); ``--list``
  summarizes every trace in the dump.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro.app.figures import generate_all_figures
from repro.enterprise.planning import run_planning_cycle
from repro.olap.mdx import execute as execute_mdx
from repro.scheduling.evaluation import compare, report
from repro.scheduling.greedy import EarliestStartScheduler, GreedyScheduler
from repro.scheduling.problem import BalancingProblem, make_target
from repro.session import FlexSession
from repro.session.views import registered_views
from repro.warehouse.persistence import save_schema

_VIEW_NAMES = registered_views()


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="flexviz",
        description="Flex-offer visual analysis framework (EDBT/ICDT 2013 reproduction)",
    )
    parser.add_argument("--prosumers", type=int, default=200, help="scenario size (default 200)")
    parser.add_argument("--seed", type=int, default=42, help="scenario random seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    figures = subparsers.add_parser("figures", help="regenerate every paper figure as SVG")
    figures.add_argument("--out", default="figures", help="output directory")

    render = subparsers.add_parser("render", help="render one view to SVG")
    render.add_argument("--view", choices=_VIEW_NAMES, default="basic")
    render.add_argument("--out", default="view.svg", help="output SVG path")
    render.add_argument("--ascii", action="store_true", help="print an ASCII rendering instead")

    warehouse = subparsers.add_parser("warehouse", help="persist a scenario's star schema as CSV")
    warehouse.add_argument("--out", default="warehouse", help="output directory")

    subparsers.add_parser("plan", help="run one planning cycle and print the report")

    mdx = subparsers.add_parser("mdx", help="run an MDX-like query against a scenario cube")
    mdx.add_argument("query", help="the MDX query text")

    session = subparsers.add_parser(
        "session", help="run a fluent offer query through the FlexSession facade"
    )
    session.add_argument(
        "--engine",
        choices=("batch", "live", "sharded", "async"),
        default="batch",
        help="which engine answers",
    )
    session.add_argument("--state", action="append", help="filter by offer state (repeatable)")
    session.add_argument("--region", action="append", help="filter by region (repeatable)")
    session.add_argument("--grid-node", action="append", help="filter by grid node (repeatable)")
    session.add_argument(
        "--aggregate", action="store_true", help="aggregate the selection before printing"
    )
    session.add_argument(
        "--limit", type=int, default=10, help="frame rows to print (default 10; 0 = all)"
    )
    session.add_argument(
        "--smoke",
        action="store_true",
        help="run the batch/live interchangeability smoke check and exit non-zero on mismatch",
    )

    live = subparsers.add_parser(
        "live", help="replay a scenario as an event stream through the live engine"
    )
    live.add_argument(
        "--engine",
        choices=("live", "sharded", "async"),
        default="live",
        help="which incremental engine replays the stream",
    )
    live.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch size (events per commit)"
    )
    live.add_argument(
        "--update", type=float, default=0.1, help="fraction of offers revised mid-stream"
    )
    live.add_argument(
        "--withdraw", type=float, default=0.05, help="fraction of offers withdrawn"
    )
    live.add_argument(
        "--with-warehouse",
        action="store_true",
        help="deprecated: the session's live engine always maintains its warehouse",
    )

    checkpoint = subparsers.add_parser(
        "checkpoint",
        help="stream a scenario, persist the event log and write a mid-stream checkpoint",
    )
    checkpoint.add_argument("--out", default="checkpoint", help="durability directory")
    checkpoint.add_argument(
        "--engine",
        choices=("live", "sharded", "async"),
        default="live",
        help="which incremental engine consumes the stream",
    )
    checkpoint.add_argument(
        "--tail",
        type=float,
        default=0.1,
        help="fraction of the stream left beyond the checkpoint (default 0.1)",
    )
    checkpoint.add_argument(
        "--update", type=float, default=0.1, help="fraction of offers revised mid-stream"
    )
    checkpoint.add_argument(
        "--withdraw", type=float, default=0.05, help="fraction of offers withdrawn"
    )
    checkpoint.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch size (events per commit)"
    )
    checkpoint.add_argument(
        "--segment-size", type=int, default=512, help="events per log segment file"
    )
    checkpoint.add_argument(
        "--compact",
        action="store_true",
        help="compact the closed log segments after checkpointing",
    )

    restore = subparsers.add_parser(
        "restore", help="rebuild a session from a checkpoint directory plus its log tail"
    )
    restore.add_argument("--from", dest="source", default="checkpoint", help="durability directory")
    restore.add_argument(
        "--engine",
        choices=("live", "sharded", "async"),
        default=None,
        help="rebuild with this engine (default: the one that wrote the checkpoint)",
    )
    restore.add_argument(
        "--smoke",
        action="store_true",
        help="prove the recovery contract (restore ≡ batch rebuild ≡ cold replay) "
        "and exit non-zero on divergence",
    )

    stats = subparsers.add_parser(
        "stats",
        help="replay with observability enabled and print the per-stage latency table",
    )
    stats.add_argument(
        "--engine",
        choices=("live", "sharded", "async"),
        default="live",
        help="which incremental engine replays the stream",
    )
    stats.add_argument(
        "--batch-size", type=int, default=64, help="micro-batch size (events per commit)"
    )
    stats.add_argument(
        "--update", type=float, default=0.1, help="fraction of offers revised mid-stream"
    )
    stats.add_argument(
        "--withdraw", type=float, default=0.05, help="fraction of offers withdrawn"
    )
    stats.add_argument(
        "--calibrate",
        action="store_true",
        help="measure the scalar/numpy kernel crossover first and dispatch with it",
    )
    stats.add_argument(
        "--export-jsonl", metavar="PATH", help="dump every metric and span as JSON lines"
    )
    stats.add_argument(
        "--export-prom",
        metavar="PATH",
        help="dump the registry in the Prometheus text exposition format",
    )
    stats.add_argument(
        "--flame",
        metavar="PATH",
        help="dump the finished spans as Chrome trace_event JSON (Perfetto-loadable)",
    )
    stats.add_argument(
        "--folded",
        metavar="PATH",
        help="dump the finished spans as folded stacks (speedscope / flamegraph.pl)",
    )
    stats.add_argument(
        "--sample",
        type=int,
        metavar="N",
        default=0,
        help="head-sample root spans 1-in-N (0 = record every trace)",
    )
    stats.add_argument(
        "--smoke",
        action="store_true",
        help="exit non-zero when a required stage (commit, kernel, query, "
        "checkpoint/restore) recorded no observations",
    )

    views = subparsers.add_parser(
        "views", help="list the registered views, or demo delta-maintained materialized views"
    )
    views.add_argument(
        "--materialized",
        action="store_true",
        help="replay a mutated stream with standing materialized views attached and "
        "print their maintenance stats (deltas applied vs skipped, staleness, cost)",
    )
    views.add_argument(
        "--engine",
        choices=("live", "sharded", "async"),
        default="live",
        help="which incremental engine maintains the views (with --materialized)",
    )
    views.add_argument(
        "--update", type=float, default=0.1, help="fraction of offers revised mid-stream"
    )
    views.add_argument(
        "--withdraw", type=float, default=0.05, help="fraction of offers withdrawn"
    )

    trace = subparsers.add_parser(
        "trace", help="print one trace from a stats --export-jsonl dump as a span tree"
    )
    trace.add_argument(
        "trace_id",
        nargs="?",
        default="latest",
        help="numeric trace id, or 'latest' (default) for the newest trace in the dump",
    )
    trace.add_argument(
        "--input",
        default="obs.jsonl",
        metavar="PATH",
        help="JSONL dump written by flexviz stats --export-jsonl (default obs.jsonl)",
    )
    trace.add_argument(
        "--list", action="store_true", help="summarize every trace in the dump instead"
    )
    return parser


def _make_session(args: argparse.Namespace, **session_options) -> FlexSession:
    return FlexSession.from_config(prosumers=args.prosumers, seed=args.seed, **session_options)


def _command_figures(args: argparse.Namespace) -> int:
    session = _make_session(args)
    artifacts = generate_all_figures(session, directory=args.out)
    for artifact in artifacts:
        print(f"{artifact.figure_id:<24} {artifact.title}")
    print(f"wrote {len(artifacts)} figures to {args.out}/")
    return 0


def _command_render(args: argparse.Namespace) -> int:
    session = _make_session(args)
    query = session.offers()
    if args.view == "profile":
        # The profile view is meant for small sets; match the historic cap.
        query = query.limit(100)
    result = query.fetch()
    view = session.view(args.view, result)
    if args.ascii:
        print(view.to_ascii(columns=110))
        return 0
    view.save_svg(args.out)
    print(f"wrote {args.view} view ({result.matched_rows} flex-offers) to {args.out}")
    return 0


def _command_warehouse(args: argparse.Namespace) -> int:
    session = _make_session(args)
    written = save_schema(session.schema, args.out)
    for path in written:
        print(path)
    print(f"wrote {len(written)} tables to {args.out}/")
    return 0


def _command_plan(args: argparse.Namespace) -> int:
    scenario = _make_session(args).scenario
    target = make_target(scenario.res_production, scenario.base_demand)
    problem = BalancingProblem(offers=list(scenario.flex_offers), target=target, grid=scenario.grid)
    baseline = report(EarliestStartScheduler().schedule(problem))
    plan = run_planning_cycle(scenario, scheduler=GreedyScheduler())
    print(compare([baseline, plan.balance_report]))
    print()
    print(f"spot trades           : {len(plan.trades)}")
    print(f"trade cost            : {plan.trade_cost_eur:10.2f} EUR")
    print(f"imbalance cost        : {plan.imbalance_cost_eur:10.2f} EUR")
    print(f"plan deviation        : {plan.settlement.total_absolute_deviation:10.2f} kWh")
    return 0


def _command_mdx(args: argparse.Namespace) -> int:
    session = _make_session(args)
    table = execute_mdx(session.cube(), args.query)
    print(json.dumps(
        {
            "rows": [str(member) for member in table.row_members],
            "columns": [str(member) for member in table.column_members],
            "values": table.values["value"],
        },
        indent=2,
    ))
    return 0


def _session_query(session: FlexSession, args: argparse.Namespace):
    query = session.offers()
    filters = {}
    if args.state:
        filters["states"] = tuple(args.state)
    if args.region:
        filters["regions"] = tuple(args.region)
    if args.grid_node:
        filters["grid_nodes"] = tuple(args.grid_node)
    if filters:
        query = query.where(**filters)
    if args.aggregate:
        query = query.aggregate()
    return query


def _command_session(args: argparse.Namespace) -> int:
    session = _make_session(args, engine=args.engine)
    if args.smoke:
        return _session_smoke(session, args)
    result = _session_query(session, args).fetch()
    print(result.describe())
    frame = result.to_frame()
    shown = frame if args.limit == 0 else frame[: args.limit]
    for row in shown:
        print(
            f"  #{row['id']:<8} {row['state']:<9} {row['region']:<14} "
            f"{row['grid_node']:<24} {row['min_total_energy']:8.2f}.."
            f"{row['max_total_energy']:<8.2f} kWh"
            f"{'  [aggregate]' if row['is_aggregate'] else ''}"
        )
    if len(frame) > len(shown):
        print(f"  ... {len(frame) - len(shown)} more rows (raise --limit)")
    return 0


def _session_smoke(session: FlexSession, args: argparse.Namespace) -> int:
    """The equivalence contract, end to end: same spec, two engines, equal results.

    Compares the batch snapshot against the selected live-family engine
    (``--engine sharded`` checks batch≡sharded; plain ``--engine batch``
    defaults the counterpart to the live engine).
    """
    counterpart = args.engine if args.engine != "batch" else "live"
    checks = []
    for label, query in (
        ("filtered read", _session_query(session, args)),
        ("aggregation", _session_query(session, args).aggregate()),
    ):
        spec = query.spec
        session.use_engine("batch")
        batch_result = session.query(spec)
        session.use_engine(counterpart)
        live_result = session.query(spec)
        ok = batch_result.matches(live_result)
        checks.append(ok)
        print(
            f"{'ok ' if ok else 'FAIL'} {label:<14} "
            f"batch={len(batch_result)} {counterpart}={len(live_result)} "
            f"spec=({spec.describe() or 'all flex-offers'})"
        )
    if all(checks):
        print(f"session smoke OK: {session.describe()}")
        return 0
    print("session smoke FAILED: engines disagree on at least one spec", file=sys.stderr)
    return 1


def _command_live(args: argparse.Namespace) -> int:
    import time

    from repro.aggregation.aggregate import aggregate
    from repro.live.replay import scenario_event_stream

    if args.batch_size < 0:
        print("error: --batch-size must be >= 0 (0 = single commit at the end)", file=sys.stderr)
        return 2
    session = _make_session(
        args, engine=args.engine, micro_batch_size=args.batch_size, live_preload=False
    )
    log = scenario_event_stream(
        session.scenario, update_fraction=args.update, withdraw_fraction=args.withdraw, seed=args.seed
    )
    report = session.replay(log)
    print(report.describe())
    backend = session.engine
    started = time.perf_counter()
    # Deliberately the raw batch pipeline (not backend.aggregate, whose live
    # fast path would serve the committed state): this times a full recompute.
    batch = aggregate(backend.offers(), backend.parameters)
    batch_seconds = time.perf_counter() - started
    print(f"batch re-aggregation  : {batch_seconds * 1000:9.3f} ms ({len(batch.offers)} outputs)")
    if report.mean_commit_ms > 0:
        print(f"commit vs batch       : {batch_seconds * 1000 / report.mean_commit_ms:9.1f}x")
    print(
        f"warehouse facts       : {backend.warehouse.offer_count()} offers + "
        f"{backend.warehouse.aggregate_count()} aggregates"
    )
    return 0


def _command_checkpoint(args: argparse.Namespace) -> int:
    from repro.live.replay import scenario_event_stream
    from repro.store import RecoveryManager

    if not 0.0 <= args.tail < 1.0:
        print("error: --tail must be in [0, 1)", file=sys.stderr)
        return 2
    manager = RecoveryManager(args.out, segment_size=args.segment_size)
    if manager.snapshots.exists() or manager.log.segments():
        # Appending a second stream to an old log while the offset counter
        # restarts would leave an unrestorable directory; refuse instead.
        print(
            f"error: {args.out}/ already holds a checkpoint or event log; "
            "pick a fresh --out directory",
            file=sys.stderr,
        )
        return 2
    session = _make_session(
        args, engine=args.engine, micro_batch_size=args.batch_size, live_preload=False
    )
    log = scenario_event_stream(
        session.scenario,
        update_fraction=args.update,
        withdraw_fraction=args.withdraw,
        seed=args.seed,
    )
    ordered = log.replay_order()
    cut = len(ordered) - int(len(ordered) * args.tail)
    manager.record(ordered)
    session.replay(ordered[:cut])
    checkpoint = manager.checkpoint(session)
    segments = len(manager.log.segments())
    print(f"event log             : {len(ordered)} events in {segments} segments")
    print(f"checkpoint offset     : {checkpoint.log_offset} (tail of {len(ordered) - cut} events)")
    print(
        f"snapshot              : {checkpoint.manifest['offer_count']} offers + "
        f"{checkpoint.manifest['aggregate_count']} aggregates ({args.engine} engine)"
    )
    if args.compact:
        dropped = manager.compact()
        print(f"compaction            : dropped {dropped} dead events from closed segments")
    print(f"wrote checkpoint to {args.out}/")
    session.close()
    return 0


def _command_restore(args: argparse.Namespace) -> int:
    from collections import Counter

    from repro.errors import ReproError
    from repro.live.engine import canonical_form
    from repro.store import RecoveryManager

    manager = RecoveryManager(args.source)
    try:
        session = manager.restore(engine=args.engine)
    except ReproError as exc:
        # Not just StoreError: a corrupt or mismatched log surfaces as e.g. a
        # LiveEngineError from the tail replay, and deserves the same exit.
        print(f"restore failed: {exc}", file=sys.stderr)
        return 1
    report = manager.last_restore
    print(report.describe())
    if not args.smoke:
        session.close()
        return 0
    # The recovery contract, end to end: the restored engine must equal the
    # batch pipeline over the surviving offers AND a cold replay from seq 0.
    try:
        manager.verify(session)
    except ReproError as exc:
        print(f"restore smoke FAILED: {exc}", file=sys.stderr)
        session.close()
        return 1
    # Cold replay over the *checkpoint's* scenario and aggregation parameters
    # (the restored session carries both), not whatever --prosumers/--seed
    # happen to be — a different grouping grid would falsely fail the smoke.
    cold = FlexSession(
        session.scenario,
        engine=session.engine_name,
        parameters=session.parameters,
        live_preload=False,
    )
    cold.replay(list(manager.log.events()))
    cold.engine.refresh()
    session.engine.refresh()
    restored_state = Counter(
        canonical_form(o) for o in session.engine.engine.aggregated_offers()
    )
    cold_state = Counter(canonical_form(o) for o in cold.engine.engine.aggregated_offers())
    ok = restored_state == cold_state
    print(
        f"{'ok ' if ok else 'FAIL'} restore ≡ cold replay "
        f"({sum(restored_state.values())} outputs vs {sum(cold_state.values())})"
    )
    cold.close()
    session.close()
    if not ok:
        print("restore smoke FAILED: snapshot+tail diverges from cold replay", file=sys.stderr)
        return 1
    print("restore smoke OK: snapshot + log tail ≡ full replay ≡ batch rebuild")
    return 0


#: Stages the latency table must cover; ``--smoke`` fails when any recorded
#: nothing.  Kernel dispatch is one logical stage served by two histograms
#: (numpy/scalar) — at least one of the pair must have data.
_REQUIRED_STAGE_GROUPS: tuple[tuple[str, ...], ...] = (
    # live commits and sharded logical commits record under different names;
    # the async engine's worker commits land in all three.
    (
        "repro.live.commit.seconds",
        "repro.live.sharded.commit.seconds",
        "repro.live.async.worker.commit.seconds",
    ),
    ("repro.aggregation.kernel.numpy.seconds", "repro.aggregation.kernel.scalar.seconds"),
    ("repro.session.query.seconds",),
    # The versioned read path: snapshot publication on commit, cache-fronted
    # snapshot reads (every default-consistency query records a lookup).
    ("repro.readpath.snapshot.build.seconds",),
    ("repro.readpath.cache.lookup.seconds",),
    ("repro.store.checkpoint.seconds",),
    ("repro.store.restore.seconds",),
)


def _print_stage_table(registry) -> list[str]:
    """Print one row per latency histogram with data; returns the names printed."""
    from repro.obs.metrics import Histogram

    header = (
        f"{'stage':<34} {'count':>7} {'mean ms':>10} {'p50 ms':>10} "
        f"{'p95 ms':>10} {'max ms':>10}"
    )
    print(header)
    print("-" * len(header))
    printed = []
    for instrument in registry.instruments():
        if not isinstance(instrument, Histogram):
            continue
        if not instrument.name.endswith(".seconds") or not instrument.count:
            continue
        stage = instrument.name.removeprefix("repro.").removesuffix(".seconds")
        print(
            f"{stage:<34} {instrument.count:>7} "
            f"{instrument.mean * 1000:>10.3f} "
            f"{instrument.quantile(0.5) * 1000:>10.3f} "
            f"{instrument.quantile(0.95) * 1000:>10.3f} "
            f"{instrument.snapshot()['max'] * 1000:>10.3f}"
        )
        printed.append(instrument.name)
    return printed


def _command_stats(args: argparse.Namespace) -> int:
    """Replay + query + checkpoint/restore under observability, then report.

    One run exercises every instrumented stage: the event stream drives the
    commit and kernel paths, two queries the select/aggregate split, and a
    scratch-directory checkpoint/compact/restore cycle the durability path.
    The table is computed from the same registry ``--export-*`` dumps, so
    what the operator reads is exactly what a scrape would ship.
    """
    import tempfile

    from repro import obs
    from repro.live.replay import scenario_event_stream
    from repro.store import RecoveryManager

    if args.batch_size < 0:
        print("error: --batch-size must be >= 0", file=sys.stderr)
        return 2
    if args.sample < 0:
        print("error: --sample must be >= 0 (0 = record every trace)", file=sys.stderr)
        return 2
    obs.reset()
    obs.enable()
    if args.sample:
        obs.set_sampler(obs.Sampler(default_rate=args.sample))
        print(f"trace sampling        : head-sampling roots 1-in-{args.sample}")
    try:
        if args.calibrate:
            from repro.aggregation import kernel

            threshold = kernel.calibrate()
            print(f"kernel calibration    : numpy dispatch at >= {threshold} profile pieces")
        session = _make_session(
            args, engine=args.engine, micro_batch_size=args.batch_size, live_preload=False
        )
        log = scenario_event_stream(
            session.scenario,
            update_fraction=args.update,
            withdraw_fraction=args.withdraw,
            seed=args.seed,
        )
        ordered = log.replay_order()
        report = session.replay(ordered)
        print(report.describe())
        # The query path: one filtered read, one full aggregation.
        session.offers().where(state="assigned").fetch()
        session.offers().aggregate().fetch()
        # The durability path, in a scratch directory.
        with tempfile.TemporaryDirectory(prefix="flexviz-stats-") as scratch:
            manager = RecoveryManager(scratch)
            manager.record(ordered)
            manager.checkpoint(session)
            manager.compact()
            restored = manager.restore(engine=args.engine, scenario=session.scenario)
            restored.close()
        session.close()
        print()
        registry = obs.get_registry()
        recorded = set(_print_stage_table(registry))
        summary = session.summary()
        print()
        print(
            f"backlog               : pending={summary.get('pending_events', 0)} "
            f"dirty_cells={summary.get('dirty_cells', 0)} "
            f"dirty_shards={summary.get('dirty_shards', '-')} "
            f"queue_depth={summary.get('queue_depth', '-')}"
        )
        print(f"tracing spans         : {len(obs.get_tracer().finished())} finished")
        if args.export_jsonl:
            lines = obs.export_jsonl(args.export_jsonl, registry, obs.get_tracer())
            print(f"wrote {lines} JSONL records to {args.export_jsonl}")
        if args.export_prom:
            from pathlib import Path

            Path(args.export_prom).write_text(
                obs.to_prometheus_text(registry), encoding="utf-8"
            )
            print(f"wrote Prometheus text format to {args.export_prom}")
        if args.flame:
            events = obs.export_chrome_trace(args.flame, obs.get_tracer().finished())
            print(f"wrote {events} span events (Chrome trace_event JSON) to {args.flame}")
        if args.folded:
            stacks = obs.write_folded(args.folded, obs.get_tracer().finished())
            print(f"wrote {stacks} folded stack lines to {args.folded}")
        if args.smoke:
            missing = [
                " or ".join(group)
                for group in _REQUIRED_STAGE_GROUPS
                if not any(name in recorded for name in group)
            ]
            if missing:
                print(
                    "stats smoke FAILED: no observations for: " + "; ".join(missing),
                    file=sys.stderr,
                )
                return 1
            print("stats smoke OK: every required stage recorded observations")
        return 0
    finally:
        obs.disable()


def _command_trace(args: argparse.Namespace) -> int:
    """Print one trace (or a summary of all of them) from a JSONL dump.

    Works offline on the artifact ``flexviz stats --export-jsonl`` wrote —
    the tracer in *this* process has recorded nothing.
    """
    from repro import obs

    try:
        _, spans = obs.read_jsonl_export(args.input)
    except OSError as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    summaries = obs.trace_summaries(spans)
    if args.list:
        if not summaries:
            print(f"no traces in {args.input}")
            return 0
        header = f"{'trace':>8} {'spans':>6} {'duration ms':>12}  root"
        print(header)
        print("-" * len(header))
        for row in summaries:
            print(
                f"{row['trace_id']:>8} {row['spans']:>6} "
                f"{row['duration'] * 1000:>12.3f}  {row['root']}"
            )
        return 0
    if args.trace_id == "latest":
        if not summaries:
            print(f"error: no traces in {args.input}", file=sys.stderr)
            return 1
        trace_id = summaries[-1]["trace_id"]
    else:
        try:
            trace_id = int(args.trace_id)
        except ValueError:
            print(
                f"error: trace_id must be an integer or 'latest', got {args.trace_id!r}",
                file=sys.stderr,
            )
            return 2
    if not any(row["trace_id"] == trace_id for row in summaries):
        print(f"error: trace {trace_id} is not in {args.input}", file=sys.stderr)
        return 1
    print(obs.format_trace(spans, trace_id))
    return 0


def _command_views(args: argparse.Namespace) -> int:
    if not args.materialized:
        for name in _VIEW_NAMES:
            print(name)
        print(f"{len(_VIEW_NAMES)} registered views")
        return 0
    from repro.live.replay import scenario_event_stream
    from repro.session.spec import QuerySpec

    session = _make_session(args, engine=args.engine, live_preload=False)
    regions = sorted({offer.region for offer in session.scenario.flex_offers})
    specs = {
        "all-aggregated": QuerySpec.build(parameters=session.parameters),
        "assigned": QuerySpec.build(state="assigned"),
    }
    if regions:
        specs[f"region-{regions[0].lower()}"] = QuerySpec.build(region=regions[0])
    for name, spec in specs.items():
        session.materialize(spec, name=name)
    log = scenario_event_stream(
        session.scenario,
        update_fraction=args.update,
        withdraw_fraction=args.withdraw,
        seed=args.seed,
    )
    report = session.replay(log)
    session.engine.refresh()
    print(report.describe())
    header = (
        f"{'view':<18} {'version':>8} {'rows':>6} {'deltas':>7} "
        f"{'skipped':>8} {'stale':>6} {'maint ms':>9}  fresh"
    )
    print(header)
    print("-" * len(header))
    stale = False
    for view in session.materialized_views:
        stats = view.stats()
        fresh = session.query(view.spec).matches(view.result)
        stale = stale or not fresh or stats["staleness"] != 0
        print(
            f"{stats['name']:<18} {stats['version']:>8} {stats['rows']:>6} "
            f"{stats['deltas_applied']:>7} {stats['commits_skipped']:>8} "
            f"{stats['staleness']:>6} {stats['maintenance_seconds'] * 1000:>9.3f}  "
            f"{'ok' if fresh else 'DIVERGED'}"
        )
    session.close()
    if stale:
        print(
            "materialized views diverged from a from-scratch query", file=sys.stderr
        )
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    commands = {
        "figures": _command_figures,
        "render": _command_render,
        "warehouse": _command_warehouse,
        "plan": _command_plan,
        "mdx": _command_mdx,
        "session": _command_session,
        "live": _command_live,
        "checkpoint": _command_checkpoint,
        "restore": _command_restore,
        "stats": _command_stats,
        "trace": _command_trace,
        "views": _command_views,
    }
    return commands[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Application layer: figure regeneration and the ``flexviz`` command-line interface."""

from repro.app.figures import (
    FIGURE_BUILDERS,
    FigureArtifact,
    default_scenario,
    generate_all_figures,
)

__all__ = ["FigureArtifact", "FIGURE_BUILDERS", "default_scenario", "generate_all_figures"]

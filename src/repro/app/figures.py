"""Regeneration of every figure of the paper.

One function per figure (1-11) builds the corresponding view from a synthetic
scenario and returns a :class:`FigureArtifact` bundling the renderable object,
the SVG string and the headline numbers the figure conveys.  The benchmark
harness, the CLI (``flexviz figures``) and the examples all call these
functions, so paper figures are regenerated from a single code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.aggregation.parameters import AggregationParameters
from repro.datagen.scenarios import Scenario, ScenarioConfig, generate_scenario
from repro.enterprise.planning import PlanningReport, run_planning_cycle
from repro.flexoffer.model import count_by_state
from repro.render.svg import render_svg
from repro.scheduling.greedy import GreedyScheduler
from repro.views.aggregation_panel import AggregationPanel, AggregationPanelView
from repro.views.basic import BasicView, BasicViewOptions
from repro.views.dashboard import BalanceView, BalanceViewOptions, DashboardOptions, DashboardView
from repro.views.framework import VisualAnalysisFramework
from repro.views.map_view import MapView
from repro.views.pivot_view import PivotView, PivotViewOptions
from repro.views.profile_view import ProfileView, ProfileViewOptions
from repro.views.schematic import SchematicView
from repro.views.selection import SelectionRectangle
from repro.views.tooltip import describe, overlay

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.session.facade import FlexSession


@dataclass
class FigureArtifact:
    """One regenerated figure: its id, SVG document and headline numbers."""

    figure_id: str
    title: str
    svg: str
    summary: dict[str, Any] = field(default_factory=dict)

    def save(self, directory: str) -> str:
        """Write the SVG under ``directory`` and return the file path."""
        from pathlib import Path

        target = Path(directory)
        target.mkdir(parents=True, exist_ok=True)
        path = target / f"{self.figure_id}.svg"
        path.write_text(self.svg, encoding="utf-8")
        return str(path)


def default_scenario(seed: int = 42) -> Scenario:
    """The scenario the figure functions use unless one is supplied."""
    return generate_scenario(ScenarioConfig(prosumer_count=200, seed=seed))


def default_session(seed: int = 42) -> "FlexSession":
    """A batch session over :func:`default_scenario` (the preferred entry)."""
    from repro.session.facade import FlexSession

    return FlexSession(default_scenario(seed))


def _scenario_of(source) -> Scenario:
    """Normalize a figure source — ``Scenario``, ``FlexSession`` or ``None``.

    Every figure builder accepts either shape, so callers that have moved to
    the session facade pass it straight through while pre-session code keeps
    passing scenarios.
    """
    if source is None:
        return default_scenario()
    scenario = getattr(source, "scenario", None)
    return scenario if isinstance(scenario, Scenario) else source


# ----------------------------------------------------------------------
# Figure 1 — loads before and after balancing
# ----------------------------------------------------------------------
def figure_1(scenario: Scenario | None = None) -> tuple[FigureArtifact, FigureArtifact]:
    """Figure 1: RES vs demand before and after the MIRABEL system balances."""
    scenario = _scenario_of(scenario)
    plan: PlanningReport = run_planning_cycle(scenario, scheduler=GreedyScheduler())
    before_view = BalanceView(
        scenario.res_production,
        scenario.base_demand,
        plan.unplanned_load,
        scenario.grid,
        options=BalanceViewOptions(caption="before balancing"),
    )
    after_view = BalanceView(
        scenario.res_production,
        scenario.base_demand,
        plan.planned_load,
        scenario.grid,
        options=BalanceViewOptions(caption="after balancing"),
    )
    before = FigureArtifact(
        figure_id="figure_01_before",
        title="Loads before MIRABEL balancing",
        svg=before_view.to_svg(),
        summary={
            "res_energy_kwh": scenario.res_production.total(),
            "base_demand_kwh": scenario.base_demand.total(),
            "flexible_energy_kwh": plan.unplanned_load.total(),
            "overlap_with_res_surplus_kwh": before_view.overlap_energy(),
        },
    )
    after = FigureArtifact(
        figure_id="figure_01_after",
        title="Loads after MIRABEL balancing",
        svg=after_view.to_svg(),
        summary={
            "flexible_energy_kwh": plan.planned_load.total(),
            "overlap_with_res_surplus_kwh": after_view.overlap_energy(),
            "absorption_ratio": plan.balance_report.absorption_ratio,
            "imbalance_energy_kwh": plan.balance_report.imbalance_energy,
        },
    )
    return before, after


# ----------------------------------------------------------------------
# Figure 2 — structural elements of a flex-offer
# ----------------------------------------------------------------------
def figure_2(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 2: one EV-charging flex-offer with all structural elements visible."""
    scenario = _scenario_of(scenario)
    candidates = [
        offer
        for offer in scenario.flex_offers
        if offer.schedule is not None and offer.time_flexibility_slots >= 4
    ]
    offer = max(candidates, key=lambda o: o.max_total_energy) if candidates else scenario.flex_offers[0]
    view = ProfileView([offer], scenario.grid, options=ProfileViewOptions(height=320, max_lane_height=220))
    scene = view.scene()
    # Add the deadline markers so acceptance/assignment times are visible, as in Figure 2.
    area = view.options.plot_area
    scale = view._time_scale(area)
    scene.add(overlay(offer, scale, area))
    details = describe(offer, scenario.grid)
    return FigureArtifact(
        figure_id="figure_02_structure",
        title="Structural elements of a flex-offer",
        svg=render_svg(scene),
        summary={
            "offer_id": offer.id,
            "profile_slices": len(offer.profile),
            "time_flexibility_slots": offer.time_flexibility_slots,
            "min_total_energy": offer.min_total_energy,
            "max_total_energy": offer.max_total_energy,
            "scheduled_energy": offer.scheduled_energy,
            "detail_lines": details.lines(),
        },
    )


# ----------------------------------------------------------------------
# Figure 3 — map view
# ----------------------------------------------------------------------
def figure_3(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 3: flex-offer counts per region on the map view."""
    scenario = _scenario_of(scenario)
    view = MapView(scenario.flex_offers, scenario.geography, scenario.grid)
    return FigureArtifact(
        figure_id="figure_03_map",
        title="Map view of flex-offers",
        svg=view.to_svg(),
        summary={"counts_per_region": view.state_counts()},
    )


# ----------------------------------------------------------------------
# Figure 4 — schematic (topology) view
# ----------------------------------------------------------------------
def figure_4(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 4: grid topology with accepted/assigned/rejected pies per node."""
    scenario = _scenario_of(scenario)
    view = SchematicView(scenario.flex_offers, scenario.topology, scenario.grid)
    return FigureArtifact(
        figure_id="figure_04_schematic",
        title="Schematic view of flex-offers",
        svg=view.to_svg(),
        summary={"state_shares": view.state_shares()},
    )


# ----------------------------------------------------------------------
# Figure 5 — pivot view
# ----------------------------------------------------------------------
def figure_5(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 5: prosumer-type swimlanes over time with the MDX query window."""
    scenario = _scenario_of(scenario)
    view = PivotView(
        scenario.flex_offers,
        scenario.grid,
        options=PivotViewOptions(
            row_dimension="Prosumer",
            row_level="prosumer_type",
            column_dimension="Time",
            column_level="hour",
            measure="scheduled_energy",
        ),
    )
    table = view.pivot_table()
    mdx_result = view.run_mdx(view.default_mdx())
    return FigureArtifact(
        figure_id="figure_05_pivot",
        title="Pivot view of flex-offers",
        svg=view.to_svg(),
        summary={
            "row_members": table.row_members,
            "column_count": len(table.column_members),
            "row_totals": dict(zip(table.row_members, table.row_totals("scheduled_energy"))),
            "mdx_rows": mdx_result.row_members,
        },
    )


# ----------------------------------------------------------------------
# Figure 6 — dashboard view
# ----------------------------------------------------------------------
def figure_6(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 6: status pie plus stacked per-interval counts for one afternoon window."""
    scenario = _scenario_of(scenario)
    origin = scenario.grid.origin
    start = origin.replace(hour=12, minute=0)
    end = origin.replace(hour=13, minute=15)
    view = DashboardView(
        scenario.flex_offers,
        scenario.grid,
        options=DashboardOptions(interval_start=start, interval_end=end, bucket_slots=1),
    )
    return FigureArtifact(
        figure_id="figure_06_dashboard",
        title="Dashboard view of flex-offers",
        svg=view.to_svg(),
        summary={
            "interval": [start.isoformat(), end.isoformat()],
            "state_totals": view.state_totals(),
            "state_percentages": view.state_percentages(),
        },
    )


# ----------------------------------------------------------------------
# Figure 7 — loading tab
# ----------------------------------------------------------------------
def figure_7(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 7: the loading workflow — choose a legal entity and a time interval."""
    # The framework accepts a FlexSession directly, so an already-open session
    # (CLI, examples) is reused instead of reloading the warehouse.
    source = scenario if scenario is not None else default_scenario()
    framework = VisualAnalysisFramework(source)
    scenario = _scenario_of(source)
    entities = framework.loading.available_entities()
    # Pick the first legal entity that actually issued flex-offers.
    entity_id = next(
        (entity["entity_id"] for entity in entities if scenario.offers_of_prosumer(entity["entity_id"])),
        entities[0]["entity_id"],
    )
    start = scenario.grid.origin
    end = scenario.grid.to_datetime(scenario.config.horizon_slots)
    tab = framework.open_tab_for_entity(entity_id, start, end)
    summary = framework.loading.warehouse_summary()
    view = tab.view()
    return FigureArtifact(
        figure_id="figure_07_loading",
        title="Flex-offer loading workflow",
        svg=view.to_svg(),
        summary={
            "warehouse_rows": summary["row_counts"],
            "entity_id": entity_id,
            "loaded_offers": len(tab.offers),
            "open_tabs": framework.tab_titles,
        },
    )


# ----------------------------------------------------------------------
# Figure 8 — basic view
# ----------------------------------------------------------------------
def figure_8(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 8: the basic view with a rectangle selection drawn on top."""
    scenario = _scenario_of(scenario)
    options = BasicViewOptions()
    selection_rectangle = SelectionRectangle(
        x1=options.plot_area.left + 120,
        y1=options.plot_area.top + 60,
        x2=options.plot_area.left + 360,
        y2=options.plot_area.top + 220,
    )
    view = BasicView(scenario.flex_offers, scenario.grid, options=options, selection_rectangle=selection_rectangle)
    left, top, right, bottom = selection_rectangle.normalized()
    selected = view.offers_in_rectangle(left, top, right, bottom)
    aggregated_count = sum(1 for offer in scenario.flex_offers if offer.is_aggregate)
    return FigureArtifact(
        figure_id="figure_08_basic",
        title="Basic view of flex-offers",
        svg=view.to_svg(),
        summary={
            "offer_count": len(scenario.flex_offers),
            "lane_count": max(view.lane_assignment.values()) + 1 if view.lane_assignment else 0,
            "aggregated_offers": aggregated_count,
            "selected_by_rectangle": len(selected),
            "states": {state.value: count for state, count in count_by_state(scenario.flex_offers).items()},
        },
    )


# ----------------------------------------------------------------------
# Figure 9 — profile view
# ----------------------------------------------------------------------
def figure_9(scenario: Scenario | None = None, offer_limit: int = 40) -> FigureArtifact:
    """Figure 9: the profile view over a smaller flex-offer set."""
    scenario = _scenario_of(scenario)
    offers = scenario.flex_offers[:offer_limit]
    view = ProfileView(offers, scenario.grid)
    return FigureArtifact(
        figure_id="figure_09_profile",
        title="Profile view of flex-offers",
        svg=view.to_svg(),
        summary={
            "offer_count": len(offers),
            "shared_energy_scale_max": view.max_slice_energy(),
        },
    )


# ----------------------------------------------------------------------
# Figure 10 — on-the-fly information
# ----------------------------------------------------------------------
def figure_10(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 10: hover details with time markers and aggregation provenance."""
    scenario = _scenario_of(scenario)
    panel = AggregationPanel(scenario.flex_offers, scenario.grid, AggregationParameters(est_tolerance_slots=6, time_flexibility_tolerance_slots=6))
    aggregated = panel.aggregated_offers()
    aggregate_offer = next((offer for offer in aggregated if offer.is_aggregate), aggregated[0])
    # Show the hovered aggregate together with the raw offers so the red dashed
    # provenance links can point at its constituents' lanes (as in Figure 10).
    view = BasicView(list(scenario.flex_offers) + [aggregate_offer], scenario.grid)
    scene = view.scene()
    area = view.options.plot_area
    scale = view._time_scale(area)
    scene.add(
        overlay(
            aggregate_offer,
            scale,
            area,
            lane_assignment=view.lane_assignment,
            lane_height=view._lane_height(area),
        )
    )
    details = describe(aggregate_offer, scenario.grid)
    return FigureArtifact(
        figure_id="figure_10_tooltip",
        title="On-the-fly information about flex-offers",
        svg=render_svg(scene),
        summary={
            "hovered_offer": aggregate_offer.id,
            "is_aggregate": aggregate_offer.is_aggregate,
            "constituents": list(aggregate_offer.constituent_ids),
            "detail_lines": details.lines(),
        },
    )


# ----------------------------------------------------------------------
# Figure 11 — aggregation tools
# ----------------------------------------------------------------------
def figure_11(scenario: Scenario | None = None) -> FigureArtifact:
    """Figure 11: the aggregation tools panel with before/after views and metrics."""
    scenario = _scenario_of(scenario)
    panel = AggregationPanel(scenario.flex_offers, scenario.grid, AggregationParameters(est_tolerance_slots=8, time_flexibility_tolerance_slots=8))
    view = AggregationPanelView(panel)
    metrics = panel.metrics()
    sweep = panel.sweep(est_tolerances=[2, 4, 8, 16], time_flexibility_tolerances=[4])
    return FigureArtifact(
        figure_id="figure_11_aggregation",
        title="Aggregation tools of flex-offers",
        svg=view.to_svg(),
        summary={
            "original_count": metrics.original_count,
            "aggregated_count": metrics.aggregated_count,
            "reduction_ratio": metrics.reduction_ratio,
            "time_flexibility_loss_ratio": metrics.time_flexibility_loss_ratio,
            "sweep": [
                {
                    "est_tolerance": point.parameters.est_tolerance_slots,
                    "reduction_ratio": point.metrics.reduction_ratio,
                }
                for point in sweep
            ],
        },
    )


#: All figure builders keyed by their identifier, in paper order.
FIGURE_BUILDERS: dict[str, Callable[..., object]] = {
    "figure_01": figure_1,
    "figure_02": figure_2,
    "figure_03": figure_3,
    "figure_04": figure_4,
    "figure_05": figure_5,
    "figure_06": figure_6,
    "figure_07": figure_7,
    "figure_08": figure_8,
    "figure_09": figure_9,
    "figure_10": figure_10,
    "figure_11": figure_11,
}


def generate_all_figures(scenario: Scenario | None = None, directory: str | None = None) -> list[FigureArtifact]:
    """Regenerate every figure; optionally save all SVGs under ``directory``.

    ``scenario`` may be a :class:`Scenario` or a ``FlexSession``; passing the
    session lets figure 7 reuse its already-loaded warehouse.
    """
    source = scenario if scenario is not None else default_scenario()
    artifacts: list[FigureArtifact] = []
    for builder in FIGURE_BUILDERS.values():
        result = builder(source)
        if isinstance(result, tuple):
            artifacts.extend(result)
        else:
            artifacts.append(result)  # type: ignore[arg-type]
    if directory is not None:
        for artifact in artifacts:
            artifact.save(directory)
    return artifacts

"""Flamegraph-friendly views of the finished-span log.

Two renderings of the same :class:`~repro.obs.trace.SpanRecord` list:

* :func:`folded_stacks` / :func:`to_folded_text` / :func:`write_folded` —
  the collapsed-stack text format (``root;child;grandchild <value>``, one
  line per unique stack) that ``flamegraph.pl`` and speedscope ingest.
  Values are **self-time microseconds**: a span's duration minus its
  same-thread children's — so, per stack root, the lines of its subtree sum
  back to exactly the root's duration, and hot leaves stand out instead of
  being double-counted under every ancestor.  Stacks are built along
  *same-thread* parent links: a span whose parent lives on another thread
  (an attached fan-out drain, an async worker commit) roots its own stack —
  concurrent children overlap in wall time, so folding them under the
  cross-thread parent would fabricate self-time.
* :func:`format_trace` / :func:`trace_summaries` — the ``flexviz trace``
  tree printer: one logical operation's spans as an indented tree linked by
  ids (same-named siblings stay distinct), cross-thread children marked with
  the thread that ran them.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable, Sequence, TextIO

from repro.obs.trace import SpanRecord


def _by_id(spans: Sequence[SpanRecord]) -> dict[int, SpanRecord]:
    """Index spans by id (records from pre-id dumps carry 0 and are skipped)."""
    return {span.span_id: span for span in spans if span.span_id}


def _same_thread_parent(
    span: SpanRecord, index: dict[int, SpanRecord]
) -> SpanRecord | None:
    """The parent record when it exists *and* ran on the span's own thread."""
    if not span.parent_id:
        return None
    parent = index.get(span.parent_id)
    if parent is None or parent.thread != span.thread:
        return None
    return parent


def folded_stacks(spans: Sequence[SpanRecord]) -> dict[str, float]:
    """Collapse spans into ``stack path -> self-time microseconds``.

    Identical stacks across traces accumulate (that is what makes the
    flamegraph: width = total time in that stack), and per stack root the
    subtree's values sum to the root's duration — self-time is duration
    minus same-thread children, clamping nothing.
    """
    index = _by_id(spans)
    child_seconds: dict[int, float] = {}
    for span in spans:
        parent = _same_thread_parent(span, index)
        if parent is not None:
            child_seconds[parent.span_id] = (
                child_seconds.get(parent.span_id, 0.0) + span.duration
            )
    stacks: dict[str, float] = {}
    for span in spans:
        frames = [span.name]
        cursor = span
        while True:
            parent = _same_thread_parent(cursor, index)
            if parent is None:
                break
            cursor = parent
            frames.append(cursor.name)
        path = ";".join(reversed(frames))
        self_seconds = span.duration - child_seconds.get(span.span_id, 0.0)
        stacks[path] = stacks.get(path, 0.0) + self_seconds * 1e6
    return stacks


def to_folded_text(spans: Sequence[SpanRecord]) -> str:
    """The collapsed-stack text: one ``path value`` line per unique stack."""
    stacks = folded_stacks(spans)
    return "".join(f"{path} {value:.3f}\n" for path, value in sorted(stacks.items()))


def write_folded(target: str | Path | TextIO, spans: Sequence[SpanRecord]) -> int:
    """Write the collapsed-stack text; returns the number of stack lines."""
    text = to_folded_text(spans)
    if hasattr(target, "write"):
        target.write(text)
    else:
        Path(target).write_text(text, encoding="utf-8")
    return len(text.splitlines())


def trace_summaries(spans: Iterable[SpanRecord]) -> list[dict[str, Any]]:
    """One row per distinct trace: id, root stage, span count, total duration.

    Ordered oldest trace first (by the root's start).  Spans from pre-id
    dumps (``trace_id == 0``) are ignored — they belong to no trace.
    """
    traces: dict[int, dict[str, Any]] = {}
    for span in spans:
        if not span.trace_id:
            continue
        row = traces.setdefault(
            span.trace_id,
            {"trace_id": span.trace_id, "root": "", "started": span.started, "spans": 0, "duration": 0.0},
        )
        row["spans"] += 1
        if span.parent_id is None:
            row["root"] = span.name
            row["started"] = span.started
            row["duration"] = span.duration
    return sorted(traces.values(), key=lambda row: row["started"])


def format_trace(spans: Sequence[SpanRecord], trace_id: int) -> str:
    """Render one trace's span tree, linked by ids, as indented text.

    Children sort by start time; a child that ran on a different thread than
    its parent is marked with its thread name (the handed-off fan-out and
    worker spans).  Spans whose parent never finished (or fell out of the
    ring) are shown as additional roots rather than dropped.
    """
    members = [span for span in spans if span.trace_id == trace_id]
    if not members:
        return f"trace {trace_id}: no spans (wrong id, or evicted from the ring)"
    index = _by_id(members)
    children: dict[int | None, list[SpanRecord]] = {}
    for span in members:
        key = span.parent_id if span.parent_id in index else None
        children.setdefault(key, []).append(span)
    for group in children.values():
        group.sort(key=lambda span: span.started)
    lines = [f"trace {trace_id} ({len(members)} spans)"]

    def render(span: SpanRecord, indent: int, parent: SpanRecord | None) -> None:
        marker = f"  [{span.thread}]" if parent is not None and parent.thread != span.thread else ""
        lines.append(
            f"{'  ' * indent}{span.name}  {span.duration * 1000:.3f} ms"
            f"  (span {span.span_id}){marker}"
        )
        for child in children.get(span.span_id, ()):
            render(child, indent + 1, span)

    for root in children.get(None, ()):
        render(root, 1, None)
    return "\n".join(lines)

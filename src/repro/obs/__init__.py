"""``repro.obs`` — metrics, tracing spans and exporters for the whole engine.

The system's hot paths (commit drains, kernel dispatch, query execution,
checkpoint/restore) are instrumented against **one process-global registry**
and **one tracer**, both disabled by default:

>>> from repro import obs
>>> obs.enable()
>>> session.replay()                      # commits now record latencies
>>> obs.get_registry().snapshot()         # every counter/gauge/histogram
>>> obs.get_tracer().finished(limit=10)   # the most recent spans
>>> print(obs.to_prometheus_text(obs.get_registry()))

Disabled mode costs a single attribute check per instrumented site — the
engines produce bit-identical output either way (differential-tested), and
the CI bench trajectory gates the enabled-mode commit-throughput overhead.

``flexviz stats`` is the operator's entry point: it replays a scenario with
observability on and prints the per-stage latency table.
"""

from __future__ import annotations

from repro.obs.export import (
    export_chrome_trace,
    export_jsonl,
    prometheus_name,
    read_jsonl_export,
    to_chrome_trace,
    to_prometheus_text,
)
from repro.obs.flame import (
    folded_stacks,
    format_trace,
    to_folded_text,
    trace_summaries,
    write_folded,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import Sampler, SpanRecord, TraceContext, Tracer

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "Sampler",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "disable",
    "enable",
    "enabled",
    "export_chrome_trace",
    "export_jsonl",
    "folded_stacks",
    "format_trace",
    "get_registry",
    "get_tracer",
    "prometheus_name",
    "read_jsonl_export",
    "reset",
    "set_sampler",
    "to_chrome_trace",
    "to_folded_text",
    "to_prometheus_text",
    "trace_summaries",
    "write_folded",
]

#: The process-global default registry every instrumented module binds to.
_REGISTRY = MetricsRegistry(enabled=False)

#: The process-global tracer, sharing the registry's enabled switch.
_TRACER = Tracer(_REGISTRY)


def get_registry() -> MetricsRegistry:
    """The process-global metrics registry."""
    return _REGISTRY


def get_tracer() -> Tracer:
    """The process-global tracer (shares the registry's enabled switch)."""
    return _TRACER


def enable() -> None:
    """Flip observability on for the whole process."""
    _REGISTRY.enable()


def disable() -> None:
    """Flip observability off (instruments keep their recorded state)."""
    _REGISTRY.disable()


def enabled() -> bool:
    """Whether the process-global registry is currently recording."""
    return _REGISTRY.enabled


def set_sampler(sampler: "Sampler | None") -> None:
    """Install (or remove, with ``None``) the head-based trace sampler.

    Sampling gates only the span log: a sampled-out operation still records
    every histogram and counter, so metrics stay exact while always-on
    tracing stays cheap.
    """
    _TRACER.set_sampler(sampler)


def reset() -> None:
    """Zero every instrument, drop the finished-span log and the sampler."""
    _REGISTRY.reset()
    _TRACER.set_sampler(None)
    _TRACER.clear()

"""Distributed-style tracing: nested timing spans with ids, handoff, sampling.

A span is one timed region of one thread — ``with tracer.span("live.commit"):``
— and spans nest: a span opened while another is running becomes its child.
Every span carries a process-unique ``span_id``, its parent's ``parent_id``
and the ``trace_id`` of the logical operation it belongs to (the root span
mints the trace id), so the finished-span log reconstructs the call tree of a
commit (drain → per-shard fan-out → kernel) *by ids*, not by names — two
sibling drains of the same stage stay distinguishable.

Crossing threads is **explicit**: the thread that owns an operation captures
a :class:`TraceContext` (``tracer.context()``) and the worker thread installs
it (``with tracer.attach(context):``) before opening its spans — the sharded
fan-out pool and the async commit worker hand their ingesting commit's
context over this way instead of relying on thread-local state that was never
theirs.  Each thread still keeps its own span stack, and finished spans land
in one bounded ring buffer shared by the process.

Always-on production tracing goes through a head-based :class:`Sampler`: the
decision is taken once, at the root span, per root-stage name (trace 1-in-N
commits but every checkpoint), and children inherit it — a sampled-out
operation opens no spans at all.  Sampling gates *only* the span log; the
metrics registry is untouched, so histograms and counters stay exact.

The fast path mirrors the metrics registry: while the registry is disabled
:meth:`Tracer.span` hands back a shared per-thread no-op context manager —
one attribute check, one thread-local load, no clock read.  The no-op still
counts its nesting depth, which is what makes enable/disable flips safe for
in-flight stacks: a child opened after ``obs.enable()`` inside an operation
whose root was a no-op is suppressed instead of being recorded as an orphan
root of a trace that never existed.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry

#: How many finished spans the ring buffer retains (oldest evicted first).
SPAN_BUFFER = 4096

#: One process-global id source for span and trace ids.  ``next()`` on an
#: ``itertools.count`` is atomic under the GIL — no lock on the hot path —
#: and a shared sequence keeps every id unique across both kinds.
_IDS = itertools.count(1)


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as plain data."""

    #: Dotted stage name (``live.commit.drain``).
    name: str
    #: ``perf_counter`` timestamp the span opened at (process-relative).
    started: float
    #: Wall-clock seconds the span covered.
    duration: float
    #: Nesting depth within its trace (0 = trace root), across threads.
    depth: int
    #: Name of the enclosing span (``None`` for roots) — kept for backward
    #: compatibility with pre-id exports; :attr:`parent_id` is authoritative.
    parent: str | None
    #: Name of the thread the span ran on.
    thread: str
    #: Process-unique id of this span (0 only in records from pre-id dumps).
    span_id: int = 0
    #: Id of the enclosing span — ``None`` for trace roots.  Unlike
    #: :attr:`parent`, unambiguous between same-named siblings and valid
    #: across threads (a handed-off context keeps the link).
    parent_id: int | None = None
    #: Id of the logical operation this span belongs to, minted at the root.
    trace_id: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "started": self.started,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanRecord":
        # The id fields default when absent so dumps written before spans
        # carried ids still parse (their trees fall back to name linkage).
        parent_id = payload.get("parent_id")
        return cls(
            name=str(payload["name"]),
            started=float(payload["started"]),
            duration=float(payload["duration"]),
            depth=int(payload["depth"]),
            parent=payload["parent"],
            thread=str(payload["thread"]),
            span_id=int(payload.get("span_id", 0)),
            parent_id=None if parent_id is None else int(parent_id),
            trace_id=int(payload.get("trace_id", 0)),
        )


@dataclass(frozen=True)
class TraceContext:
    """A portable capture of "the current span" for explicit cross-thread handoff.

    The owning thread calls :meth:`Tracer.context` while its span is open and
    ships the frozen result to the worker (a closure argument, a queue slot —
    anything explicit); the worker wraps its work in
    ``with tracer.attach(context):`` and every span it opens becomes a child
    of the captured span, in the captured trace.  ``recording=False`` marks a
    context captured inside a sampled-out operation: attaching it mutes the
    worker's spans too, so one head-based decision covers every thread the
    operation fans out to.
    """

    trace_id: int
    span_id: int
    name: str
    depth: int
    recording: bool = True


#: The context handed out inside muted (sampled-out or disabled-rooted)
#: regions — shared, so capturing under mute never allocates.
_NOT_RECORDING = TraceContext(trace_id=0, span_id=0, name="", depth=0, recording=False)


class Sampler:
    """Head-based sampling rates per root stage.

    ``rate`` semantics: ``N`` keeps 1 in N traces rooted at that stage
    (deterministic — the first occurrence always records, then every Nth),
    ``1`` keeps everything, ``0`` keeps nothing.  ``rates`` overrides the
    default per root-stage name, so production can trace 1-in-N commits while
    keeping every checkpoint::

        Sampler(default_rate=16, rates={"store.checkpoint": 1, "store.restore": 1})

    Only *roots* consult the sampler; children (local or attached from
    another thread) inherit the root's decision.  Counters are per stage and
    process-global, reset by :meth:`reset` (``obs.reset()`` drops the whole
    sampler).
    """

    def __init__(self, default_rate: int = 1, rates: dict[str, int] | None = None) -> None:
        for label, rate in {"default_rate": default_rate, **(rates or {})}.items():
            if not isinstance(rate, int) or rate < 0:
                raise ObservabilityError(
                    f"sampling rate must be an integer >= 0, got {label}={rate!r}"
                )
        self.default_rate = default_rate
        self.rates = dict(rates or {})
        self._counters: dict[str, Any] = {}

    def rate_for(self, name: str) -> int:
        """The keep-1-in-N rate applied to traces rooted at ``name``."""
        return self.rates.get(name, self.default_rate)

    def sample(self, name: str) -> bool:
        """Decide whether the next trace rooted at ``name`` records."""
        rate = self.rate_for(name)
        if rate == 1:
            return True
        if rate <= 0:
            return False
        counter = self._counters.get(name)
        if counter is None:
            # setdefault keeps concurrent first calls on one shared counter.
            counter = self._counters.setdefault(name, itertools.count())
        return next(counter) % rate == 0

    def reset(self) -> None:
        """Restart every per-stage counter (the next trace of each records)."""
        self._counters.clear()


class _NoopSpan:
    """A fully transparent context manager (``attach(None)``)."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP = _NoopSpan()


class _MutedSpan:
    """The per-thread no-op span: records nothing but counts its nesting.

    Handed out while the registry is disabled, inside a sampled-out trace,
    or under an attached non-recording context.  The depth counter is what
    keeps transitions safe: as long as any muted frame is open on a thread,
    newly opened spans stay muted — flipping ``obs.enable()`` mid-operation
    cannot graft orphan children onto a parent that never recorded.
    """

    __slots__ = ("_state",)

    def __init__(self, state: "_ThreadState") -> None:
        self._state = state

    def __enter__(self) -> "_MutedSpan":
        self._state.muted += 1
        return self

    def __exit__(self, *exc_info) -> None:
        if self._state.muted:
            self._state.muted -= 1
        return None


class _ThreadState:
    """One thread's tracing state: its span stack and mute depth."""

    __slots__ = ("stack", "muted", "mute")

    def __init__(self) -> None:
        self.stack: list[Any] = []
        self.muted = 0
        #: The shared muted span of this thread (spans nest LIFO per thread,
        #: so one reentrant instance serves every muted frame).
        self.mute = _MutedSpan(self)


class _Span:
    """One live span; records itself into the tracer on exit.

    Exceptions propagate untouched — the span still closes (its duration then
    covers the raising region), so a failing commit leaves a trace instead of
    a hole.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "parent_id", "parent_name", "depth", "_started")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: int,
        parent_id: int | None,
        parent_name: str | None,
        depth: int,
    ) -> None:
        self._tracer = tracer
        self.name = name
        self.trace_id = trace_id
        self.span_id = next(_IDS)
        self.parent_id = parent_id
        self.parent_name = parent_name
        self.depth = depth
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._started
        self._tracer._pop(self, duration)
        return None


class _AttachedFrame:
    """A remote parent installed on this thread by :meth:`Tracer.attach`.

    Sits on the thread's stack like a span — children read its ids — but
    records nothing itself: the real span lives on the thread that captured
    the context.
    """

    __slots__ = ("_tracer", "name", "trace_id", "span_id", "depth")

    def __init__(self, tracer: "Tracer", context: TraceContext) -> None:
        self._tracer = tracer
        self.name = context.name
        self.trace_id = context.trace_id
        self.span_id = context.span_id
        self.depth = context.depth

    def __enter__(self) -> "_AttachedFrame":
        self._tracer._state().stack.append(self)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = self._tracer._state().stack
        if stack and stack[-1] is self:
            stack.pop()
        return None


class Tracer:
    """Hands out spans and keeps the bounded finished-span log."""

    def __init__(self, registry: MetricsRegistry, buffer: int = SPAN_BUFFER) -> None:
        self._registry = registry
        self._local = threading.local()
        self._sampler: Sampler | None = None
        # deque appends are atomic under the GIL; maxlen gives the ring.
        self._finished: deque[SpanRecord] = deque(maxlen=buffer)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def sampler(self) -> Sampler | None:
        """The installed head-based sampler (``None`` = record every trace)."""
        return self._sampler

    def set_sampler(self, sampler: Sampler | None) -> None:
        """Install (or, with ``None``, remove) the head-based sampler."""
        if sampler is not None and not isinstance(sampler, Sampler):
            raise ObservabilityError(
                f"expected a Sampler or None, got {type(sampler).__name__}"
            )
        self._sampler = sampler

    # ------------------------------------------------------------------
    # The span factory (the hot entry point)
    # ------------------------------------------------------------------
    def span(self, name: str) -> "_Span | _MutedSpan":
        """A context manager timing ``name``; muted while disabled/unsampled."""
        state = self._state()
        if not self._registry.enabled or state.muted:
            return state.mute
        stack = state.stack
        if stack:
            parent = stack[-1]
            return _Span(
                self,
                name,
                trace_id=parent.trace_id,
                parent_id=parent.span_id,
                parent_name=parent.name,
                depth=parent.depth + 1,
            )
        # A root span: the head-based sampling decision happens here, once
        # per trace; a sampled-out root mutes everything underneath it.
        if self._sampler is not None and not self._sampler.sample(name):
            return state.mute
        return _Span(self, name, trace_id=next(_IDS), parent_id=None, parent_name=None, depth=0)

    # ------------------------------------------------------------------
    # Explicit cross-thread handoff
    # ------------------------------------------------------------------
    def context(self) -> TraceContext | None:
        """Capture the current span for handoff to another thread.

        ``None`` when tracing is off or no span is open (workers then run
        untraced); a non-recording context inside a sampled-out trace, so
        the mute decision travels with the handoff.
        """
        if not self._registry.enabled:
            return None
        state = self._state()
        if state.muted:
            return _NOT_RECORDING
        stack = state.stack
        if not stack:
            return None
        top = stack[-1]
        return TraceContext(
            trace_id=top.trace_id, span_id=top.span_id, name=top.name, depth=top.depth
        )

    def attach(self, context: TraceContext | None):
        """A context manager installing a captured context on *this* thread.

        Spans opened inside become children of the captured span — same
        trace id, correct parent id — no matter which thread runs them.
        ``attach(None)`` is fully transparent (spans behave as if no handoff
        happened), so call sites can pass an optional context through
        unconditionally.
        """
        if context is None:
            return _NOOP
        state = self._state()
        if not context.recording:
            return state.mute
        return _AttachedFrame(self, context)

    # ------------------------------------------------------------------
    # Stack bookkeeping (called by _Span)
    # ------------------------------------------------------------------
    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            state = self._local.state = _ThreadState()
        return state

    def _push(self, span: "_Span") -> None:
        self._state().stack.append(span)

    def _pop(self, span: "_Span", duration: float) -> None:
        stack = self._state().stack
        # The span being closed is the top of its thread's stack by
        # construction (context managers unwind LIFO even on exceptions).
        if stack and stack[-1] is span:
            stack.pop()
        self._finished.append(
            SpanRecord(
                name=span.name,
                started=span._started,
                duration=duration,
                depth=span.depth,
                parent=span.parent_name,
                thread=threading.current_thread().name,
                span_id=span.span_id,
                parent_id=span.parent_id,
                trace_id=span.trace_id,
            )
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def finished(
        self,
        limit: int | None = None,
        name: str | None = None,
        trace_id: int | None = None,
    ) -> list[SpanRecord]:
        """The most recent finished spans, oldest first.

        ``name`` filters to one stage, ``trace_id`` to one logical operation;
        ``limit`` keeps the newest N after filtering.
        """
        spans = list(self._finished)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        if trace_id is not None:
            spans = [span for span in spans if span.trace_id == trace_id]
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def clear(self) -> None:
        """Drop the finished-span log and restart the sampler's counters."""
        self._finished.clear()
        if self._sampler is not None:
            self._sampler.reset()

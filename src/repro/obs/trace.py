"""Lightweight nested timing spans.

A span is one timed region of one thread — ``with tracer.span("live.commit"):``
— and spans nest: a span opened while another is running records that parent
and its depth, so the finished-span log reconstructs the call tree of a
commit (drain → per-shard fan-out → kernel) without any global interpreter
hooks.  Each thread keeps its own stack (the async worker traces its commits
independently of the ingesting thread), and finished spans land in one
bounded ring buffer shared by the process.

The fast path mirrors the metrics registry: while the registry is disabled
:meth:`Tracer.span` hands back a shared no-op context manager — one attribute
check, no allocation, no clock read.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.obs.metrics import MetricsRegistry

#: How many finished spans the ring buffer retains (oldest evicted first).
SPAN_BUFFER = 4096


@dataclass(frozen=True)
class SpanRecord:
    """One finished span, as plain data."""

    #: Dotted stage name (``live.commit.drain``).
    name: str
    #: ``perf_counter`` timestamp the span opened at (process-relative).
    started: float
    #: Wall-clock seconds the span covered.
    duration: float
    #: Nesting depth on its thread (0 = root span).
    depth: int
    #: Name of the enclosing span (``None`` for roots).
    parent: str | None
    #: Name of the thread the span ran on.
    thread: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "started": self.started,
            "duration": self.duration,
            "depth": self.depth,
            "parent": self.parent,
            "thread": self.thread,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "SpanRecord":
        return cls(
            name=str(payload["name"]),
            started=float(payload["started"]),
            duration=float(payload["duration"]),
            depth=int(payload["depth"]),
            parent=payload["parent"],
            thread=str(payload["thread"]),
        )


class _NoopSpan:
    """The shared disabled-mode context manager — enter/exit do nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP = _NoopSpan()


class _Span:
    """One live span; records itself into the tracer on exit.

    Exceptions propagate untouched — the span still closes (its duration then
    covers the raising region), so a failing commit leaves a trace instead of
    a hole.
    """

    __slots__ = ("_tracer", "name", "_started")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._push(self)
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        duration = time.perf_counter() - self._started
        self._tracer._pop(self, duration)
        return None


class Tracer:
    """Hands out spans and keeps the bounded finished-span log."""

    def __init__(self, registry: MetricsRegistry, buffer: int = SPAN_BUFFER) -> None:
        self._registry = registry
        self._local = threading.local()
        # deque appends are atomic under the GIL; maxlen gives the ring.
        self._finished: deque[SpanRecord] = deque(maxlen=buffer)

    # ------------------------------------------------------------------
    # The span factory (the hot entry point)
    # ------------------------------------------------------------------
    def span(self, name: str) -> "_Span | _NoopSpan":
        """A context manager timing ``name``; no-op while disabled."""
        if not self._registry.enabled:
            return _NOOP
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Stack bookkeeping (called by _Span)
    # ------------------------------------------------------------------
    def _stack(self) -> list["_Span"]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: "_Span") -> None:
        self._stack().append(span)

    def _pop(self, span: "_Span", duration: float) -> None:
        stack = self._stack()
        # The span being closed is the top of its thread's stack by
        # construction (context managers unwind LIFO even on exceptions).
        stack.pop()
        parent = stack[-1].name if stack else None
        self._finished.append(
            SpanRecord(
                name=span.name,
                started=span._started,
                duration=duration,
                depth=len(stack),
                parent=parent,
                thread=threading.current_thread().name,
            )
        )

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def finished(self, limit: int | None = None, name: str | None = None) -> list[SpanRecord]:
        """The most recent finished spans, oldest first.

        ``name`` filters to one stage; ``limit`` keeps the newest N after
        filtering.
        """
        spans = list(self._finished)
        if name is not None:
            spans = [span for span in spans if span.name == name]
        if limit is not None:
            spans = spans[-limit:]
        return spans

    def clear(self) -> None:
        self._finished.clear()

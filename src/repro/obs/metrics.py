"""The dependency-free metrics registry: counters, gauges, histograms.

Every instrument belongs to one :class:`MetricsRegistry` and is identified by
a dotted name (``repro.live.commit.seconds``).  Instruments are created on
demand and cached by name, so any module can say
``get_registry().counter("x")`` and always receive the same object — the hot
paths bind instruments once at import time and never pay the lookup again.

**Disabled is the default, and disabled is cheap.**  A registry starts with
``enabled = False``; every instrument mutator early-returns on that single
attribute check, and instrumented code that needs a clock guards its
``perf_counter()`` calls behind the same check.  Enabling observability is a
runtime switch (:meth:`MetricsRegistry.enable`), not a rebuild — the
instrumented-vs-uninstrumented differential test in ``tests/test_obs.py``
proves the switch never changes engine outputs, and the benchmark trajectory
gate (``benchmarks/check_bench_trajectory.py``) bounds the enabled-mode
overhead on the commit path.

Histograms use **fixed bucket boundaries** (Prometheus ``le`` semantics: a
bucket counts observations ``<=`` its upper bound), so two processes with the
same boundaries can be aggregated by addition, and the text exporter
(:mod:`repro.obs.export`) emits them without re-binning.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Iterable, Sequence

from repro.errors import ObservabilityError

#: Default histogram boundaries for sub-second latencies, in seconds.  Spans
#: five decades (100 ns .. 10 s) with a 1-2.5-5 ladder — commit drains sit in
#: the middle, kernel calls near the bottom, restores near the top.
LATENCY_BUCKETS: tuple[float, ...] = (
    1e-6,
    2.5e-6,
    5e-6,
    1e-5,
    2.5e-5,
    5e-5,
    1e-4,
    2.5e-4,
    5e-4,
    1e-3,
    2.5e-3,
    5e-3,
    1e-2,
    2.5e-2,
    5e-2,
    1e-1,
    2.5e-1,
    5e-1,
    1.0,
    2.5,
    5.0,
    10.0,
)

#: Default boundaries for event/row counts (batch sizes, rows scanned).
COUNT_BUCKETS: tuple[float, ...] = (
    1.0,
    2.0,
    5.0,
    10.0,
    25.0,
    50.0,
    100.0,
    250.0,
    500.0,
    1000.0,
    2500.0,
    5000.0,
    10000.0,
)


def escape_label_value(value: str) -> str:
    """Escape one label value per the Prometheus text exposition format.

    Backslash, double quote and newline are the three characters the format
    reserves inside a quoted label value; each maps to a distinct two-byte
    sequence, so the escaping is injective and :func:`instrument_key` stays
    round-trippable (two different raw values can never collide on one key,
    and the JSONL export re-derives identical keys from the raw labels).
    """
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def render_labels(labels: dict[str, str] | None) -> str:
    """Labels as the canonical ``k="v"`` list (sorted; empty string for none).

    Values are escaped for the Prometheus text format — a value carrying a
    quote, backslash or newline must not break the exposition line (or the
    instrument key derived from it).
    """
    if not labels:
        return ""
    return ",".join(
        f'{key}="{escape_label_value(value)}"' for key, value in sorted(labels.items())
    )


def instrument_key(name: str, labels: dict[str, str] | None) -> str:
    """The registry cache key: the name, plus ``{k="v"}`` when labeled.

    Labeled instruments are independent series sharing a base name —
    ``repro.live.sharded.fanout.seconds{shard="3"}`` next to the unlabeled
    total — exactly how the Prometheus exporter will emit them.
    """
    rendered = render_labels(labels)
    return f"{name}{{{rendered}}}" if rendered else name


class Counter:
    """A monotonically increasing total (events applied, chunks skipped...)."""

    __slots__ = ("name", "help", "labels", "_registry", "_lock", "_value")

    kind = "counter"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._registry = registry
        self._lock = threading.Lock()
        self._value = 0.0

    @property
    def key(self) -> str:
        return instrument_key(self.name, self.labels)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ObservabilityError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "value": self._value,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Gauge:
    """A point-in-time level (queue depth, dirty shards, segment count).

    ``track`` is the hot-path setter (no-op while disabled); ``set`` always
    writes — read-side refreshes like :meth:`FlexSession.summary` use it so
    backlog figures stay truthful even with observability off.
    """

    __slots__ = ("name", "help", "labels", "_registry", "_value")

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        labels: dict[str, str] | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self._registry = registry
        self._value = 0.0

    @property
    def key(self) -> str:
        return instrument_key(self.name, self.labels)

    def track(self, value: float) -> None:
        """Hot-path set: one attribute check, then a plain store."""
        if not self._registry.enabled:
            return
        self._value = float(value)

    def set(self, value: float) -> None:
        """Unconditional set (read-side refresh paths)."""
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        self._value = 0.0

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "value": self._value,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


class Histogram:
    """A distribution over fixed bucket boundaries (Prometheus ``le`` style).

    ``boundaries`` are the finite upper bounds, strictly increasing; an
    implicit ``+Inf`` bucket catches the overflow.  ``observe`` is a bisect
    plus three adds, under one lock — cheap enough for per-commit (not
    per-event) call sites.  ``min``/``max``/``sum``/``count`` ride along so
    the ``flexviz stats`` table can print exact means and true extremes next
    to the bucketed p95 estimate.
    """

    __slots__ = (
        "name",
        "help",
        "labels",
        "boundaries",
        "_registry",
        "_lock",
        "_bucket_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
    )

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        registry: "MetricsRegistry",
        boundaries: Sequence[float] = LATENCY_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in boundaries)
        if not bounds:
            raise ObservabilityError(f"histogram {name} needs at least one boundary")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ObservabilityError(
                f"histogram {name} boundaries must be strictly increasing"
            )
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else {}
        self.boundaries = bounds
        self._registry = registry
        self._lock = threading.Lock()
        # One slot per finite boundary plus the +Inf overflow slot.
        self._bucket_counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation (no-op while the registry is disabled)."""
        if not self._registry.enabled:
            return
        value = float(value)
        index = bisect_left(self.boundaries, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[int]:
        """Per-bucket (non-cumulative) counts; the last entry is ``+Inf``."""
        return list(self._bucket_counts)

    def cumulative_counts(self) -> list[int]:
        """Cumulative counts per boundary (Prometheus ``le`` semantics)."""
        total = 0
        cumulative = []
        for count in self._bucket_counts:
            total += count
            cumulative.append(total)
        return cumulative

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the buckets (linear within a bucket).

        Exact at the recorded extremes: quantiles that land in the first or
        the overflow bucket are clamped to the true ``min``/``max``.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError("quantile must be within [0, 1]")
        if not self._count:
            return 0.0
        rank = q * self._count
        total = 0
        for index, count in enumerate(self._bucket_counts):
            previous = total
            total += count
            if total >= rank and count:
                lower = self.boundaries[index - 1] if index > 0 else self._min
                upper = (
                    self.boundaries[index]
                    if index < len(self.boundaries)
                    else self._max
                )
                lower = max(lower, self._min)
                upper = min(upper, self._max)
                if upper <= lower:
                    return upper
                fraction = (rank - previous) / count
                return lower + (upper - lower) * fraction
        return self._max

    def reset(self) -> None:
        with self._lock:
            self._bucket_counts = [0] * (len(self.boundaries) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = float("-inf")

    @property
    def key(self) -> str:
        return instrument_key(self.name, self.labels)

    def snapshot(self) -> dict[str, Any]:
        snap: dict[str, Any] = {
            "name": self.name,
            "kind": self.kind,
            "help": self.help,
            "boundaries": list(self.boundaries),
            "bucket_counts": self.bucket_counts(),
            "count": self._count,
            "sum": self._sum,
            "min": self._min if self._count else 0.0,
            "max": self._max if self._count else 0.0,
        }
        if self.labels:
            snap["labels"] = dict(self.labels)
        return snap


Instrument = Counter | Gauge | Histogram


class MetricsRegistry:
    """Creates, caches and snapshots instruments; owns the enabled switch.

    Instruments are singletons per (registry, name): asking twice returns the
    same object, asking with a different kind (or different histogram
    boundaries) raises — silent redefinition would split a series in two.
    """

    def __init__(self, enabled: bool = False) -> None:
        #: THE fast-path switch — instrument mutators and instrumented code
        #: check this one attribute and go around the whole layer when False.
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, Instrument] = {}

    # ------------------------------------------------------------------
    # The switch
    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # ------------------------------------------------------------------
    # Instrument factories (idempotent by name)
    # ------------------------------------------------------------------
    def _get(self, key: str, kind: type, factory) -> Instrument:
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ObservabilityError(
                        f"metric {key!r} is a {existing.kind}, not a {kind.kind}"
                    )
                return existing
            instrument = factory()
            self._instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Counter:
        key = instrument_key(name, labels)
        return self._get(key, Counter, lambda: Counter(name, help, self, labels))

    def gauge(
        self, name: str, help: str = "", labels: dict[str, str] | None = None
    ) -> Gauge:
        key = instrument_key(name, labels)
        return self._get(key, Gauge, lambda: Gauge(name, help, self, labels))

    def histogram(
        self,
        name: str,
        help: str = "",
        boundaries: Sequence[float] = LATENCY_BUCKETS,
        labels: dict[str, str] | None = None,
    ) -> Histogram:
        key = instrument_key(name, labels)
        instrument = self._get(
            key, Histogram, lambda: Histogram(name, help, self, boundaries, labels)
        )
        if tuple(float(b) for b in boundaries) != instrument.boundaries:
            raise ObservabilityError(
                f"histogram {name!r} already exists with different boundaries"
            )
        return instrument

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def get(
        self, name: str, labels: dict[str, str] | None = None
    ) -> Instrument | None:
        """The instrument registered under ``name`` (``None`` when absent)."""
        return self._instruments.get(instrument_key(name, labels))

    def instruments(self) -> list[Instrument]:
        """Every registered instrument, sorted by key (labeled series after
        their unlabeled base name)."""
        with self._lock:
            return [self._instruments[key] for key in sorted(self._instruments)]

    def snapshot(self) -> dict[str, dict[str, Any]]:
        """Every instrument's state as plain data, keyed by instrument key
        (the name, suffixed with ``{k="v"}`` for labeled series)."""
        return {
            instrument.key: instrument.snapshot() for instrument in self.instruments()
        }

    def reset(self, names: Iterable[str] | None = None) -> None:
        """Zero the named instruments (all of them by default).

        Instruments stay registered — the module-level bindings the hot paths
        hold keep pointing at live objects.
        """
        targets = (
            self.instruments()
            if names is None
            else [i for n in names if (i := self._instruments.get(n)) is not None]
        )
        for instrument in targets:
            instrument.reset()

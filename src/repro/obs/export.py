"""Exporters: JSONL dumps, Prometheus text and Chrome ``trace_event`` JSON.

Three consumers, three formats:

* :func:`export_jsonl` / :func:`read_jsonl_export` — a lossless dump of every
  instrument and finished span, one JSON document per line.  This is the
  faithful, timestamped operation history the black-box checkers in PAPERS.md
  consume (and what the round-trip test parses back).
* :func:`to_prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` / samples; histograms as cumulative ``_bucket``
  series with ``le`` labels plus ``_sum``/``_count``), so a scrape endpoint
  or a textfile collector can ship the same registry without translation.
* :func:`to_chrome_trace` / :func:`export_chrome_trace` — the Chrome
  ``trace_event`` JSON object format (complete ``"ph": "X"`` events with
  microsecond ``ts``/``dur``, one ``tid`` lane per engine thread), loadable
  directly in Perfetto or ``chrome://tracing`` — the timeline twin of the
  folded-stack flamegraph in :mod:`repro.obs.flame`.
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Iterable, Sequence, TextIO

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    instrument_key,
    render_labels,
)
from repro.obs.trace import SpanRecord, Tracer


def _format_value(value: float) -> str:
    """One sample value in Prometheus text form (ints stay unscientific)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_name(name: str) -> str:
    """A dotted metric name as a Prometheus identifier (dots → underscores)."""
    sanitized = "".join(
        ch if ch.isalnum() or ch in ("_", ":") else "_" for ch in name
    )
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def to_prometheus_text(registry: MetricsRegistry) -> str:
    """The whole registry in the Prometheus text exposition format.

    Labeled series (``{shard="3"}``) share their base name's ``# HELP`` /
    ``# TYPE`` header with the unlabeled series, as Prometheus expects —
    labels appear only on the sample lines (merged with ``le`` for
    histogram buckets).
    """
    lines: list[str] = []
    described: set[str] = set()
    for instrument in registry.instruments():
        name = prometheus_name(instrument.name)
        if name not in described:
            if instrument.help:
                lines.append(f"# HELP {name} {instrument.help}")
            lines.append(f"# TYPE {name} {instrument.kind}")
            described.add(name)
        label_body = render_labels(instrument.labels)
        suffix = f"{{{label_body}}}" if label_body else ""
        if isinstance(instrument, (Counter, Gauge)):
            lines.append(f"{name}{suffix} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            prefix = f"{label_body}," if label_body else ""
            cumulative = instrument.cumulative_counts()
            for boundary, count in zip(instrument.boundaries, cumulative):
                lines.append(
                    f'{name}_bucket{{{prefix}le="{_format_value(boundary)}"}} {count}'
                )
            lines.append(f'{name}_bucket{{{prefix}le="+Inf"}} {instrument.count}')
            lines.append(f"{name}_sum{suffix} {_format_value(instrument.sum)}")
            lines.append(f"{name}_count{suffix} {instrument.count}")
    return "\n".join(lines) + "\n" if lines else ""


def export_jsonl(
    target: str | Path | TextIO,
    registry: MetricsRegistry,
    tracer: Tracer | None = None,
) -> int:
    """Dump every instrument (and finished span) as JSON lines.

    Each line is ``{"record": "metric"|"span", ...}`` (``kind`` inside a
    metric line keeps the instrument kind); metric lines carry the
    instrument's full snapshot (histograms include boundaries and per-bucket
    counts, so the dump is lossless).  Returns the number of lines written.
    """
    lines = [
        {"record": "metric", **instrument.snapshot()}
        for instrument in registry.instruments()
    ]
    if tracer is not None:
        lines.extend({"record": "span", **span.to_dict()} for span in tracer.finished())
    payload = "".join(json.dumps(line, sort_keys=True) + "\n" for line in lines)
    if hasattr(target, "write"):
        target.write(payload)
    else:
        Path(target).write_text(payload, encoding="utf-8")
    return len(lines)


def to_chrome_trace(spans: Sequence[SpanRecord], pid: int | None = None) -> dict[str, Any]:
    """The finished spans as a Chrome ``trace_event`` JSON object.

    Every span becomes one *complete* event (``"ph": "X"``) with the fields
    the Trace Event format requires — ``name``, ``ph``, integer ``pid`` and
    ``tid``, microsecond ``ts`` and ``dur`` — plus the trace/span/parent ids
    under ``args`` so the Perfetto UI can slice one logical operation out of
    the timeline.  Thread names map to stable integer ``tid`` lanes (first
    appearance order) and are declared through ``thread_name`` metadata
    events, the way Chrome's own traces do it.
    """
    process = os.getpid() if pid is None else pid
    lanes: dict[str, int] = {}
    events: list[dict[str, Any]] = []
    for span in spans:
        tid = lanes.setdefault(span.thread, len(lanes) + 1)
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.started * 1e6,
                "dur": span.duration * 1e6,
                "pid": process,
                "tid": tid,
                "args": {
                    "trace_id": span.trace_id,
                    "span_id": span.span_id,
                    "parent_id": span.parent_id,
                    "depth": span.depth,
                },
            }
        )
    for thread, tid in lanes.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": process,
                "tid": tid,
                "args": {"name": thread},
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(
    target: str | Path | TextIO, spans: Sequence[SpanRecord], pid: int | None = None
) -> int:
    """Write the Chrome trace JSON; returns the number of span events."""
    document = to_chrome_trace(spans, pid=pid)
    payload = json.dumps(document, sort_keys=True)
    if hasattr(target, "write"):
        target.write(payload)
    else:
        Path(target).write_text(payload, encoding="utf-8")
    return sum(1 for event in document["traceEvents"] if event["ph"] == "X")


def read_jsonl_export(
    source: str | Path | Iterable[str],
) -> tuple[dict[str, dict[str, Any]], list[SpanRecord]]:
    """Parse a :func:`export_jsonl` dump back into ``(metrics, spans)``.

    ``metrics`` maps instrument name → its snapshot dict; ``spans`` are the
    finished spans in write (oldest-first) order.  The exporter round-trip
    test feeds one into the other and compares against the live registry.
    """
    if isinstance(source, (str, Path)):
        text = Path(source).read_text(encoding="utf-8")
        rows = text.splitlines()
    else:
        rows = [str(row) for row in source]
    metrics: dict[str, dict[str, Any]] = {}
    spans: list[SpanRecord] = []
    for row in rows:
        row = row.strip()
        if not row:
            continue
        payload = json.loads(row)
        record = payload.pop("record", None)
        if record == "metric":
            metrics[instrument_key(payload["name"], payload.get("labels"))] = payload
        elif record == "span":
            spans.append(SpanRecord.from_dict(payload))
    return metrics, spans

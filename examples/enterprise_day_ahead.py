"""Day-ahead planning at a MIRABEL enterprise (the Section 2 workflow).

Run with::

    python examples/enterprise_day_ahead.py

The script runs one full planning cycle — collect flex-offers, aggregate,
forecast demand, schedule against the RES surplus, trade the residual on the
spot market, disaggregate the assignments and settle the deviations — and
renders the before/after balancing charts of Figure 1 plus the dashboard of
Figure 6.
"""

from __future__ import annotations

from pathlib import Path

from repro.datagen import ScenarioConfig, generate_scenario
from repro.enterprise import PlanningConfig, run_planning_cycle
from repro.forecasting import SeasonalNaiveForecast
from repro.scheduling import (
    BalancingProblem,
    EarliestStartScheduler,
    GreedyScheduler,
    StochasticConfig,
    StochasticScheduler,
    compare,
    make_target,
    report,
)
from repro.views import BalanceView, BalanceViewOptions, DashboardView

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    scenario = generate_scenario(ScenarioConfig(prosumer_count=250, seed=11))
    print(f"scenario: {len(scenario.prosumers)} prosumers, {len(scenario.flex_offers)} flex-offers")

    # Compare schedulers on the raw balancing problem first.
    target = make_target(scenario.res_production, scenario.base_demand)
    problem = BalancingProblem(offers=list(scenario.flex_offers), target=target, grid=scenario.grid)
    reports = [
        report(EarliestStartScheduler().schedule(problem)),
        report(GreedyScheduler().schedule(problem)),
        report(StochasticScheduler(StochasticConfig(iterations=800)).schedule(problem)),
    ]
    print("\nscheduler comparison (raw offers):")
    print(compare(reports))

    # Full enterprise cycle with aggregation and a demand forecast.
    plan = run_planning_cycle(
        scenario,
        scheduler=GreedyScheduler(),
        config=PlanningConfig(use_aggregation=True),
        demand_forecaster=SeasonalNaiveForecast(season_length=scenario.grid.slots_per_day()),
    )
    print("\nplanning cycle:")
    print(f"  scheduled objects     : {plan.pipeline.scheduled_object_count} "
          f"(from {len(plan.assigned_offers)} individual offers)")
    print(f"  RES absorption ratio  : {plan.balance_report.absorption_ratio:.2f}")
    print(f"  spot trades           : {len(plan.trades)} ({plan.trade_cost_eur:.2f} EUR)")
    print(f"  plan deviation        : {plan.settlement.total_absolute_deviation:.1f} kWh")
    print(f"  imbalance cost        : {plan.imbalance_cost_eur:.2f} EUR")

    # Figure 1: before and after balancing.
    before = BalanceView(
        scenario.res_production,
        scenario.base_demand,
        plan.unplanned_load,
        scenario.grid,
        options=BalanceViewOptions(caption="before balancing"),
    )
    after = BalanceView(
        scenario.res_production,
        scenario.base_demand,
        plan.planned_load,
        scenario.grid,
        options=BalanceViewOptions(caption="after balancing"),
    )
    before.save_svg(str(OUTPUT_DIR / "day_ahead_before.svg"))
    after.save_svg(str(OUTPUT_DIR / "day_ahead_after.svg"))
    print(
        f"\nflexible demand inside the RES surplus: "
        f"{before.overlap_energy():.1f} kWh before vs {after.overlap_energy():.1f} kWh after"
    )

    # Figure 6: the dashboard over the planned offers.
    dashboard = DashboardView(plan.all_offers, scenario.grid)
    dashboard.save_svg(str(OUTPUT_DIR / "day_ahead_dashboard.svg"))
    print("state mix:", dashboard.state_totals())
    print(f"figures written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()

"""A guided tour of the tracing layer: ids, cross-thread traces, sampling,
and the flamegraph exporters.

Run with::

    python examples/trace_tour.py

The script replays a scenario through the sharded engine with observability
on, shows that one commit is one id-linked trace even though its fan-out ran
on a thread pool, demonstrates the head-based sampler (traces thin out,
metrics stay exact), and writes the three trace artifacts — a JSONL dump, a
Chrome ``trace_event`` file for Perfetto/``chrome://tracing`` and a
folded-stack file for speedscope/``flamegraph.pl`` — into
``examples/output/``.
"""

from __future__ import annotations

from pathlib import Path

from repro import obs
from repro.datagen import ScenarioConfig, generate_scenario
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def replay_once(scenario) -> None:
    session = FlexSession(
        scenario, engine="sharded", micro_batch_size=64, live_preload=False
    )
    # Force the fan-out onto the shard pool even at this demo's small dirty
    # sets (production keeps the threshold at 64 dirty cells) — the point
    # here is watching one trace cross threads.
    session.engine.engine.parallel_min_cells = 1
    stream = scenario_event_stream(scenario, seed=9)
    session.replay(stream)
    session.offers().aggregate().fetch()
    session.close()


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    scenario = generate_scenario(ScenarioConfig(prosumer_count=120, seed=9))

    # ------------------------------------------------------------------
    # 1. One commit, one trace — across threads.
    # ------------------------------------------------------------------
    obs.reset()
    obs.enable()
    replay_once(scenario)
    tracer = obs.get_tracer()
    spans = tracer.finished()
    roots = [span for span in spans if span.name == "sharded.commit"]
    last = roots[-1]
    trace = tracer.finished(trace_id=last.trace_id)
    threads = {span.thread for span in trace}
    print(f"{len(spans)} spans finished; last sharded commit = trace {last.trace_id}")
    print(
        f"  that one trace holds {len(trace)} spans across "
        f"{len(threads)} threads: {sorted(threads)}"
    )
    print("  (the fan-out pool attached the commit's TraceContext explicitly —")
    print("   every per-shard drain carries the commit's trace_id and parent_id)")
    print()
    print(obs.format_trace(spans, last.trace_id))
    print()

    # ------------------------------------------------------------------
    # 2. The artifacts: JSONL, Chrome trace_event, folded stacks.
    # ------------------------------------------------------------------
    jsonl = OUTPUT_DIR / "trace_tour.jsonl"
    flame = OUTPUT_DIR / "trace_tour.trace.json"
    folded = OUTPUT_DIR / "trace_tour.folded"
    lines = obs.export_jsonl(jsonl, obs.get_registry(), tracer)
    events = obs.export_chrome_trace(flame, spans)
    stacks = obs.write_folded(folded, spans)
    print(f"wrote {lines} JSONL records to {jsonl}")
    print(f"wrote {events} trace events to {flame}  (open in https://ui.perfetto.dev)")
    print(f"wrote {stacks} folded stacks to {folded}  (open in https://speedscope.app)")
    print()

    # ------------------------------------------------------------------
    # 3. Head-based sampling: 1-in-4 commits traced, metrics still exact.
    # ------------------------------------------------------------------
    obs.reset()
    obs.enable()
    obs.set_sampler(obs.Sampler(default_rate=4, rates={"store.checkpoint": 1}))
    replay_once(scenario)
    sampled_roots = obs.get_tracer().finished(name="sharded.commit")
    commits = obs.get_registry().histogram(
        "repro.live.sharded.commit.seconds", "sharded logical commit latency"
    )
    print(
        f"sampled 1-in-4: {len(sampled_roots)} commit traces recorded, "
        f"but the histogram still counted every one of the {commits.count} commits"
    )
    print("  (sampling thins the span log only; checkpoints would keep rate 1)")
    obs.disable()
    obs.reset()


if __name__ == "__main__":
    main()

"""Interactive aggregation tuning (Figure 11) and its effect on the views.

Run with::

    python examples/aggregation_tuning.py

A large flex-offer set is aggregated under a sweep of grouping tolerances; the
script prints the reduction-versus-flexibility-loss trade-off, renders the
before/after basic views, verifies that disaggregation stays within every
constituent's flexibility, and shows how aggregation shrinks the object count
the scheduler has to handle.
"""

from __future__ import annotations

from pathlib import Path

from repro.aggregation import aggregate, disaggregate, evaluate
from repro.datagen import ScenarioConfig, generate_scenario
from repro.flexoffer import FlexOfferState
from repro.scheduling import GreedyScheduler, make_target, schedule_offers
from repro.views import AggregationPanel, AggregationPanelView

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    scenario = generate_scenario(ScenarioConfig(prosumer_count=400, seed=31))
    offers = scenario.flex_offers
    print(f"{len(offers)} flex-offers before aggregation")

    # Sweep the grouping tolerances (the paper's interactive parameter tuning).
    panel = AggregationPanel(offers, scenario.grid)
    print("\nEST tolerance sweep (time-flexibility tolerance fixed at 4 slots):")
    print(f"{'EST tol':>8} {'objects':>9} {'reduction':>10} {'flex loss':>10}")
    for point in panel.sweep(est_tolerances=[1, 2, 4, 8, 16, 32], time_flexibility_tolerances=[4]):
        metrics = point.metrics
        print(
            f"{point.parameters.est_tolerance_slots:>8} {metrics.aggregated_count:>9} "
            f"{metrics.reduction_ratio:>9.1f}x {100 * metrics.time_flexibility_loss_ratio:>9.0f}%"
        )

    # Pick a medium setting, render the Figure 11 panel.
    panel.tune(est_tolerance_slots=8, time_flexibility_tolerance_slots=8)
    AggregationPanelView(panel).save_svg(str(OUTPUT_DIR / "aggregation_panel.svg"))
    metrics = panel.metrics()
    print(
        f"\nchosen setting: {metrics.original_count} -> {metrics.aggregated_count} offers "
        f"({metrics.reduction_ratio:.1f}x reduction)"
    )

    # Schedule the aggregates and disaggregate back to individual assignments.
    plannable = [
        offer
        for offer in offers
        if offer.state in (FlexOfferState.OFFERED, FlexOfferState.ACCEPTED, FlexOfferState.ASSIGNED)
    ]
    target = make_target(scenario.res_production, scenario.base_demand)
    with_aggregation = schedule_offers(
        plannable, target, scenario.grid, GreedyScheduler(), aggregation=panel.parameters, use_aggregation=True
    )
    without_aggregation = schedule_offers(
        plannable, target, scenario.grid, GreedyScheduler(), use_aggregation=False
    )
    print("\nscheduling with vs without aggregation:")
    print(
        f"  with    : {with_aggregation.scheduled_object_count:>5} objects, "
        f"{with_aggregation.runtime_seconds:.3f}s end-to-end"
    )
    print(
        f"  without : {without_aggregation.scheduled_object_count:>5} objects, "
        f"{without_aggregation.runtime_seconds:.3f}s end-to-end"
    )

    # Verify disaggregation feasibility explicitly on one aggregate.
    result = aggregate(plannable, panel.parameters)
    sample = result.aggregates[0]
    scheduled_sample = sample.with_default_schedule()
    assignments = disaggregate(scheduled_sample, result.constituents_of(sample.id))
    assert all(assignment.schedule is not None for assignment in assignments)
    print(
        f"\ndisaggregated aggregate {sample.id} into {len(assignments)} feasible assignments "
        f"({sum(a.scheduled_energy for a in assignments):.1f} kWh total)"
    )
    quality = evaluate(plannable, result)
    print(f"retained time flexibility: {quality.retained_time_flexibility_slots} of "
          f"{quality.original_time_flexibility_slots} slots")
    print(f"figures written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()

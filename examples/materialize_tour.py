"""A guided tour of materialized views: standing queries maintained from
commit deltas instead of re-execution.

Run with::

    python examples/materialize_tour.py

The script registers two standing specs over a live session — a raw regional
selection and a full aggregation — then streams a mutated/withdrawn event
stream through the engine and shows that the views stay current without a
single re-query: per-commit maintenance touches only the dirty cells, commits
that never intersect a view cost it a version bump, and the result is
bit-identical to a from-scratch ``session.query(spec)`` at any point you
care to check.  The finale opens a dashboard tab over one view and shows
the identity-diff redraw: after a commit that touched one aggregate, the
tab's ``sync()`` reports exactly the changed offers, nothing else.
"""

from __future__ import annotations

from repro.datagen import ScenarioConfig, generate_scenario
from repro.live.replay import scenario_event_stream
from repro.session import FlexSession, QuerySpec
from repro.views import ViewKind, VisualAnalysisFramework


def main() -> None:
    scenario = generate_scenario(ScenarioConfig(prosumer_count=80, seed=21))
    session = FlexSession(scenario, engine="live", live_preload=False)

    # ------------------------------------------------------------------
    # 1. Register standing specs — they are maintained, not re-run.
    # ------------------------------------------------------------------
    capital = session.materialize(QuerySpec.build(region="Capital"), name="capital")
    dashboard = session.materialize(
        session.offers().aggregate(session.parameters), name="dashboard"
    )
    print(f"registered: {[v.name for v in session.materialized_views]}")

    # ------------------------------------------------------------------
    # 2. Stream mutations and withdrawals through the engine.
    # ------------------------------------------------------------------
    stream = scenario_event_stream(
        scenario, update_fraction=0.25, withdraw_fraction=0.1, seed=3
    )
    for index, event in enumerate(stream.replay_order(), start=1):
        session.ingest(event)
        if index % 20 == 0:  # commit in batches so the delta path does real work
            session.commit()
    session.commit()

    for view in (capital, dashboard):
        stats = view.stats()
        fresh = session.query(view.spec)
        assert fresh.matches(view.result), f"{view.name} diverged"
        print(
            f"  {view.name:>9}: v{view.version}, {len(view.result.offers)} offers, "
            f"{stats['deltas_applied']} deltas applied, "
            f"{stats['commits_skipped']} commits skipped, "
            f"maintenance {stats['maintenance_seconds'] * 1000:.2f} ms "
            f"(== from-scratch query: True)"
        )

    # The regional view skipped every commit that only touched other regions;
    # its version still tracks the read path's published snapshot.
    assert capital.version == session.engine.readpath.manager.latest_version
    assert capital.staleness == 0

    # ------------------------------------------------------------------
    # 3. The UI loop: a tab that redraws only what changed.
    # ------------------------------------------------------------------
    framework = VisualAnalysisFramework.from_session(session)
    tab = framework.open_materialized_tab(dashboard, kind=ViewKind.DASHBOARD)
    changed, removed = tab.sync()
    print(f"  tab {tab.title!r}: nothing to redraw yet -> {(len(changed), len(removed))}")

    victim = next(o for o in session.engine.offers() if not o.is_aggregate)
    from repro.live.events import OfferWithdrawn

    session.ingest(OfferWithdrawn(victim.assignment_deadline, victim.id))
    session.commit()
    changed, removed = tab.sync()
    print(
        f"  after withdrawing offer {victim.id}: redraw {len(changed)} changed "
        f"aggregate(s), {len(removed)} removed — the rest are identical objects"
    )

    # ------------------------------------------------------------------
    # 4. Views follow the session across engine swaps and replays.
    # ------------------------------------------------------------------
    session.use_engine("sharded")
    session.commit()
    assert session.query(dashboard.spec).matches(dashboard.result)
    print(f"  after use_engine('sharded'): dashboard still current at v{dashboard.version}")

    session.replay(update_fraction=0.2, withdraw_fraction=0.05, engine="live")
    session.commit()
    assert session.query(dashboard.spec).matches(dashboard.result)
    print(
        f"  after replay(engine='live'): re-based ({dashboard.refreshes} refresh) "
        f"and tracking again at v{dashboard.version}"
    )

    session.close()
    print("materialize tour complete")


if __name__ == "__main__":
    main()

"""OLAP exploration of flex-offer data (the Section 3 requirements in action).

Run with::

    python examples/olap_exploration.py

The script answers the paper's example analysis question — "retrieve counts of
accepted flex-offers in the west of Denmark for a period, grouped by cities and
energy type" — and then walks the pivot view through drill-down, an MDX query,
the map view and the schematic view.
"""

from __future__ import annotations

from pathlib import Path

from repro.datagen import ScenarioConfig, generate_scenario
from repro.olap import FlexOfferCube, GroupBy, MemberFilter, pivot
from repro.views import MapView, MapViewOptions, PivotView, PivotViewOptions, SchematicView

OUTPUT_DIR = Path(__file__).resolve().parent / "output"

#: Regions considered "west Denmark" in the synthetic geography.
WEST_DENMARK = ("North Jutland", "Central Jutland", "Southern Denmark")


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    scenario = generate_scenario(ScenarioConfig(prosumer_count=300, seed=23))
    cube = FlexOfferCube(scenario.flex_offers, scenario.grid, topology=scenario.topology)

    # The paper's example query: counts of accepted flex-offers in west Denmark,
    # grouped by city and energy type.
    cell_set = cube.aggregate(
        group_by=[GroupBy("Geography", "city"), GroupBy("EnergyType", "energy_type")],
        measures=["accepted_count", "flex_offer_count", "balancing_potential"],
        filters=[MemberFilter("Geography", "region", WEST_DENMARK)],
    )
    print("accepted flex-offers in west Denmark, by city and energy type:")
    for cell in cell_set.cells:
        city, energy_type = cell.coordinates
        print(
            f"  {city:<12} {energy_type:<8} accepted={cell.values['accepted_count']:>4.0f} "
            f"of {cell.values['flex_offer_count']:>4.0f}  balancing potential "
            f"{cell.values['balancing_potential']:.2f}"
        )

    # A pivot table: prosumer types x hours, measure = scheduled energy.
    table = pivot(
        cube,
        rows=GroupBy("Prosumer", "prosumer_type"),
        columns=GroupBy("Time", "hour"),
        measures=["scheduled_energy"],
    )
    print("\nscheduled energy by prosumer type and hour:")
    print(table.to_text("scheduled_energy", cell_width=8))

    # The pivot view with drill-down (Figure 5) and a manual MDX query.
    view = PivotView(
        scenario.flex_offers,
        scenario.grid,
        options=PivotViewOptions(row_dimension="Prosumer", row_level="role", measure="flex_offer_count"),
    )
    view.save_svg(str(OUTPUT_DIR / "olap_pivot_roles.svg"))
    drilled = view.drill_down()
    drilled.save_svg(str(OUTPUT_DIR / "olap_pivot_prosumer_types.svg"))
    print(f"\npivot drill-down: {view.options.row_level} -> {drilled.options.row_level}")

    mdx = (
        "SELECT {[Measures].[flex_offer_count], [Measures].[scheduled_energy]} ON COLUMNS, "
        "{[Appliance].[appliance_type].Members} ON ROWS "
        "FROM [FlexOffers] "
        "WHERE ([State].[state].[assigned])"
    )
    result = view.run_mdx(mdx)
    print("\nMDX query result (assigned offers by appliance type):")
    print(result.to_text("value", cell_width=18))

    # Map and schematic views (Figures 3 and 4).
    MapView(scenario.flex_offers, scenario.geography, scenario.grid).save_svg(
        str(OUTPUT_DIR / "olap_map_regions.svg")
    )
    MapView(
        scenario.flex_offers,
        scenario.geography,
        scenario.grid,
        options=MapViewOptions(level="city"),
    ).save_svg(str(OUTPUT_DIR / "olap_map_cities.svg"))
    schematic = SchematicView(scenario.flex_offers, scenario.topology, scenario.grid)
    schematic.save_svg(str(OUTPUT_DIR / "olap_schematic.svg"))
    node = next(iter(schematic.state_shares()))
    downstream = schematic.offers_under_node(node)
    print(f"\n{len(downstream)} flex-offers are served below grid node {node!r}")
    print(f"figures written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()

"""Tour of the unified session facade (``repro.session``).

Run with::

    python examples/session_tour.py

One ``FlexSession`` replaces the scattered entry points: the fluent query
builder answers reads, the view registry renders them, and switching the
engine from the batch snapshot to the event-driven live engine changes *how*
the answers are computed but not *what* they are.
"""

from __future__ import annotations

from pathlib import Path

from repro import FlexSession

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)

    # 1. One front door: scenario + warehouse + engine + views in one object.
    session = FlexSession.from_config(prosumers=120, seed=7)
    print(session.describe())
    print("registered views:", ", ".join(session.view_names))

    # 2. Fluent, index-aware queries with one typed result shape.
    assigned = session.offers().where(state="assigned").fetch()
    print(f"\n{assigned.describe()}")
    for row in assigned.to_frame()[:5]:
        print(f"  #{row['id']:<6} {row['region']:<18} {row['scheduled_energy']:7.2f} kWh")

    # 3. Aggregate the selection and open it in a registered view.
    pivot = (
        session.offers()
        .where(state="assigned")
        .aggregate(est_tolerance_slots=8)
        .to_view("pivot")
    )
    pivot_path = OUTPUT_DIR / "session_pivot.svg"
    pivot.save_svg(str(pivot_path))
    print(f"\npivot view of the aggregated selection -> {pivot_path}")

    # 4. Same spec, other engine: the live engine answers identically.
    spec = session.offers().where(state="assigned").aggregate().spec
    batch_result = session.query(spec)
    session.use_engine("live")
    live_result = session.query(spec)
    print(
        f"batch={len(batch_result)} vs live={len(live_result)} outputs, "
        f"equivalent={batch_result.matches(live_result)}"
    )

    # 5. Standing queries: subscribe the spec, then stream events through.
    woken = []
    session.offers().where(region="Capital").only_aggregates().subscribe(woken.append)
    report = session.replay(update_fraction=0.1, withdraw_fraction=0.05, seed=7)
    print(f"\nreplayed {report.events} events in {report.commit_count} commits")
    print(f"Capital-aggregate subscription woken {len(woken)} times")


if __name__ == "__main__":
    main()

"""Quickstart: generate a scenario, open the framework, render the two detail views.

Run with::

    python examples/quickstart.py

The script mirrors the walk-through of Section 4 of the paper: connect to the
(synthetic) warehouse, choose a legal entity and a time interval, load its
flex-offers into a new tab, look at the basic and profile views, hover an
offer for its details, and draw a selection rectangle.
"""

from __future__ import annotations

from pathlib import Path

from repro.datagen import ScenarioConfig, generate_scenario
from repro.views import (
    SelectionRectangle,
    ViewKind,
    VisualAnalysisFramework,
)

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)

    # 1. Generate a synthetic one-day scenario and open the analysis framework
    #    (this stands in for connecting to the MIRABEL DW, Figure 7).
    scenario = generate_scenario(ScenarioConfig(prosumer_count=120, seed=7))
    framework = VisualAnalysisFramework(scenario)
    print("warehouse tables:", framework.loading.warehouse_summary()["row_counts"])

    # 2. Choose a legal entity and load its flex-offers into a new tab.
    entity = framework.loading.available_entities()[0]
    entity_tab = framework.open_tab_for_entity(entity["entity_id"])
    print(f"loaded {len(entity_tab.offers)} flex-offers of entity {entity['name']}")

    # 3. Load everything into a second tab and render the basic view (Figure 8).
    tab = framework.open_tab_for_all()
    basic = tab.view()
    basic_path = OUTPUT_DIR / "quickstart_basic.svg"
    basic.save_svg(str(basic_path))
    print(f"basic view: {len(tab.offers)} offers -> {basic_path}")

    # 4. Switch the same tab to the profile view (Figure 9).
    tab.switch_view(ViewKind.PROFILE)
    profile_path = OUTPUT_DIR / "quickstart_profile.svg"
    tab.view().save_svg(str(profile_path))
    print(f"profile view -> {profile_path}")

    # 5. Hover one flex-offer: the on-the-fly details of Figure 10.
    details = tab.details_of(tab.offers[0].id)
    print("\non-the-fly details:")
    for line in details.lines():
        print("  " + line)

    # 6. Draw a selection rectangle on the basic view and extract the selection
    #    to its own tab (the Section 4 interaction).
    tab.switch_view(ViewKind.BASIC)
    view = tab.view()
    rectangle = SelectionRectangle(x1=200, y1=80, x2=500, y2=300)
    tab.selection.select_rectangle(view, rectangle)
    selection_tab = tab.extract_selection()
    framework.tabs.append(selection_tab)
    print(f"\nrectangle selection picked {len(selection_tab.offers)} offers")
    print("open tabs:", framework.tab_titles)


if __name__ == "__main__":
    main()

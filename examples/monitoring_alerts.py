"""Monitoring and alerting (the paper's future-work control platform).

Run with::

    python examples/monitoring_alerts.py

The script scans a scenario for expected shortages and over-capacities, prints
the operator's alert list, drills down from the worst alert to the affected
flex-offers (rendering them in a basic view), runs a planning cycle and checks
the settlement for plan-deviation alerts, and finally shows the integrated
pivot view — the paper's announced next enhancement — with aggregated
flex-offers drawn inside the prosumer-type swimlanes.
"""

from __future__ import annotations

from pathlib import Path

from repro.datagen import ScenarioConfig, generate_scenario
from repro.enterprise import PlanningConfig, RealizationConfig, run_planning_cycle
from repro.monitoring import AlertThresholds, MonitoringPlatform
from repro.views import IntegratedPivotOptions, IntegratedPivotView

OUTPUT_DIR = Path(__file__).resolve().parent / "output"


def main() -> None:
    OUTPUT_DIR.mkdir(exist_ok=True)
    scenario = generate_scenario(ScenarioConfig(prosumer_count=200, seed=47))
    platform = MonitoringPlatform(scenario, AlertThresholds(minimum_window_slots=3))

    # 1. Forecast-time scan: shortages / over-capacities / low flexibility.
    report = platform.scan(per_region=True)
    print(f"{len(report)} alerts raised:")
    for line in report.summary_lines()[:10]:
        print("  " + line)

    # 2. Drill down from the worst alert to its flex-offers (the reason behind it).
    worst = report.worst()
    if worst is not None:
        offers = platform.offers_for(worst)
        print(f"\nworst alert involves {len(offers)} flex-offers; drill-down filter: "
              f"{platform.warehouse_filter_for(worst).describe()}")
        platform.drill_down_view(worst).save_svg(str(OUTPUT_DIR / "alert_drilldown_basic.svg"))

    # 3. Plan and settle, then scan the plan for deviations.
    plan = run_planning_cycle(
        scenario,
        config=PlanningConfig(realization=RealizationConfig(compliance_probability=0.6, seed=2)),
    )
    plan_report = platform.scan_plan(plan)
    print(f"\nafter planning and settlement: {len(plan_report)} alerts")
    for line in plan_report.summary_lines():
        print("  " + line)

    # 4. The integrated pivot view (basic view inside swimlanes, aggregated per lane).
    view = IntegratedPivotView(
        plan.all_offers,
        scenario.grid,
        options=IntegratedPivotOptions(row_dimension="Prosumer", row_level="prosumer_type"),
    )
    view.save_svg(str(OUTPUT_DIR / "integrated_pivot.svg"))
    lane_sizes = {member: len(offers) for member, offers in view.lane_offers().items()}
    print(f"\nintegrated pivot swimlanes (aggregated objects per lane): {lane_sizes}")
    print(f"figures written to {OUTPUT_DIR}/")


if __name__ == "__main__":
    main()

"""Tests for the unified session facade (spec, builder, engines, views, CLI)."""

from __future__ import annotations

import pytest

from repro import FlexSession, QuerySpec, register_view
from repro.app.cli import main as cli_main
from repro.datagen.scenarios import ScenarioConfig, generate_scenario
from repro.errors import SessionError
from repro.flexoffer.model import FlexOfferState
from repro.live.events import OfferWithdrawn
from repro.session import VIEW_REGISTRY, OfferQuery, ResultSet
from repro.session.spec import FRAME_COLUMNS
from repro.views.framework import ViewKind, VisualAnalysisFramework


@pytest.fixture(scope="module")
def session() -> FlexSession:
    return FlexSession(
        generate_scenario(ScenarioConfig(prosumer_count=40, seed=5)), engine="batch"
    )


class TestQuerySpec:
    def test_build_accepts_scalars_and_aliases(self):
        spec = QuerySpec.build(state="assigned", region=("Capital",), grid_node="F X")
        assert spec.states == ("assigned",)
        assert spec.regions == ("Capital",)
        assert spec.grid_nodes == ("F X",)

    def test_build_accepts_state_enum_members(self):
        spec = QuerySpec.build(states=[FlexOfferState.ASSIGNED, "accepted"])
        assert spec.states == ("accepted", "assigned")

    def test_build_rejects_unknown_filters(self):
        with pytest.raises(SessionError):
            QuerySpec.build(colour="red")

    def test_build_rejects_alias_and_field_together(self):
        with pytest.raises(SessionError):
            QuerySpec.build(state="assigned", states=("accepted",))

    def test_empty_filter_iterable_matches_nothing(self, session):
        # An empty multi-select must not silently mean "everything".
        assert session.offers().where(states=[]).count() == 0
        assert QuerySpec.build(states=[]).states == ()

    def test_spec_is_hashable_and_frozen(self):
        spec = QuerySpec.build(state="assigned")
        assert hash(spec) == hash(QuerySpec.build(states=("assigned",)))

    def test_to_filter_round_trips_fields(self):
        spec = QuerySpec.build(region="Capital", state="assigned", only_aggregates=False)
        filt = spec.to_filter()
        assert filt.regions == ("Capital",)
        assert filt.states == ("assigned",)
        assert filt.only_aggregates is False

    def test_matches_mirrors_repository_semantics(self, session):
        spec = QuerySpec.build(state="assigned")
        expected = {o.id for o in session.repository.load(spec.to_filter()).offers}
        via_predicate = {
            o.id
            for o in session.engine.offers()
            if spec.matches(o, session.grid)
        }
        assert via_predicate == expected


class TestFluentBuilder:
    def test_builders_are_immutable(self, session):
        base = session.offers()
        refined = base.where(state="assigned")
        assert base.spec != refined.spec
        assert base.spec == QuerySpec()

    def test_where_merges_and_replaces(self, session):
        query = session.offers().where(state="assigned").where(region="Capital")
        assert query.spec.states == ("assigned",)
        assert query.spec.regions == ("Capital",)
        narrowed = query.where(state="accepted")
        assert narrowed.spec.states == ("accepted",)

    def test_fetch_returns_resultset_envelope(self, session):
        result = session.offers().where(state="assigned").fetch()
        assert isinstance(result, ResultSet)
        assert result.engine == "batch"
        assert result.matched_rows == len(result)
        assert all(o.state.value == "assigned" for o in result)

    def test_limit_caps_in_id_order(self, session):
        result = session.offers().limit(5).fetch()
        assert [o.id for o in result] == sorted(o.id for o in result)
        assert len(result) == 5

    def test_aggregate_with_tolerances(self, session):
        result = session.offers().aggregate(est_tolerance_slots=8).fetch()
        assert result.spec.parameters.est_tolerance_slots == 8
        assert result.aggregates
        for aggregate in result.aggregates:
            assert result.constituents_of(aggregate.id)

    def test_aggregate_rejects_both_forms(self, session):
        from repro.aggregation.parameters import AggregationParameters

        with pytest.raises(SessionError):
            session.offers().aggregate(AggregationParameters(), est_tolerance_slots=8)

    def test_to_frame_has_stable_columns(self, session):
        frame = session.offers().limit(3).to_frame()
        assert len(frame) == 3
        assert tuple(frame[0]) == FRAME_COLUMNS

    def test_count(self, session):
        assert session.offers().count() == len(session.engine.offers())


class TestViews:
    def test_every_registered_view_renders(self, session):
        for name in session.view_names:
            view = session.offers().limit(20).to_view(name)
            assert "<svg" in view.to_svg()

    def test_unknown_view_raises_with_choices(self, session):
        with pytest.raises(SessionError, match="registered views"):
            session.offers().to_view("hologram")

    def test_custom_views_plug_in(self, session):
        @register_view("offer-count")
        def build(offers, owning_session, **options):
            return len(offers)

        try:
            assert session.offers().where(state="assigned").to_view("offer-count") > 0
        finally:
            VIEW_REGISTRY.pop("offer-count")


class TestEngines:
    def test_batch_engine_rejects_events(self, session):
        with pytest.raises(SessionError):
            session.ingest(OfferWithdrawn(session.grid.to_datetime(0), 1))

    def test_subscribe_requires_live_engine(self, session):
        with pytest.raises(SessionError):
            session.subscribe(QuerySpec(), lambda notification: None)

    def test_unknown_engine_rejected(self, session):
        with pytest.raises(SessionError):
            session.use_engine("clustered")

    def test_live_ingest_updates_queries_and_warehouse(self):
        session = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)), engine="live"
        )
        before = session.offers().count()
        victim = session.engine.offers()[0]
        session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
        assert session.offers().count() == before - 1
        assert not session.repository.load_by_offer_ids([victim.id])

    def test_spec_subscription_sees_matching_changes_only(self):
        from dataclasses import replace

        from tests.conftest import make_offer

        # Two Capital offers share a grid cell (their aggregate stays pure
        # Capital); the Zealand offer sits in a far-away cell of its own.
        capital_a = make_offer(offer_id=101, earliest_start=40)
        capital_b = make_offer(offer_id=102, earliest_start=41)
        zealand = make_offer(offer_id=201, earliest_start=80, region="Zealand")
        scenario = generate_scenario(ScenarioConfig(prosumer_count=5, seed=3))
        session = FlexSession(
            scenario.replace_offers([capital_a, capital_b, zealand]), engine="live"
        )
        notifications = []
        session.subscribe(
            session.offers().where(region="Capital").only_aggregates(),
            notifications.append,
        )
        from repro.live.events import OfferUpdated

        # A Zealand revision commits but must not wake the Capital listener.
        session.ingest(
            OfferUpdated(zealand.creation_time, replace(zealand, price_per_kwh=9.0))
        )
        session.commit()
        assert notifications == []
        # A Capital revision changes the Capital aggregate: one delivery.
        session.ingest(
            OfferUpdated(capital_a.creation_time, replace(capital_a, price_per_kwh=9.0))
        )
        session.commit()
        assert len(notifications) == 1
        assert [o.is_aggregate for o in notifications[0].changed] == [True]
        assert notifications[0].changed[0].region == "Capital"
        # Withdrawing one constituent retires the aggregate; the listener is
        # told to drop exactly the output it was handed before.
        mirrored_id = notifications[0].changed[0].id
        session.ingest(OfferWithdrawn(capital_a.creation_time, capital_a.id))
        session.commit()
        assert len(notifications) == 2
        assert [o.id for o in notifications[1].removed] == [mirrored_id]
        assert notifications[1].changed == ()

    @pytest.mark.parametrize("engine", ("live", "sharded", "async"))
    def test_snapshot_rebuilds_batch_from_surviving_offers(self, engine):
        session = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)), engine=engine
        )
        victims = session.engine.offers()[:4]
        for victim in victims:
            session.ingest(OfferWithdrawn(victim.creation_time, victim.id))
        session.commit()
        survivors = session.offers().count()
        # Without a snapshot the batch engine stays frozen at the scenario.
        stale = session.use_engine("batch")
        assert len(stale.offers()) == survivors + len(victims)
        session.use_engine(engine)
        fresh = session.snapshot()
        # The cached batch backend was replaced; batch queries now see exactly
        # the offers that survived the stream, and the contract still holds.
        assert session.use_engine("batch") is fresh
        assert session.offers().count() == survivors
        batch_result = session.query(QuerySpec())
        session.use_engine(engine)
        assert batch_result.matches(session.query(QuerySpec()))

    def test_snapshot_on_batch_engine_rebuilds_from_scenario(self, session):
        assert session.engine_name == "batch"
        before = session.offers().count()
        fresh = session.snapshot()
        assert session.use_engine("batch") is fresh
        assert session.offers().count() == before

    def test_engine_switch_preserves_backends(self, session):
        fresh = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)), engine="batch"
        )
        live_backend = fresh.use_engine("live")
        assert fresh.engine_name == "live"
        fresh.use_engine("batch")
        assert fresh.engine_name == "batch"
        assert fresh.use_engine("live") is live_backend

    def test_replay_on_preloaded_live_session_resets_state(self):
        session = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)), engine="live"
        )
        notifications = []
        session.subscribe(QuerySpec(), notifications.append)
        report = session.replay(seed=1)
        assert report.events > 0
        assert session.offers().count() == report.final_offers
        assert notifications  # subscriptions survive the reset

    def test_replay_explicit_stream_continues_or_resets(self):
        from repro.live.replay import scenario_event_stream

        session = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)), engine="live"
        )
        # An explicit from-scratch log over the preloaded state needs reset=True.
        log = scenario_event_stream(session.scenario, seed=1)
        report = session.replay(log, reset=True)
        assert report.events == len(log)
        # Without reset, an explicit stream continues the current state.
        victim = session.engine.offers()[0]
        continuation = [OfferWithdrawn(victim.creation_time, victim.id)]
        before = session.offers().count()
        session.replay(continuation)
        assert session.offers().count() == before - 1

    def test_session_replay_routes_through_live_engine(self):
        fresh = FlexSession(
            generate_scenario(ScenarioConfig(prosumer_count=20, seed=3)),
            engine="batch",
            live_preload=False,
        )
        report = fresh.replay(update_fraction=0.1, withdraw_fraction=0.05, seed=1)
        assert fresh.engine_name == "live"
        assert report.events > 0
        assert fresh.offers().count() == report.final_offers


class TestFrameworkIntegration:
    def test_framework_accepts_session(self, session):
        framework = VisualAnalysisFramework(session)
        assert framework.session is session
        assert framework.repository is session.repository

    def test_framework_accepts_bare_scenario(self):
        scenario = generate_scenario(ScenarioConfig(prosumer_count=20, seed=3))
        framework = VisualAnalysisFramework(scenario)
        assert framework.session.scenario is scenario
        tab = framework.open_tab_for_all()
        assert len(tab.offers) == len(scenario.flex_offers)

    def test_open_tab_for_query(self, session):
        framework = session.framework()
        tab = framework.open_tab_for_query(
            session.offers().where(state="assigned"), kind=ViewKind.PROFILE
        )
        assert tab.kind is ViewKind.PROFILE
        assert all(o.state.value == "assigned" for o in tab.offers)
        assert "assigned" in tab.title


class TestPackageSurface:
    def test_headline_types_importable_from_repro(self):
        import repro

        for name in ("FlexSession", "QuerySpec", "ResultSet", "OfferQuery",
                     "BatchEngine", "LiveEngine", "AggregationBackend"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None
        assert isinstance(repro.FlexSession, type)
        assert issubclass(OfferQuery, object)


class TestSessionCli:
    def test_session_smoke_command(self, capsys):
        assert cli_main(["--prosumers", "25", "--seed", "3", "session", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "session smoke OK" in out

    def test_session_query_command(self, capsys):
        code = cli_main(
            ["--prosumers", "25", "--seed", "3", "session", "--state", "assigned",
             "--engine", "live", "--limit", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "[live]" in out and "assigned" in out

    def test_render_command_uses_registry(self, tmp_path, capsys):
        out_path = tmp_path / "dash.svg"
        code = cli_main(
            ["--prosumers", "25", "--seed", "3", "render", "--view", "dashboard",
             "--out", str(out_path)]
        )
        assert code == 0
        assert out_path.read_text().startswith("<?xml") or "<svg" in out_path.read_text()

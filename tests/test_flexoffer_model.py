"""Tests for the flex-offer data model."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.flexoffer.model import (
    Direction,
    FlexOfferState,
    ProfileSlice,
    Schedule,
    count_by_state,
    total_scheduled_series,
)
from tests.conftest import make_offer


class TestProfileSlice:
    def test_valid_slice(self):
        piece = ProfileSlice(1.0, 2.0)
        assert piece.energy_flexibility == 1.0

    def test_zero_band_slice(self):
        piece = ProfileSlice(1.5, 1.5)
        assert piece.energy_flexibility == 0.0

    def test_rejects_max_below_min(self):
        with pytest.raises(ValidationError):
            ProfileSlice(2.0, 1.0)

    def test_rejects_negative_energy(self):
        with pytest.raises(ValidationError):
            ProfileSlice(-1.0, 1.0)

    def test_rejects_zero_duration(self):
        with pytest.raises(ValidationError):
            ProfileSlice(1.0, 2.0, duration_slots=0)

    def test_scale(self):
        piece = ProfileSlice(1.0, 2.0).scale(2.0)
        assert (piece.min_energy, piece.max_energy) == (2.0, 4.0)

    def test_scale_rejects_negative_factor(self):
        with pytest.raises(ValidationError):
            ProfileSlice(1.0, 2.0).scale(-1.0)


class TestScheduleValidation:
    def test_negative_energy_rejected(self):
        with pytest.raises(ValidationError):
            Schedule(start_slot=0, energy_per_slice=(-1.0,))

    def test_total_energy(self):
        assert Schedule(0, (1.0, 2.0, 0.5)).total_energy == 3.5


class TestFlexOfferConstruction:
    def test_valid_offer(self, sample_offer):
        assert sample_offer.profile_duration_slots == 3
        assert sample_offer.time_flexibility_slots == 8

    def test_empty_profile_rejected(self):
        with pytest.raises(ValidationError):
            make_offer(profile=())

    def test_latest_before_earliest_rejected(self):
        with pytest.raises(ValidationError):
            make_offer(time_flexibility=-1)

    def test_assignment_before_acceptance_rejected(self, sample_offer):
        from dataclasses import replace

        with pytest.raises(ValidationError):
            replace(
                sample_offer,
                assignment_deadline=sample_offer.acceptance_deadline,
                acceptance_deadline=sample_offer.assignment_deadline,
            )


class TestDerivedQuantities:
    def test_energy_totals(self, sample_offer):
        assert sample_offer.min_total_energy == pytest.approx(3.0)
        assert sample_offer.max_total_energy == pytest.approx(5.5)
        assert sample_offer.energy_flexibility == pytest.approx(2.5)

    def test_span(self, sample_offer):
        assert sample_offer.earliest_end_slot == 43
        assert sample_offer.latest_end_slot == 51
        assert list(sample_offer.span_slots) == list(range(40, 51))

    def test_direction_sign(self):
        assert Direction.CONSUMPTION.sign == 1
        assert Direction.PRODUCTION.sign == -1

    def test_scheduled_energy_zero_without_schedule(self, sample_offer):
        assert sample_offer.scheduled_energy == 0.0

    def test_signed_scheduled_energy_for_production(self):
        offer = make_offer(direction=Direction.PRODUCTION).with_default_schedule()
        assert offer.signed_scheduled_energy < 0

    def test_multi_slot_slice_duration(self):
        offer = make_offer(profile=((1.0, 2.0),))
        from dataclasses import replace

        wide = replace(offer, profile=(ProfileSlice(1.0, 2.0, duration_slots=4),))
        assert wide.profile_duration_slots == 4


class TestLifecycle:
    def test_accept(self, sample_offer):
        assert sample_offer.accept().state is FlexOfferState.ACCEPTED

    def test_reject_drops_schedule(self, scheduled_offer):
        rejected = scheduled_offer.reject()
        assert rejected.state is FlexOfferState.REJECTED
        assert rejected.schedule is None

    def test_assign_valid_schedule(self, sample_offer):
        assigned = sample_offer.assign(Schedule(41, (1.0, 2.0, 0.5)))
        assert assigned.state is FlexOfferState.ASSIGNED
        assert assigned.scheduled_energy == pytest.approx(3.5)

    def test_assign_start_outside_flexibility_rejected(self, sample_offer):
        with pytest.raises(ValidationError):
            sample_offer.assign(Schedule(100, (1.0, 2.0, 0.5)))

    def test_assign_wrong_slice_count_rejected(self, sample_offer):
        with pytest.raises(ValidationError):
            sample_offer.assign(Schedule(41, (1.0, 2.0)))

    def test_assign_energy_outside_band_rejected(self, sample_offer):
        with pytest.raises(ValidationError):
            sample_offer.assign(Schedule(41, (5.0, 2.0, 0.5)))

    def test_execute_requires_schedule(self, sample_offer):
        with pytest.raises(ValidationError):
            sample_offer.execute()

    def test_execute_after_assign(self, scheduled_offer):
        assert scheduled_offer.execute().state is FlexOfferState.EXECUTED

    def test_with_default_schedule_uses_earliest_minimum(self, sample_offer):
        assigned = sample_offer.with_default_schedule()
        assert assigned.schedule.start_slot == sample_offer.earliest_start_slot
        assert assigned.scheduled_energy == pytest.approx(sample_offer.min_total_energy)

    def test_transitions_do_not_mutate_original(self, sample_offer):
        sample_offer.accept()
        assert sample_offer.state is FlexOfferState.OFFERED


class TestSeriesConversion:
    def test_scheduled_series_totals_match(self, scheduled_offer, grid):
        series = scheduled_offer.scheduled_series(grid)
        assert series.total() == pytest.approx(scheduled_offer.scheduled_energy)

    def test_scheduled_series_starts_at_schedule(self, scheduled_offer, grid):
        series = scheduled_offer.scheduled_series(grid)
        assert series.start_slot == scheduled_offer.schedule.start_slot

    def test_unscheduled_series_is_empty(self, sample_offer, grid):
        assert len(sample_offer.scheduled_series(grid)) == 0

    def test_production_series_is_negative(self, grid):
        offer = make_offer(direction=Direction.PRODUCTION).with_default_schedule()
        assert offer.scheduled_series(grid).total() < 0

    def test_bound_series(self, sample_offer, grid):
        low, high = sample_offer.bound_series(grid)
        assert low.total() == pytest.approx(sample_offer.min_total_energy)
        assert high.total() == pytest.approx(sample_offer.max_total_energy)

    def test_bound_series_respects_start(self, sample_offer, grid):
        low, _ = sample_offer.bound_series(grid, start_slot=45)
        assert low.start_slot == 45


class TestCollectionHelpers:
    def test_count_by_state(self, offer_batch):
        counts = count_by_state(offer_batch)
        assert sum(counts.values()) == len(offer_batch)
        assert counts[FlexOfferState.ASSIGNED] == 4

    def test_total_scheduled_series(self, offer_batch, grid):
        total = total_scheduled_series(offer_batch, grid)
        expected = sum(offer.scheduled_energy for offer in offer_batch)
        assert total.total() == pytest.approx(expected)

    def test_total_scheduled_series_empty(self, grid):
        assert total_scheduled_series([], grid).total() == 0.0
